"""Shared fixtures for the benchmark harness.

The expensive campaign artefacts (corpus, knowledge base, COTS matrix,
fine-tuned matrix) are built once per session on a representative subset of
the benchmark; every per-figure benchmark then regenerates its table/series
from them and prints the reproduced rows.

Environment knobs:

* ``REPRO_FULL=1`` — run the campaigns over the full 100-design test set
  (slower, paper-scale).
* ``REPRO_FPV_WORKERS=N`` — fan FPV design batches out over N worker
  processes through the :class:`~repro.core.scheduler.VerificationService`.
* ``REPRO_EVAL_BACKEND=interpreted`` — fall back to the tree-walking
  reference backend instead of compiled expression kernels.
"""

from __future__ import annotations

import os

import pytest

from repro.core import ExperimentSuite, SuiteConfig

_FULL = os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    config = SuiteConfig(
        num_cots_designs=None if _FULL else 12,
        num_finetune_designs=None if _FULL else 20,
    )
    with ExperimentSuite(config) as experiment_suite:
        yield experiment_suite


@pytest.fixture(scope="session")
def cots_matrix(suite):
    return suite.cots_matrix()


@pytest.fixture(scope="session")
def finetune_campaign(suite):
    return suite.finetune_campaign()
