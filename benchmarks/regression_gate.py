"""Benchmark regression gate: compare fresh BENCH_*.json reports to baselines.

CI runs the smoke benchmarks, which rewrite the ``BENCH_*.json`` reports in
the repository root, then invokes this gate against the committed baselines::

    python benchmarks/regression_gate.py \
        --baseline-dir benchmarks/baselines/smoke --tolerance 0.20

The nightly full-corpus workflow gates its reports against the committed
full-mode baselines (the ``BENCH_*.json`` files in the repository root)
instead, via ``--baseline-dir .``.

Only *machine-independent* metrics are gated — backend speedup ratios,
warm-cache speedup ratios, and the (deterministic) mutation outcomes.
Absolute wall-clock fields vary with runner hardware and are reported but
never gated.  A gated metric fails when it regresses more than ``tolerance``
(default 20%) below its baseline; improvements never fail and are simply
reported so a maintainer can refresh the baseline.  Metrics marked
``exact`` (the mutation ``killed``/``survived`` totals and the kill
fraction) tolerate no drift at all: the mutation sweep is deterministic, so
any change is a semantic change, not noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Gated metrics per report file.  ``direction`` "higher" means larger values
#: are better, so a drop is a regression.  ``smoke_slack`` widens the band in
#: smoke mode for ratios derived from sub-100ms timings (cache-warm reruns),
#: which are far noisier on shared CI runners than the full-corpus numbers.
GATED_METRICS = {
    "BENCH_backend_speedup.json": {
        "speedup": {"direction": "higher", "smoke_slack": 2.0},
    },
    "BENCH_campaign_throughput.json": {
        "warm_speedup": {"direction": "higher", "smoke_slack": 3.0},
        "streaming_vs_serial_speedup": {"direction": "higher", "smoke_slack": 2.0},
    },
    "BENCH_fpv_kernel.json": {
        "speedup": {"direction": "higher", "smoke_slack": 1.5},
        "warm_reachability_speedup": {"direction": "higher", "smoke_slack": 3.0},
        "fallback_set.speedup": {"direction": "higher", "smoke_slack": 2.0},
        # The lowering census is deterministic: every design of the sweep
        # and wide corpora must keep lowering to *some* vector plan.  A
        # nonzero count means a design regressed to the scalar per-seed
        # fallback, which is a functional regression, not noise.
        "lowering.fallback_designs": {"direction": "exact"},
    },
    "BENCH_mutation_kill.json": {
        # Deterministic (no timing component): any change is a semantic
        # change, so the whole outcome histogram is pinned exactly.
        "kill_fraction": {"direction": "exact"},
        "outcomes.killed": {"direction": "exact"},
        "outcomes.survived": {"direction": "exact"},
        # Family batching must keep covering every mutant: a mutant that
        # stops fitting its design's family kernel is re-verified on the
        # scalar path, which silently forfeits the batched speedup.
        "family.fallback_members": {"direction": "exact"},
    },
}


def _lookup(report: dict, metric: str):
    """Resolve a dotted metric path (e.g. ``outcomes.killed``)."""
    value = report
    for part in metric.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def compare_report(name: str, baseline: dict, candidate: dict, tolerance: float):
    """Yield (metric, baseline, candidate, ok) rows for one report pair."""
    smoke = bool(candidate.get("smoke"))
    for metric, spec in GATED_METRICS.get(name, {}).items():
        base_raw = _lookup(baseline, metric)
        new_raw = _lookup(candidate, metric)
        if base_raw is None or new_raw is None:
            continue
        base_value = float(base_raw)
        new_value = float(new_raw)
        band = tolerance * (spec.get("smoke_slack", 1.0) if smoke else 1.0)
        if spec["direction"] == "exact":
            ok = new_value == base_value
        elif spec["direction"] == "higher":
            ok = new_value >= base_value * (1.0 - band)
        else:
            ok = new_value <= base_value * (1.0 + band)
        yield metric, base_value, new_value, ok


def run_gate(candidate_dir: Path, baseline_dir: Path, tolerance: float) -> int:
    failures = 0
    compared = 0
    for name in sorted(GATED_METRICS):
        candidate_path = candidate_dir / name
        baseline_path = baseline_dir / name
        if not candidate_path.exists():
            print(f"[skip] {name}: no candidate report produced")
            continue
        if not baseline_path.exists():
            print(f"[skip] {name}: no committed baseline")
            continue
        baseline = json.loads(baseline_path.read_text())
        candidate = json.loads(candidate_path.read_text())
        if baseline.get("smoke") != candidate.get("smoke"):
            print(
                f"[skip] {name}: baseline smoke={baseline.get('smoke')} vs "
                f"candidate smoke={candidate.get('smoke')} — not comparable"
            )
            continue
        for metric, base_value, new_value, ok in compare_report(
            name, baseline, candidate, tolerance
        ):
            compared += 1
            delta = (new_value / base_value - 1.0) * 100 if base_value else 0.0
            verdict = "ok" if ok else "REGRESSION"
            print(
                f"[{verdict}] {name}: {metric} {base_value:.3f} -> "
                f"{new_value:.3f} ({delta:+.1f}%)"
            )
            if not ok:
                failures += 1
    if compared == 0:
        print("error: no comparable (report, baseline) metric pairs found")
        return 2
    if failures:
        print(
            f"\n{failures} metric(s) regressed more than the tolerance; "
            "investigate or refresh the committed baseline deliberately."
        )
        return 1
    print(f"\nall {compared} gated metrics within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--candidate-dir", type=Path, default=Path("."),
        help="directory holding the freshly produced BENCH_*.json reports",
    )
    parser.add_argument(
        "--baseline-dir", type=Path, required=True,
        help="directory holding the committed baseline BENCH_*.json reports",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional regression before failing (default 0.20)",
    )
    args = parser.parse_args(argv)
    return run_gate(args.candidate_dir, args.baseline_dir, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
