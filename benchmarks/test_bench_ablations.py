"""Ablation benches for the design choices the paper discusses.

* syntax corrector on vs off (the structural difference between Figure 4 and
  Figure 8),
* k-shot sweep beyond {1, 5},
* fine-tuning data-fraction sweep (the competence curve behind Figure 9).
"""

import pytest

from repro.core import EvaluationPipeline, PipelineConfig
from repro.llm import CODELLAMA_2, GPT_35, FineTuner, FineTuningConfig, SimulatedCotsLLM, competence_from


def test_ablation_syntax_corrector(benchmark, suite):
    """Removing the corrector can only keep or increase the Error fraction."""
    design = suite.corpus.design("counter8")
    generator = SimulatedCotsLLM(GPT_35, suite.knowledge)
    examples = suite.examples.for_k(5)
    pipeline = EvaluationPipeline(PipelineConfig())

    def with_corrector():
        return pipeline.evaluate_design(generator, design, examples, k=5, use_corrector=True)

    corrected = benchmark(with_corrector)
    uncorrected = pipeline.evaluate_design(
        generator, design, examples, k=5, use_corrector=False
    )
    print()
    print("corrector on :", corrected.counts.fractions())
    print("corrector off:", uncorrected.counts.fractions())
    assert uncorrected.counts.error >= corrected.counts.error


@pytest.mark.parametrize("k", [0, 1, 3, 5], ids=lambda k: f"{k}-shot")
def test_ablation_kshot_sweep(benchmark, suite, k):
    """Sweep k beyond the paper's {1, 5} settings."""
    design = suite.corpus.design("mod10_counter")
    generator = SimulatedCotsLLM(GPT_35, suite.knowledge)
    examples = suite.examples.for_k(k) if k else []
    pipeline = EvaluationPipeline(PipelineConfig())

    def evaluate():
        return pipeline.evaluate_design(generator, design, examples, k=k)

    evaluation = benchmark(evaluate)
    assert evaluation.num_generated >= 0


def test_ablation_finetune_data_fraction(suite):
    """Competence grows monotonically with the amount of fine-tuning data."""
    config = FineTuningConfig()
    competences = [competence_from(n, config.epochs, config) for n in (0, 5, 20, 40, 75)]
    print()
    print("competence curve:", [round(c, 3) for c in competences])
    assert competences == sorted(competences)
    assert competences[0] == 0.0 and competences[-1] <= 1.0


def test_ablation_finetune_epoch_sweep(benchmark, suite):
    """Fewer epochs yield a less competent model (learning-rate ablation)."""
    designs = suite.corpus.test_designs(limit=8)
    tuner = FineTuner(suite.knowledge, FineTuningConfig())

    def short_training():
        model, _ = tuner.finetune(CODELLAMA_2, designs, epochs=2)
        return model

    short = benchmark(short_training)
    full, _ = tuner.finetune(CODELLAMA_2, designs, epochs=20)
    assert short.competence < full.competence
