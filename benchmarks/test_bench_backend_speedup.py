"""Substrate benchmark: the three-layer verification backend end to end.

Compares the seed configuration (interpreted expression evaluation, one
``check()`` per assertion, one core) against the refactored backend
(compiled kernels, one batched sweep per design, design-level batches fanned
out over worker processes) on a 50-assertion workload over the most
expensive ``bench/designs`` entries — the largest simulation-falsification
designs plus the explicit-state designs with the deepest state × input
sweeps.

The measured wall times are written to ``BENCH_backend_speedup.json`` so the
perf trajectory is tracked from PR to PR (CI uploads the file as an
artifact).  Set ``REPRO_SMOKE=1`` for a reduced smoke run that only sanity
checks the plumbing (CI machines are too noisy for a strict ratio).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import List, Tuple


from repro.core import SchedulerConfig, VerificationService
from repro.fpv import EngineConfig, FormalEngine
from repro.hdl.design import Design
from repro.sim import COMPILED, INTERPRETED

_SMOKE = os.environ.get("REPRO_SMOKE", "0") == "1"

#: The most expensive corpus entries: the two largest simulation-fallback
#: designs by LoC and the three explicit-state designs with the deepest
#: reachable-state × input sweeps.
_DESIGNS = ["ca_prng", "ge_prng_mid", "watchdog4", "pwm4", "eth_clockgen"]
_PER_DESIGN = 2 if _SMOKE else 10
_WORKERS = 4
#: Smoke mode only sanity-checks the plumbing: the workload is too small for
#: a wall-time ratio to be meaningful on a noisy shared runner.
_MIN_SPEEDUP = None if _SMOKE else 3.0

_ENGINE_KWARGS = dict(fallback_cycles=128 if _SMOKE else 512, fallback_seeds=1)

_REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_backend_speedup.json"


def _assertions(design: Design, count: int) -> List[str]:
    """Distinct, well-formed assertions exercising depth-0..2 obligations."""
    model = design.model
    out = (model.outputs or list(model.signals))[0]
    mask = model.signals[out].mask
    inputs = model.non_clock_inputs
    texts = []
    for j in range(count):
        bound = max(0, mask - (j % max(mask, 1)))
        if not inputs:
            texts.append(f"({out} <= {bound});")
            continue
        inp = inputs[j % len(inputs)]
        if j % 3 == 0:
            texts.append(f"({inp} >= 0) |-> ({out} <= {bound});")
        elif j % 3 == 1:
            texts.append(f"({inp} == 0) |=> ({out} <= {bound});")
        else:
            texts.append(f"({inp} == 0) ##1 ({inp} == 0) |=> ({out} <= {bound});")
    return texts


def _jobs(suite) -> List[Tuple[Design, List[str]]]:
    jobs = []
    for name in _DESIGNS:
        design = suite.corpus.design(name)
        jobs.append((design, _assertions(design, _PER_DESIGN)))
    return jobs


def _interpreted_serial(jobs) -> Tuple[List[List], float]:
    """The seed flow: interpreted kernels, one check() per assertion."""
    start = time.perf_counter()
    results = []
    for design, texts in jobs:
        engine = FormalEngine(
            design, EngineConfig(backend=INTERPRETED, **_ENGINE_KWARGS)
        )
        results.append([engine.check(text) for text in texts])
    return results, time.perf_counter() - start


def _compiled_batched_parallel(jobs) -> Tuple[List[List], float]:
    """The refactored flow: compiled kernels, batched FPV, 4 workers."""
    start = time.perf_counter()
    config = SchedulerConfig(
        engine=EngineConfig(backend=COMPILED, **_ENGINE_KWARGS), workers=_WORKERS
    )
    with VerificationService(config) as service:
        results = service.check_many(jobs)
    return results, time.perf_counter() - start


def test_backend_speedup(suite):
    jobs = _jobs(suite)
    total = sum(len(texts) for _, texts in jobs)

    baseline, baseline_s = _interpreted_serial(jobs)
    refactored, refactored_s = _compiled_batched_parallel(jobs)

    # The speedup must not come from changed semantics.
    for (design, _), base_batch, fast_batch in zip(jobs, baseline, refactored):
        assert [r.status for r in base_batch] == [r.status for r in fast_batch], design.name
        assert [r.complete for r in base_batch] == [r.complete for r in fast_batch], design.name

    speedup = baseline_s / refactored_s if refactored_s else float("inf")
    report = {
        "benchmark": "backend_speedup",
        "designs": _DESIGNS,
        "assertions": total,
        "workers": _WORKERS,
        "smoke": _SMOKE,
        "interpreted_serial_s": round(baseline_s, 3),
        "compiled_batched_parallel_s": round(refactored_s, 3),
        "speedup": round(speedup, 2),
    }
    _REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nbackend speedup: {speedup:.2f}x "
          f"({baseline_s:.2f}s interpreted-serial → {refactored_s:.2f}s "
          f"compiled-batched-parallel, {total} assertions, {_WORKERS} workers)")

    if _MIN_SPEEDUP is not None:
        assert speedup >= _MIN_SPEEDUP, (
            f"expected ≥{_MIN_SPEEDUP}x speedup, measured {speedup:.2f}x "
            f"(baseline {baseline_s:.2f}s, refactored {refactored_s:.2f}s)"
        )
