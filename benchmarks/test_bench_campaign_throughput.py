"""Campaign benchmark: the durable streaming runtime end to end.

Three phases over the same (models x k x designs) workload:

* **serial** — the pre-refactor campaign loop: generate + correct every
  design of a sweep first, then discharge everything in one blocking
  ``check_many`` call.  No stage overlap, no durability.
* **cold**   — the streaming :class:`~repro.core.runtime.CampaignRuntime`
  over a fresh run directory: generation for design N+1 overlaps
  verification of design N, every cell is committed to the store, verdicts
  land in the persistent cache.
* **warm**   — a second runtime over the same run directory: every cell is
  already committed, so the campaign replays from the outcome shards with
  zero generation and zero FPV.

The measured wall times are written to ``BENCH_campaign_throughput.json``
(CI uploads the file as an artifact).  The assertions pin the PR's
acceptance bar: warm >= 5x faster than cold, and the streaming cold run no
slower than the old serial loop (within noise).  Set ``REPRO_SMOKE=1`` for
a reduced run that only sanity-checks the plumbing.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path
from typing import List


from repro.core import CampaignRuntime, PipelineConfig, RunStore
from repro.core import scheduler as scheduler_module
from repro.core.metrics import EvaluationMatrix, ModelKshotResult
from repro.fpv import EngineConfig
from repro.llm import GPT_35, GPT_4O, SimulatedCotsLLM

_SMOKE = os.environ.get("REPRO_SMOKE", "0") == "1"

_DESIGNS = (
    ["watchdog4", "pwm4", "mod10_counter", "updown_counter4"]
    if _SMOKE
    else [
        "watchdog4", "pwm4", "eth_clockgen", "mod10_counter",
        "updown_counter4", "gray_counter4", "lfsr8", "debouncer3",
        "counter8", "shift_reg8", "seq_detect_1011", "traffic_light",
    ]
)
_K_VALUES = (1,) if _SMOKE else (1, 5)

_ENGINE = EngineConfig(
    max_states=2048,
    max_transitions=120_000,
    max_input_bits=10,
    max_state_bits=14,
    max_path_evaluations=120_000,
    fallback_cycles=128 if _SMOKE else 512,
    fallback_seeds=2,
)

#: Smoke mode only checks the plumbing; ratios need a real workload.  The
#: cold-vs-serial bound carries slack for shared-runner noise — the paired,
#: interleaved min-of-N timing below removes most of it, not all.
_MIN_WARM_SPEEDUP = None if _SMOKE else 5.0
_MAX_COLD_VS_SERIAL = None if _SMOKE else 1.2

_REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaign_throughput.json"


def _config() -> PipelineConfig:
    return PipelineConfig(engine=_ENGINE)


def _generators(suite):
    return [
        SimulatedCotsLLM(GPT_4O, suite.knowledge),
        SimulatedCotsLLM(GPT_35, suite.knowledge),
    ]


def _reset_engine_cache() -> None:
    # In-process FPV engines memoize reachability sweeps per design; clear
    # them between phases so each phase pays the same cold-engine cost.
    scheduler_module._WORKER_ENGINES.clear()


def _matrix_signature(matrix: EvaluationMatrix):
    return {
        (model, k): [
            (evaluation.design_name, [(o.raw_text, o.category) for o in evaluation.outcomes])
            for evaluation in result.designs
        ]
        for model, per_model in matrix.results.items()
        for k, result in per_model.items()
    }


def _serial_campaign(suite, designs, examples) -> EvaluationMatrix:
    """The pre-refactor loop: full-sweep generation, then one batched verify."""
    matrix = EvaluationMatrix()
    with CampaignRuntime(config=_config()) as runtime:
        for generator in _generators(suite):
            for k in _K_VALUES:
                prepared = [
                    (design, runtime._prepare_lines(generator, design, examples.for_k(k), None))
                    for design in designs
                ]
                jobs = [
                    (design, [line.assertion for line in lines if line.assertion is not None])
                    for design, lines in prepared
                ]
                verdict_batches = runtime.service.check_many(jobs)
                result = ModelKshotResult(model_name=generator.name, k=k)
                for (design, lines), verdicts in zip(prepared, verdict_batches):
                    result.designs.append(
                        runtime._assemble(generator.name, k, design, lines, verdicts, None)
                    )
                matrix.add(result)
    return matrix


def _streaming_campaign(suite, designs, examples, run_dir) -> EvaluationMatrix:
    store = RunStore(run_dir)
    with CampaignRuntime(config=_config(), store=store) as runtime:
        return runtime.run_campaign(_generators(suite), _K_VALUES, designs, examples)


def test_campaign_throughput(suite, tmp_path_factory):
    designs = [suite.corpus.design(name) for name in _DESIGNS]
    examples = suite.examples
    base_dir = tmp_path_factory.mktemp("campaign")
    cells = 2 * len(_K_VALUES) * len(designs)
    repetitions = 1 if _SMOKE else 3

    # Pre-mine the shared knowledge base so the first timed phase does not
    # pay the one-time assertion-mining cost the others then reuse.
    for design in designs:
        suite.knowledge.verified_assertions(design)

    def timed(phase):
        _reset_engine_cache()
        start = time.perf_counter()
        result = phase()
        return result, time.perf_counter() - start

    # Interleave serial/cold/warm repetitions so a machine load spike hits
    # every phase alike, then take each phase's best; each cold repetition
    # streams into its own fresh run directory and warms it for the replay.
    serial_times: List[float] = []
    cold_times: List[float] = []
    warm_times: List[float] = []
    for repetition in range(repetitions):
        run_dir = base_dir / f"run{repetition}"
        serial_matrix, elapsed = timed(
            lambda: _serial_campaign(suite, designs, examples)
        )
        serial_times.append(elapsed)
        cold_matrix, elapsed = timed(
            lambda: _streaming_campaign(suite, designs, examples, run_dir)
        )
        cold_times.append(elapsed)
        warm_matrix, elapsed = timed(
            lambda: _streaming_campaign(suite, designs, examples, run_dir)
        )
        warm_times.append(elapsed)
    serial_s, cold_s, warm_s = min(serial_times), min(cold_times), min(warm_times)
    # Adjacent serial/cold measurements see the same machine load, so their
    # paired ratio is far less noisy than a ratio of independent minima.
    paired_ratios = [s / c for s, c in zip(serial_times, cold_times)]

    # Durability and overlap must not change a single verdict.
    assert _matrix_signature(cold_matrix) == _matrix_signature(serial_matrix)
    assert _matrix_signature(warm_matrix) == _matrix_signature(serial_matrix)

    warm_speedup = cold_s / warm_s if warm_s else float("inf")
    streaming_vs_serial = statistics.median(paired_ratios)
    report = {
        "benchmark": "campaign_throughput",
        "designs": _DESIGNS,
        "models": [GPT_4O.name, GPT_35.name],
        "k_values": list(_K_VALUES),
        "cells": cells,
        "workers": os.environ.get("REPRO_FPV_WORKERS", "1"),
        "smoke": _SMOKE,
        "serial_loop_s": round(serial_s, 3),
        "streaming_cold_s": round(cold_s, 3),
        "streaming_warm_s": round(warm_s, 3),
        "warm_speedup": round(warm_speedup, 2),
        "streaming_vs_serial_speedup": round(streaming_vs_serial, 2),
    }
    _REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\ncampaign throughput: serial {serial_s:.2f}s, cold {cold_s:.2f}s, "
        f"warm {warm_s:.2f}s ({warm_speedup:.1f}x warm speedup, "
        f"{streaming_vs_serial:.2f}x streaming vs serial, {cells} cells)"
    )

    if _MIN_WARM_SPEEDUP is not None:
        assert warm_speedup >= _MIN_WARM_SPEEDUP, (
            f"warm rerun only {warm_speedup:.2f}x faster than cold "
            f"(cold {cold_s:.2f}s, warm {warm_s:.2f}s)"
        )
    if _MAX_COLD_VS_SERIAL is not None:
        assert streaming_vs_serial >= 1.0 / _MAX_COLD_VS_SERIAL, (
            f"streaming cold run {cold_s:.2f}s slower than serial loop "
            f"{serial_s:.2f}s (paired ratio {streaming_vs_serial:.3f})"
        )
