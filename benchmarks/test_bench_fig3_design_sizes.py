"""E1 — Figure 3: test-set design sizes (LoC excluding comments and blanks).

Regenerates the per-design line-count series the paper plots and benchmarks
the cloc-style measurement over the whole corpus.
"""

from repro.core import figure3_design_sizes
from repro.hdl import analyze_source


def test_figure3_design_sizes(benchmark, suite):
    corpus = suite.corpus
    sources = [design.source for design in corpus.test_designs()]

    def measure_all():
        return [analyze_source(source).code_lines for source in sources]

    locs = benchmark(measure_all)
    table = figure3_design_sizes(corpus)
    print()
    print(table.text)
    assert len(locs) == 100
    assert max(locs) > 1000 and min(locs) < 20


def test_figure3_shape_matches_paper(suite):
    """The reproduced distribution spans the paper's 10-1150 LoC range."""
    loc = suite.corpus.loc_by_design("test")
    values = sorted(loc.values())
    assert values[0] <= 15
    assert values[-1] >= 1000
    # the bulk of designs are small-to-medium, with a long tail (Figure 3 shape)
    median = values[len(values) // 2]
    assert median < 150
