"""E3-E6 — Figure 6: per-COTS-model assertion accuracy at 1-shot vs 5-shot.

Regenerates the Pass/CEX/Error bars for GPT-3.5, GPT-4o, CodeLLaMa 2, and
LLaMa3-70B, and benchmarks the full per-design evaluation pipeline
(prompt -> generate -> correct -> FPV -> classify) for each model.
"""

import pytest

from repro.core import figure6_accuracy
from repro.llm import COTS_PROFILES, SimulatedCotsLLM


@pytest.mark.parametrize("profile", COTS_PROFILES, ids=lambda p: p.name)
def test_figure6_model_accuracy(benchmark, suite, cots_matrix, profile):
    evaluator_design = suite.corpus.design("counter8")
    generator = SimulatedCotsLLM(profile, suite.knowledge)
    examples = suite.examples.for_k(1)

    # Benchmark the unit of work Figure 6 is made of: one design through the
    # full Figure-4 pipeline for this model.
    from repro.core import EvaluationPipeline

    pipeline = EvaluationPipeline()

    def evaluate_one_design():
        return pipeline.evaluate_design(generator, evaluator_design, examples, k=1)

    evaluation = benchmark(evaluate_one_design)
    # LLaMa3-70B occasionally fails to generate anything (Observation 1); the
    # other models always produce at least one candidate.
    assert evaluation.num_generated > 0 or profile.empty_generation_probability > 0

    figure = figure6_accuracy(cots_matrix, profile.name)
    print()
    print(figure.text)
    for k_label in ("1-shot", "5-shot"):
        bars = figure.values(k_label)
        assert abs(sum(bars.values()) - 1.0) < 1e-6


def test_figure6_trends_match_paper(cots_matrix):
    """Observation-1 trends: GPT family improves with k, LLaMa3 regresses."""
    def pass_at(model, k):
        return cots_matrix.get(model, k).pass_fraction

    assert pass_at("GPT-3.5", 5) > pass_at("GPT-3.5", 1)
    assert pass_at("GPT-4o", 5) >= pass_at("GPT-4o", 1)
    assert pass_at("LLaMa3-70B", 5) < pass_at("LLaMa3-70B", 1)
