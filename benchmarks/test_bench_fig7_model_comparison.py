"""E7-E8 — Figure 7: cross-model comparison of assertion accuracy per k.

Regenerates the per-k comparison of all four COTS models and benchmarks the
aggregation/rendering step.
"""

import pytest

from repro.core import accuracy_matrix_report, figure7_model_comparison


@pytest.mark.parametrize("k", [1, 5], ids=["1-shot", "5-shot"])
def test_figure7_cross_model_comparison(benchmark, cots_matrix, k):
    figure = benchmark(figure7_model_comparison, cots_matrix, k)
    print()
    print(figure.text)
    assert len(figure.series) == 4
    for bars in figure.series.values():
        assert abs(sum(bars.values()) - 1.0) < 1e-6


def test_figure7_gpt4o_is_most_consistent(cots_matrix):
    """Observation 3: GPT-4o produces the most valid assertions at both k."""
    for k in (1, 5):
        figure = figure7_model_comparison(cots_matrix, k)
        best = max(figure.series, key=lambda name: figure.series[name]["Pass"])
        assert best == "GPT-4o"


def test_full_accuracy_matrix_report(benchmark, cots_matrix):
    report = benchmark(accuracy_matrix_report, cots_matrix, "COTS accuracy (Figures 6-7)")
    print()
    print(report.text)
    assert len(report.rows) == 8
