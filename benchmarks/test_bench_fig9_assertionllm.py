"""E9-E10 — Figure 9: fine-tuned AssertionLLM accuracy.

Regenerates the Pass/CEX/Error bars for the fine-tuned CodeLLaMa 2 and
LLaMa3-70B models (evaluated on the held-out 25% split, no syntax corrector)
and benchmarks the fine-tuning step itself.
"""

from repro.core import figure9_finetuned
from repro.llm import CODELLAMA_2, FineTuner, FineTuningConfig


def test_figure9_finetuned_accuracy(finetune_campaign):
    figures = figure9_finetuned(finetune_campaign.matrix)
    print()
    for name, figure in figures.items():
        print(figure.text)
        print()
    assert len(figures) == 2
    for figure in figures.values():
        for bars in figure.series.values():
            assert abs(sum(bars.values()) - 1.0) < 1e-6


def test_figure9_finetuning_beats_foundation(cots_matrix, finetune_campaign):
    """Observation 5 (CodeLLaMa 2): fine-tuning raises Pass and lowers CEX."""
    tuned_name = [n for n in finetune_campaign.matrix.model_names if "CodeLLaMa" in n][0]
    for k in (1, 5):
        base = cots_matrix.get("CodeLLaMa 2", k)
        tuned = finetune_campaign.matrix.get(tuned_name, k)
        assert tuned.pass_fraction > base.pass_fraction
        assert tuned.cex_fraction < base.cex_fraction


def test_benchmark_finetuning_step(benchmark, suite):
    """Benchmark the fine-tuning pipeline (dataset build + statistics fit)."""
    designs = suite.corpus.test_designs(limit=10)
    tuner = FineTuner(suite.knowledge, FineTuningConfig())

    def finetune():
        model, report = tuner.finetune(CODELLAMA_2, designs)
        return model

    model = benchmark(finetune)
    assert model.competence > 0.0
    assert model.statistics.num_assertions > 0
