"""Substrate benchmark: the FPV engine on the paper's Section II example.

Not a paper figure by itself, but the FPV engine sits under every
experiment; this benchmark tracks the cost of a complete explicit-state
proof (P1) and of a counterexample search (P2) on the arb2 arbiter, plus a
simulation-falsification check on a large design.
"""

import pytest

from repro.fpv import EngineConfig, FormalEngine, ProofStatus

P1 = "(req1 == 1 && req2 == 0) |-> (gnt1 == 1);"
P2 = "(req2 == 0 && gnt_ == 1) ##1 (req1 == 1) |=> (gnt1 == 1);"


@pytest.mark.parametrize("assertion,expected", [(P1, ProofStatus.PROVEN), (P2, ProofStatus.CEX)],
                         ids=["P1-proven", "P2-cex"])
def test_explicit_state_check(benchmark, suite, assertion, expected):
    design = suite.corpus.design("arb2")

    def check():
        return FormalEngine(design).check(assertion)

    result = benchmark(check)
    assert result.status is expected


def test_simulation_falsification_on_large_design(benchmark, suite):
    design = suite.corpus.design("ca_prng")
    engine = FormalEngine(design, EngineConfig(fallback_cycles=128, fallback_seeds=1))

    def check():
        return engine.check("(en == 1 && load == 0) |=> (pattern_valid == 1);")

    result = benchmark(check)
    assert result.is_pass
