"""FPV kernel benchmark: the vectorized backend vs the compiled backend.

One engine per design, one worker, one batched ``check_batch`` per design —
the same full-corpus sweep on both backends, so the measured ratio isolates
the array-oriented kernel (vectorized BFS, truth-matrix obligation sweep,
batched falsification traces) from scheduling effects.  A second pass
measures the warm-rerun effect of the persistent reachability cache.

Results are written to ``BENCH_fpv_kernel.json`` (CI uploads it as an
artifact).  ``REPRO_SMOKE=1`` shrinks the workload to the explicit-state
corpus subset and gates on parity (>= 1.0x): a smoke regression below parity
means the vectorized path stopped paying for itself and fails the job.  The
full run gates on >= 5x.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.bench.corpus import get_corpus
from repro.fpv import EngineConfig, FormalEngine, ReachabilityCache
from repro.hdl.design import Design
from repro.sim import COMPILED, VECTORIZED

_SMOKE = os.environ.get("REPRO_SMOKE", "0") == "1"

_CORPUS = "assertionbench-fpv-kernel" if _SMOKE else "assertionbench"
_PER_DESIGN = 4 if _SMOKE else 6
#: Smoke gates on parity (a regression below 1.0x fails CI); the full sweep
#: must hold the 5x target of the vectorized-kernel work.
_MIN_SPEEDUP = 1.0 if _SMOKE else 5.0

_ENGINE_KWARGS = dict(
    fallback_cycles=128 if _SMOKE else 256,
    fallback_seeds=2,
)

_REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fpv_kernel.json"


def _assertions(design: Design, count: int) -> List[str]:
    """Distinct, well-formed assertions exercising depth-0..2 obligations."""
    model = design.model
    out = (model.outputs or list(model.signals))[0]
    mask = model.signals[out].mask
    inputs = model.non_clock_inputs
    texts = []
    for j in range(count):
        bound = max(0, mask - (j % max(mask, 1)))
        if not inputs:
            texts.append(f"({out} <= {bound});")
            continue
        inp = inputs[j % len(inputs)]
        if j % 3 == 0:
            texts.append(f"({inp} >= 0) |-> ({out} <= {bound});")
        elif j % 3 == 1:
            texts.append(f"({inp} == 0) |=> ({out} <= {bound});")
        else:
            texts.append(f"({inp} == 0) ##1 ({inp} == 0) |=> ({out} <= {bound});")
    return texts


def _sweep(
    jobs: List[Tuple[Design, List[str]]],
    backend: str,
    reachability_cache: ReachabilityCache = None,
) -> Tuple[List[List], float]:
    start = time.perf_counter()
    results = []
    for design, texts in jobs:
        engine = FormalEngine(
            design,
            EngineConfig(backend=backend, **_ENGINE_KWARGS),
            reachability_cache=reachability_cache,
        )
        results.append(engine.check_batch(texts))
    return results, time.perf_counter() - start


def test_fpv_kernel_speedup():
    corpus = get_corpus(_CORPUS)
    jobs = [
        (design, _assertions(design, _PER_DESIGN)) for design in corpus.all_designs()
    ]
    total = sum(len(texts) for _, texts in jobs)

    compiled, compiled_s = _sweep(jobs, COMPILED)
    vectorized, vectorized_s = _sweep(jobs, VECTORIZED)

    # The speedup must not come from changed semantics.
    for (design, _), base_batch, fast_batch in zip(jobs, compiled, vectorized):
        assert [r.status for r in base_batch] == [r.status for r in fast_batch], design.name
        assert [r.complete for r in base_batch] == [r.complete for r in fast_batch], design.name
        assert [r.engine for r in base_batch] == [r.engine for r in fast_batch], design.name

    # Warm rerun: a shared reachability cache removes every BFS on pass two.
    cache = ReachabilityCache()
    _sweep(jobs, VECTORIZED, reachability_cache=cache)
    _, warm_s = _sweep(jobs, VECTORIZED, reachability_cache=cache)

    speedup = compiled_s / vectorized_s if vectorized_s else float("inf")
    warm_speedup = vectorized_s / warm_s if warm_s else float("inf")
    report: Dict = {
        "benchmark": "fpv_kernel",
        "corpus": _CORPUS,
        "designs": len(jobs),
        "assertions": total,
        "workers": 1,
        "smoke": _SMOKE,
        "compiled_s": round(compiled_s, 3),
        "vectorized_s": round(vectorized_s, 3),
        "speedup": round(speedup, 2),
        "vectorized_warm_s": round(warm_s, 3),
        "warm_reachability_speedup": round(warm_speedup, 2),
        "reachability_cache": cache.stats(),
    }
    _REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\nfpv kernel speedup: {speedup:.2f}x "
        f"({compiled_s:.2f}s compiled → {vectorized_s:.2f}s vectorized, "
        f"{len(jobs)} designs × {_PER_DESIGN} assertions, 1 worker); "
        f"warm reachability rerun {warm_speedup:.2f}x"
    )

    assert speedup >= _MIN_SPEEDUP, (
        f"expected ≥{_MIN_SPEEDUP}x speedup, measured {speedup:.2f}x "
        f"(compiled {compiled_s:.2f}s, vectorized {vectorized_s:.2f}s)"
    )
