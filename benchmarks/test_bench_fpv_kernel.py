"""FPV kernel benchmark: the vectorized backend vs the compiled backend.

One engine per design, one worker, one batched ``check_batch`` per design —
the same full-corpus sweep on both backends, so the measured ratio isolates
the array-oriented kernel (vectorized BFS, truth-matrix obligation sweep,
batched falsification traces) from scheduling effects.  A second pass
measures the warm-rerun effect of the persistent reachability cache.

Results are written to ``BENCH_fpv_kernel.json`` (CI uploads it as an
artifact).  ``REPRO_SMOKE=1`` shrinks the workload to the explicit-state
corpus subset and gates on parity (>= 1.0x): a smoke regression below parity
means the vectorized path stopped paying for itself and fails the job.  The
full run gates on >= 5x.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.bench.corpus import get_corpus
from repro.fpv import EngineConfig, FormalEngine, ReachabilityCache
from repro.hdl.design import Design
from repro.sim import COMPILED, VECTORIZED
from repro.sim.vector import PLAN_FALLBACK, plan_model

_SMOKE = os.environ.get("REPRO_SMOKE", "0") == "1"

_CORPUS = "assertionbench-fpv-kernel" if _SMOKE else "assertionbench"
_PER_DESIGN = 4 if _SMOKE else 6
#: Smoke gates on parity (a regression below 1.0x fails CI); the full sweep
#: must hold the 5x target of the vectorized-kernel work.
_MIN_SPEEDUP = 1.0 if _SMOKE else 5.0

#: Designs the vectorized path used to refuse before the bit-sliced and
#: multi-limb lowerings landed (wide buses, wide intermediates, memories).
#: They are timed as their own subset: this set must never fall back again,
#: and the multi-limb path must beat the compiled backend on it.
_FORMER_FALLBACK_SET = [
    "mtx_trps_4x4",
    "mtx_trps_8x8_dpsra",
    "mtx_trps_12x12",
    "fht_1d_x8",
    "fht_1d_x16",
    "decoder64",
    "ca_prng",
    "fifo_mem8",
    "ge_prng_mid",
    "register_file16",
]
_MIN_FALLBACK_SET_SPEEDUP = 0.0 if _SMOKE else 1.2

_ENGINE_KWARGS = dict(
    fallback_cycles=128 if _SMOKE else 256,
    fallback_seeds=2,
)

_REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fpv_kernel.json"


def _assertions(design: Design, count: int) -> List[str]:
    """Distinct, well-formed assertions exercising depth-0..2 obligations."""
    model = design.model
    out = (model.outputs or list(model.signals))[0]
    mask = model.signals[out].mask
    inputs = model.non_clock_inputs
    texts = []
    for j in range(count):
        bound = max(0, mask - (j % max(mask, 1)))
        if not inputs:
            texts.append(f"({out} <= {bound});")
            continue
        inp = inputs[j % len(inputs)]
        if j % 3 == 0:
            texts.append(f"({inp} >= 0) |-> ({out} <= {bound});")
        elif j % 3 == 1:
            texts.append(f"({inp} == 0) |=> ({out} <= {bound});")
        else:
            texts.append(f"({inp} == 0) ##1 ({inp} == 0) |=> ({out} <= {bound});")
    return texts


def _sweep(
    jobs: List[Tuple[Design, List[str]]],
    backend: str,
    reachability_cache: ReachabilityCache = None,
) -> Tuple[List[List], float, List[float]]:
    start = time.perf_counter()
    results = []
    per_design = []
    for design, texts in jobs:
        design_start = time.perf_counter()
        engine = FormalEngine(
            design,
            EngineConfig(backend=backend, **_ENGINE_KWARGS),
            reachability_cache=reachability_cache,
        )
        results.append(engine.check_batch(texts))
        per_design.append(time.perf_counter() - design_start)
    return results, time.perf_counter() - start, per_design


def _plan_census(designs) -> Tuple[Dict[str, str], Dict[str, int], Dict[str, int]]:
    """Plan per design, per-plan design counts, and fallback-reason histogram."""
    by_design: Dict[str, str] = {}
    plans: Dict[str, int] = {}
    reasons: Dict[str, int] = {}
    for design in designs:
        plan = plan_model(design.model)
        by_design[design.name] = plan.plan
        plans[plan.plan] = plans.get(plan.plan, 0) + 1
        if plan.plan == PLAN_FALLBACK:
            reasons[plan.reason] = reasons.get(plan.reason, 0) + 1
    return by_design, plans, reasons


def test_fpv_kernel_speedup():
    corpus = get_corpus(_CORPUS)
    jobs = [
        (design, _assertions(design, _PER_DESIGN)) for design in corpus.all_designs()
    ]
    total = sum(len(texts) for _, texts in jobs)

    compiled, compiled_s, _ = _sweep(jobs, COMPILED)
    vectorized, vectorized_s, vectorized_per_design = _sweep(jobs, VECTORIZED)

    # The speedup must not come from changed semantics.
    for (design, _), base_batch, fast_batch in zip(jobs, compiled, vectorized):
        assert [r.status for r in base_batch] == [r.status for r in fast_batch], design.name
        assert [r.complete for r in base_batch] == [r.complete for r in fast_batch], design.name
        assert [r.engine for r in base_batch] == [r.engine for r in fast_batch], design.name

    # Warm rerun: a shared reachability cache removes every BFS on pass two.
    cache = ReachabilityCache()
    _sweep(jobs, VECTORIZED, reachability_cache=cache)
    _, warm_s, _ = _sweep(jobs, VECTORIZED, reachability_cache=cache)

    # Lowering census: which plan every design of the sweep corpus *and* the
    # wide-operand corpus gets.  Since the bit-sliced and multi-limb kernels
    # landed this must be fallback-free — a nonzero count means a design
    # silently dropped back to the scalar per-seed loop.
    wide_corpus = get_corpus("assertionbench-wide")
    census_designs = list(corpus.all_designs()) + list(wide_corpus.all_designs())
    plan_by_design, plan_counts, reason_histogram = _plan_census(census_designs)
    per_plan: Dict[str, Dict] = {}
    for (design, texts), elapsed in zip(jobs, vectorized_per_design):
        bucket = per_plan.setdefault(
            plan_by_design[design.name],
            {"designs": 0, "assertions": 0, "vectorized_s": 0.0},
        )
        bucket["designs"] += 1
        bucket["assertions"] += len(texts)
        bucket["vectorized_s"] += elapsed
    for bucket in per_plan.values():
        bucket["vectorized_s"] = round(bucket["vectorized_s"], 3)
        bucket["assertions_per_s"] = round(
            bucket["assertions"] / bucket["vectorized_s"], 1
        ) if bucket["vectorized_s"] else float("inf")

    # The former fallback set (wide buses, memories, wide intermediates) now
    # lowers through limb columns; time it as its own subset so a regression
    # back to scalar fallback shows up as a ratio collapse, not just a census
    # delta.
    full_corpus = corpus if not _SMOKE else get_corpus("assertionbench")
    fallback_jobs = [
        (design, _assertions(design, _PER_DESIGN))
        for design in (full_corpus.design(name) for name in _FORMER_FALLBACK_SET)
    ]
    fb_compiled, fb_compiled_s, _ = _sweep(fallback_jobs, COMPILED)
    fb_vectorized, fb_vectorized_s, _ = _sweep(fallback_jobs, VECTORIZED)
    for (design, _), base_batch, fast_batch in zip(fallback_jobs, fb_compiled, fb_vectorized):
        assert [r.status for r in base_batch] == [r.status for r in fast_batch], design.name
    fallback_set_speedup = (
        fb_compiled_s / fb_vectorized_s if fb_vectorized_s else float("inf")
    )

    speedup = compiled_s / vectorized_s if vectorized_s else float("inf")
    warm_speedup = vectorized_s / warm_s if warm_s else float("inf")
    report: Dict = {
        "benchmark": "fpv_kernel",
        "corpus": _CORPUS,
        "designs": len(jobs),
        "assertions": total,
        "workers": 1,
        "smoke": _SMOKE,
        "compiled_s": round(compiled_s, 3),
        "vectorized_s": round(vectorized_s, 3),
        "speedup": round(speedup, 2),
        "vectorized_warm_s": round(warm_s, 3),
        "warm_reachability_speedup": round(warm_speedup, 2),
        "reachability_cache": cache.stats(),
        "lowering": {
            "census_designs": len(census_designs),
            "plans": {plan: plan_counts[plan] for plan in sorted(plan_counts)},
            "fallback_designs": plan_counts.get(PLAN_FALLBACK, 0),
            "reason_histogram": reason_histogram,
            "per_plan": {plan: per_plan[plan] for plan in sorted(per_plan)},
        },
        "fallback_set": {
            "designs": list(_FORMER_FALLBACK_SET),
            "compiled_s": round(fb_compiled_s, 3),
            "vectorized_s": round(fb_vectorized_s, 3),
            "speedup": round(fallback_set_speedup, 2),
        },
    }
    _REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    plan_line = ", ".join(f"{count} {plan}" for plan, count in sorted(plan_counts.items()))
    print(
        f"\nfpv kernel speedup: {speedup:.2f}x "
        f"({compiled_s:.2f}s compiled → {vectorized_s:.2f}s vectorized, "
        f"{len(jobs)} designs × {_PER_DESIGN} assertions, 1 worker); "
        f"warm reachability rerun {warm_speedup:.2f}x; "
        f"lowering census: {plan_line}; "
        f"former-fallback set {fallback_set_speedup:.2f}x"
    )

    assert plan_counts.get(PLAN_FALLBACK, 0) == 0, reason_histogram
    assert speedup >= _MIN_SPEEDUP, (
        f"expected ≥{_MIN_SPEEDUP}x speedup, measured {speedup:.2f}x "
        f"(compiled {compiled_s:.2f}s, vectorized {vectorized_s:.2f}s)"
    )
    assert fallback_set_speedup >= _MIN_FALLBACK_SET_SPEEDUP, (
        f"expected ≥{_MIN_FALLBACK_SET_SPEEDUP}x on the former fallback set, "
        f"measured {fallback_set_speedup:.2f}x"
    )
