"""E13 — ICE construction (Section III): mine + verify training assertions.

Benchmarks the per-design cost of producing formally verified assertions for
the in-context examples, and checks the corpus-level statistics the paper
quotes (2-10 assertions per design).
"""

from repro.bench import DesignKnowledgeBase
from repro.core import ice_statistics


def test_ice_construction_cost(benchmark, suite):
    design = suite.corpus.design("arb2")

    def mine_and_verify():
        # A fresh knowledge base so the benchmark measures real mining work,
        # not a cache hit.
        return DesignKnowledgeBase().verified_assertions(design)

    assertions = benchmark(mine_and_verify)
    assert 2 <= len(assertions) <= 10


def test_ice_statistics_match_paper_bounds(suite):
    table = ice_statistics(suite.examples)
    print()
    print(table.text)
    counts = suite.examples.assertion_counts()
    assert all(2 <= count <= 10 for count in counts)
    assert 2.0 <= suite.examples.average_assertions <= 10.0
