"""Mutation-analysis benchmark: kill-rate scoring throughput and quality.

Mutation campaigns multiply the verification workload per assertion by the
mutant count, which is exactly the fan-out the batched/vectorized scheduler
was built to absorb: every mutant is a first-class design, so its batch
rides :meth:`~repro.core.scheduler.VerificationService.check_many` with
per-mutant reachability caching and the vectorized kernel underneath.

The benchmark builds golden-passing assertions over the mutation corpus,
enumerates the viable mutants of every design (semantic filter on), fans
all (mutant, assertion) cells through one service call, and reports:

* mutant generation rate (viable mutants per second, filter included),
* verification throughput (mutation verdicts per second),
* the outcome histogram and overall kill fraction.

Results land in ``BENCH_mutation_kill.json``.  The smoke run (``REPRO_SMOKE=1``)
gates only on sanity — some mutants generated, some kills observed, no
errors — while the full run also requires paper-scale volume (hundreds of
verdicts).  Throughput regressions are gated separately by CI's
bench-regression job comparing this report against the committed baseline.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List

from repro.bench.corpus import get_corpus
from repro.core.scheduler import SchedulerConfig, VerificationService
from repro.fpv.engine import EngineConfig
from repro.hdl.design import Design
from repro.mining import mine_verified_assertions
from repro.mutate import MutationCampaign, MutationConfig
from repro.sim.compile import VECTORIZED

_SMOKE = os.environ.get("REPRO_SMOKE", "0") == "1"

_NUM_DESIGNS = 8 if _SMOKE else None
_LIMIT_PER_DESIGN = 8 if _SMOKE else 24
_PER_DESIGN_ASSERTIONS = 3 if _SMOKE else 5
_MIN_VERDICTS = 24 if _SMOKE else 400

_ENGINE = EngineConfig(
    max_states=2048,
    max_transitions=120_000,
    max_input_bits=10,
    max_state_bits=14,
    max_path_evaluations=120_000,
    fallback_cycles=128 if _SMOKE else 256,
    fallback_seeds=2,
    # The campaign default (`repro mutate`): family batching rides the
    # vectorized kernel, with the compiled per-mutant sweep as transparent
    # fallback.  Verdict outcomes are backend-identical by contract.
    backend=VECTORIZED,
)

_REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_mutation_kill.json"


def _candidate_assertions(design: Design, count: int) -> List[str]:
    """Behavioural invariants mined from the golden design (killable by
    construction: they encode actual golden behaviour, not width bounds)."""
    mined = mine_verified_assertions(design)
    return [assertion.to_sva(include_assert=True) for assertion in mined[: count * 2]]


def test_mutation_kill_throughput():
    corpus = get_corpus("assertionbench-mutation")
    designs = corpus.test_designs(limit=_NUM_DESIGNS)

    service = VerificationService(SchedulerConfig(engine=_ENGINE))
    with service:
        # Keep only assertions that pass FPV on the golden design — the
        # mutation stage's contract — capped per design.
        assertions_by_design: Dict[str, List[str]] = {}
        for design in designs:
            candidates = _candidate_assertions(design, _PER_DESIGN_ASSERTIONS)
            verdicts = service.check_design(design, candidates)
            passing = [
                text
                for text, proof in zip(candidates, verdicts)
                if proof.is_pass
            ]
            assertions_by_design[design.name] = passing[:_PER_DESIGN_ASSERTIONS]

        campaign = MutationCampaign(
            service,
            store=None,
            config=MutationConfig(limit_per_design=_LIMIT_PER_DESIGN),
        )
        start = time.perf_counter()
        summary = campaign.run(designs, assertions_by_design)
        elapsed = time.perf_counter() - start

    counts = summary.outcome_counts()
    verdicts = len(summary)
    mutants = len({(r.design_fingerprint, r.operator, r.site) for r in summary.records})
    decided = counts["killed"] + counts["survived"]
    kill_fraction = counts["killed"] / decided if decided else 0.0

    report = {
        "benchmark": "mutation_kill",
        "corpus": "assertionbench-mutation",
        "designs": len(designs),
        "mutants": mutants,
        "verdicts": verdicts,
        "smoke": _SMOKE,
        "outcomes": counts,
        "kill_fraction": round(kill_fraction, 3),
        "elapsed_s": round(elapsed, 3),
        "verdicts_per_s": round(verdicts / elapsed, 1) if elapsed else 0.0,
        "family": service.family_stats(),
    }
    _REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\nmutation kill benchmark: {verdicts} verdicts over {mutants} mutants "
        f"of {len(designs)} designs in {elapsed:.2f}s "
        f"({report['verdicts_per_s']}/s), kill fraction {kill_fraction:.3f}"
    )

    assert mutants > 0, "no viable mutants generated"
    assert verdicts >= _MIN_VERDICTS, f"only {verdicts} mutation verdicts"
    assert counts["killed"] > 0, "no mutant was ever killed — scoring is inert"
    assert counts["error"] == 0, f"{counts['error']} mutants failed to elaborate"
