"""E11 — Observations 1-6: the paper's quantitative claims.

Prints every reproduced observation next to the paper's reported value and
benchmarks the observation computation.
"""

from repro.core import all_observations


def test_observations_report(benchmark, cots_matrix, finetune_campaign):
    checks = benchmark(all_observations, cots_matrix, finetune_campaign.matrix)
    print()
    for check in checks:
        print(check.summary())
    assert len(checks) >= 12
    # The directional claims the reproduction is expected to preserve:
    # Observation 1 (LLaMa3 regression), 3 (GPT-4o best), 5 (CodeLLaMa gains),
    # and 6 (residual errors) must all hold.
    critical = [
        check
        for check in checks
        if check.observation in ("Observation 3", "Observation 6")
        or "LLaMa3-70B loses" in check.description
        or ("CodeLLaMa 2 fine-tuning" in check.description)
    ]
    assert critical
    failed = [check.summary() for check in critical if not check.holds]
    assert not failed, f"directional claims not reproduced: {failed}"


def test_observation4_headroom(cots_matrix):
    """Observation 4: substantial CEX/Error fractions remain for every model."""
    for model in cots_matrix.model_names:
        for k in cots_matrix.results[model]:
            result = cots_matrix.get(model, k)
            assert result.pass_fraction < 0.75
            assert result.cex_fraction + result.error_fraction > 0.25
