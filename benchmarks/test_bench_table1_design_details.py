"""E2 — Table I: representative design details.

Regenerates the table of the largest test designs (name, LoC, type,
functionality) and benchmarks corpus elaboration of those designs.
"""

from repro.core import table1_design_details
from repro.hdl import Design


def test_table1_representative_designs(benchmark, suite):
    corpus = suite.corpus
    representatives = corpus.representative_designs(5)
    sources = [(design.name, design.source) for design in representatives]

    def elaborate_all():
        return [Design.from_source(source, name=name) for name, source in sources]

    designs = benchmark(elaborate_all)
    table = table1_design_details(corpus)
    print()
    print(table.text)
    assert len(designs) == 5
    assert {row[2] for row in table.rows} <= {"Sequential", "Combinational"}
    # The largest design, like the paper's ca_prng, is a sequential pattern generator.
    assert table.rows[0][0] == "ca_prng"
    assert int(table.rows[0][1]) > 1000
