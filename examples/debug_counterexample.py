#!/usr/bin/env python3
"""Debug a failing assertion: counterexample waveforms and vacuity analysis.

A verification-engineer-facing scenario: take a handful of hand-written
assertions about the credit-based flow controller, discharge them on the FPV
engine, print counterexample waveforms for the failing ones, and show how the
static analysis (cone of influence) explains which signals matter.

Run:  python examples/debug_counterexample.py
"""

from repro.analysis import cone_of_influence, influence_ranking
from repro.bench import AssertionBenchCorpus
from repro.fpv import FormalEngine

ASSERTIONS = [
    # Credits never exceed the reset value of 15.
    "(credits <= 15)",
    # A send with credits available is always forwarded.
    "(send_req == 1 && credits != 0) |-> (tx_valid == 1);",
    # Claim: sending always decrements credits (wrong - a simultaneous credit
    # return keeps the counter unchanged, so this should produce a CEX).
    "(rst == 0 && send_req == 1 && credits == 5) |=> (credits == 4);",
    # Stall is only raised when credits are exhausted.
    "(stalled == 1) |-> (credits == 0);",
    # Vacuous by construction: the credit counter can never hold 16.
    "(credits == 16) |-> (tx_valid == 1);",
]


def main() -> None:
    corpus = AssertionBenchCorpus()
    design = corpus.design("flow_ctrl")
    print(f"Design under verification: {design.describe()}")
    print()

    print("Signals that influence 'credits':", sorted(cone_of_influence(design, "credits")))
    print("Most influential signals:", influence_ranking(design)[:5])
    print()

    engine = FormalEngine(design)
    for text in ASSERTIONS:
        result = engine.check(text)
        print(result.summary())
        if result.counterexample is not None:
            print(result.counterexample.format(
                ["rst", "send_req", "credit_return", "credits", "tx_valid", "stalled"]
            ))
        print()


if __name__ == "__main__":
    main()
