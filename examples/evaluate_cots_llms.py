#!/usr/bin/env python3
"""Evaluate the four COTS LLMs on AssertionBench (paper Figures 6 and 7).

Runs the Figure-4 pipeline — k-shot prompting, generation, syntax correction,
formal verification — for GPT-3.5, GPT-4o, CodeLLaMa 2, and LLaMa3-70B
(simulated; see DESIGN.md) over a subset of the 100 test designs, then prints
the reproduced Figure 6 and Figure 7 accuracy tables and the Observation 1-4
checks.

Run:  python examples/evaluate_cots_llms.py [num_designs]
      (default 16; pass 100 for the full paper-scale campaign)
"""

import sys

from repro.core import (
    ExperimentSuite,
    SuiteConfig,
    accuracy_matrix_report,
    all_observations,
)


def main() -> None:
    num_designs = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    suite = ExperimentSuite(SuiteConfig(num_cots_designs=num_designs))

    print(suite.experiment_corpus_summary().text)
    print()
    print(suite.experiment_table1().text)
    print()
    print(suite.experiment_ice().text)
    print()

    print(f"Running the COTS campaign over {num_designs} test designs ...")
    matrix = suite.cots_matrix()

    for name, figure in suite.experiment_figure6().items():
        print()
        print(figure.text)
    for k, figure in suite.experiment_figure7().items():
        print()
        print(figure.text)

    print()
    print(accuracy_matrix_report(matrix, "COTS accuracy matrix (Figures 6-7)").text)

    print()
    print("Observation checks (COTS only):")
    for check in all_observations(matrix):
        print(" ", check.summary())


if __name__ == "__main__":
    main()
