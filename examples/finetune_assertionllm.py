#!/usr/bin/env python3
"""Fine-tune AssertionLLM and compare it against its foundation models.

Reproduces the paper's Section VI flow (Figure 8): split AssertionBench
75/25, build the fine-tuning dataset from formally verified mined assertions,
fine-tune CodeLLaMa 2 and LLaMa3-70B, evaluate on the held-out split without
the syntax corrector, and print the reproduced Figure 9 plus the
Observation 5/6 checks against the COTS baselines.

Run:  python examples/finetune_assertionllm.py [num_designs]
"""

import sys

from repro.core import ExperimentSuite, SuiteConfig, accuracy_matrix_report, all_observations
from repro.llm.assertion_llm import describe_model


def main() -> None:
    num_designs = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    suite = ExperimentSuite(
        SuiteConfig(num_cots_designs=12, num_finetune_designs=num_designs)
    )

    print(f"Fine-tuning on the 75% split of {num_designs} designs ...")
    campaign = suite.finetune_campaign()

    for foundation, report in campaign.reports.items():
        model = campaign.models[foundation]
        info = describe_model(model)
        print()
        print(f"Fine-tuned {foundation} -> {info['name']}")
        print(f"  training designs   : {report.num_train_designs}")
        print(f"  held-out designs   : {report.num_test_designs}")
        print(f"  training assertions: {report.num_training_assertions}")
        print(f"  epochs             : {report.epochs}")
        print(f"  competence         : {report.competence:.3f}")
        print(f"  implication pref.  : {info['implication_preference']}")

    print()
    for name, figure in suite.experiment_figure9().items():
        print(figure.text)
        print()

    print(accuracy_matrix_report(campaign.matrix, "Fine-tuned accuracy (Figure 9)").text)

    print()
    print("Observation checks (COTS baseline vs fine-tuned):")
    for check in all_observations(suite.cots_matrix(), campaign.matrix):
        print(" ", check.summary())


if __name__ == "__main__":
    main()
