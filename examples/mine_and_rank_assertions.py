#!/usr/bin/env python3
"""Mine, verify, and rank assertions for a design (GoldMine/HARM-style flow).

This is the substrate flow the paper uses to create its formally verified
in-context-example assertions: simulate the design, mine candidates with the
decision-tree and template miners, discharge every candidate on the FPV
engine, and rank the survivors by figure of merit.  It also dumps a VCD of
the mining trace for waveform inspection.

Run:  python examples/mine_and_rank_assertions.py [design_name]
      (default: fifo_mem; try traffic_light, uart_tx, lfsr8, alu8 ...)
"""

import sys

from repro.bench import AssertionBenchCorpus
from repro.mining import AssertionMiner, AssertionRanker, MinerConfig
from repro.sim import Simulator, default_stimulus, dump_vcd


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "fifo_mem"
    corpus = AssertionBenchCorpus()
    design = corpus.design(name)
    print(f"Design under analysis: {design.describe()}")

    config = MinerConfig()
    simulator = Simulator(design)
    trace = simulator.run(
        cycles=config.trace_cycles, stimulus=default_stimulus(design.model, seed=config.seed)
    )
    vcd_path = f"{design.name}_mining.vcd"
    dump_vcd(trace, vcd_path, model=design.model)
    print(f"Simulated {trace.num_cycles} cycles (trace written to {vcd_path})")

    report = AssertionMiner(design, config).mine(trace)
    print(
        f"Mined {report.num_candidates} candidates, "
        f"{report.num_verified} formally verified, "
        f"{len(report.selected)} selected"
    )

    print()
    print("Proof results for the candidate set:")
    for result in report.proof_results:
        print(f"  {result.summary()}")

    print()
    print("Top-ranked verified assertions (figure of merit):")
    ranker = AssertionRanker(design)
    for item in ranker.rank(report.verified, trace)[:10]:
        print(
            f"  score={item.score:.3f} coverage={item.coverage:.2f} "
            f"state={item.state_involvement} depth={item.temporal_depth}  "
            f"{item.assertion.to_sva(include_assert=False)}"
        )


if __name__ == "__main__":
    main()
