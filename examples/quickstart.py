#!/usr/bin/env python3
"""Quickstart: parse a design, check assertions formally, evaluate an LLM.

Reproduces the paper's Section II worked example on the 2-port arbiter
(assertion P1 is proven, P2 yields a counterexample), then runs one simulated
COTS LLM through the Figure-4 pipeline on the same design.

Run:  python examples/quickstart.py
"""

from repro.bench import AssertionBenchCorpus, DesignKnowledgeBase, build_icl_examples
from repro.core import EvaluationPipeline
from repro.fpv import FormalEngine
from repro.llm import GPT_4O, SimulatedCotsLLM

P1 = "(req1 == 1 && req2 == 0) |-> (gnt1 == 1);"
P2 = "(req2 == 0 && gnt_ == 1) ##1 (req1 == 1) |=> (gnt1 == 1);"


def main() -> None:
    corpus = AssertionBenchCorpus()
    arb2 = corpus.design("arb2")
    print(f"Loaded design: {arb2.describe()}")
    print()

    # --- Formal property verification (the paper's Figure 2 verdicts) -------
    engine = FormalEngine(arb2)
    for label, text in (("P1", P1), ("P2", P2)):
        result = engine.check(text)
        print(f"{label}: {result.summary()}")
        if result.counterexample is not None:
            print(result.counterexample.format(["rst", "req1", "req2", "gnt_", "gnt1"]))
        print()

    # --- One simulated COTS LLM through the Figure-4 pipeline --------------
    knowledge = DesignKnowledgeBase()
    examples = build_icl_examples(corpus, knowledge)
    pipeline = EvaluationPipeline()
    model = SimulatedCotsLLM(GPT_4O, knowledge)
    target = corpus.design("fifo_mem")
    evaluation = pipeline.evaluate_design(model, target, examples.for_k(1), k=1)

    print(f"{model.name} generated {evaluation.num_generated} assertions for {target.name}:")
    for outcome in evaluation.outcomes:
        print(f"  [{outcome.category.upper():5s}] {outcome.corrected_text}")
    fractions = evaluation.counts.fractions()
    print(
        f"Pass {fractions['pass']:.2f} | CEX {fractions['cex']:.2f} | "
        f"Error {fractions['error']:.2f}"
    )


if __name__ == "__main__":
    main()
