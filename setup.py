"""Setup shim so legacy editable installs (setup.py develop) work offline."""
from setuptools import setup

setup()
