"""repro: reproduction of "Are LLMs Ready for Practical Adoption for Assertion
Generation?" (DATE 2025).

The package implements the paper's two contributions — the **AssertionBench**
benchmark/evaluation framework and the fine-tuned **AssertionLLM** generator —
together with every substrate they depend on, built from scratch:

* :mod:`repro.hdl`      — Verilog-subset frontend (lexer, parser, elaboration)
* :mod:`repro.sim`      — cycle-accurate simulator, stimulus, traces, VCD
* :mod:`repro.analysis` — CDFG / variable-dependency / cone-of-influence graphs
* :mod:`repro.sva`      — SystemVerilog Assertion subset, checker, corrector
* :mod:`repro.fpv`      — formal property verification engine (JasperGold substitute)
* :mod:`repro.mining`   — GoldMine/HARM-style assertion miners and ranking
* :mod:`repro.llm`      — prompts, simulated COTS LLMs, trainable AssertionLLM
* :mod:`repro.bench`    — the AssertionBench corpus registry and ICE construction
* :mod:`repro.mutate`   — mutation operators and kill-rate assertion scoring
* :mod:`repro.core`     — campaign runtime, run store, metrics, figure/table reports
* :mod:`repro.cli`      — ``python -m repro`` run / mutate / resume / report / list-corpora
"""

from . import analysis, bench, core, fpv, hdl, llm, mining, mutate, sim, sva

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "bench",
    "core",
    "fpv",
    "hdl",
    "llm",
    "mining",
    "mutate",
    "sim",
    "sva",
    "__version__",
]
