"""Static analysis: variable dependency graph, CDFG, cone of influence."""

from .graphs import (
    coi_features,
    cone_of_influence,
    control_data_flow_graph,
    fanout_cone,
    influence_ranking,
    sequential_depth,
    variable_dependency_graph,
)

__all__ = [
    "coi_features",
    "cone_of_influence",
    "control_data_flow_graph",
    "fanout_cone",
    "influence_ranking",
    "sequential_depth",
    "variable_dependency_graph",
]
