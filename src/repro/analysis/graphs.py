"""Static-analysis graphs over an elaborated design.

The paper (Observation 4) points out that the design insight LLMs lack is
exactly what classic assertion-generation tools compute from auxiliary
artifacts: the Control-Data Flow Graph (CDFG), the Variable Dependency Graph
(VDG), and the Cone of Influence (COI).  These structures also guide the
GoldMine-style miner's feature selection (:mod:`repro.mining.goldmine`).
"""

from __future__ import annotations

from typing import List, Optional, Set

import networkx as nx

from ..hdl import ast
from ..hdl.design import Design
from ..hdl.elaborate import RtlModel


def _model_of(design_or_model) -> RtlModel:
    if isinstance(design_or_model, Design):
        return design_or_model.model
    return design_or_model


# ---------------------------------------------------------------------------
# Variable dependency graph
# ---------------------------------------------------------------------------


def variable_dependency_graph(design_or_model) -> nx.DiGraph:
    """Build the VDG: an edge ``a -> b`` means signal ``b`` depends on ``a``.

    Dependencies are collected from continuous assignments, combinational
    always blocks, and sequential always blocks (including control
    dependencies through if/case conditions).
    """
    model = _model_of(design_or_model)
    graph = nx.DiGraph()
    graph.add_nodes_from(model.signals)

    for assign in model.assigns:
        for source in assign.supports:
            graph.add_edge(source, assign.target_name, kind="data")

    for process in model.comb_processes + model.seq_processes:
        _add_statement_dependencies(graph, process.body, control=frozenset(), model=model)

    return graph


def _add_statement_dependencies(
    graph: nx.DiGraph,
    stmt: ast.Stmt,
    control: frozenset,
    model: RtlModel,
) -> None:
    if isinstance(stmt, ast.Block):
        for inner in stmt.statements:
            _add_statement_dependencies(graph, inner, control, model)
    elif isinstance(stmt, ast.Assignment):
        targets = _target_names(stmt.target)
        sources = set(stmt.value.signals()) & set(model.signals)
        for target in targets:
            for source in sources:
                graph.add_edge(source, target, kind="data")
            for source in control:
                graph.add_edge(source, target, kind="control")
    elif isinstance(stmt, ast.If):
        condition_signals = frozenset(set(stmt.condition.signals()) & set(model.signals))
        _add_statement_dependencies(graph, stmt.then_body, control | condition_signals, model)
        if stmt.else_body is not None:
            _add_statement_dependencies(
                graph, stmt.else_body, control | condition_signals, model
            )
    elif isinstance(stmt, ast.Case):
        condition_signals = frozenset(set(stmt.subject.signals()) & set(model.signals))
        for item in stmt.items:
            _add_statement_dependencies(graph, item.body, control | condition_signals, model)
        if stmt.default is not None:
            _add_statement_dependencies(graph, stmt.default, control | condition_signals, model)


def _target_names(expr: ast.Expr) -> Set[str]:
    if isinstance(expr, ast.Identifier):
        return {expr.name}
    if isinstance(expr, (ast.BitSelect, ast.PartSelect)):
        return _target_names(expr.base)
    if isinstance(expr, ast.Concat):
        names: Set[str] = set()
        for part in expr.parts:
            names |= _target_names(part)
        return names
    return set()


# ---------------------------------------------------------------------------
# Cone of influence
# ---------------------------------------------------------------------------


def cone_of_influence(design_or_model, target: str) -> Set[str]:
    """All signals that can influence ``target`` (its transitive fan-in)."""
    model = _model_of(design_or_model)
    if target not in model.signals:
        raise KeyError(f"unknown signal {target!r}")
    graph = variable_dependency_graph(model)
    return set(nx.ancestors(graph, target)) | {target}


def fanout_cone(design_or_model, source: str) -> Set[str]:
    """All signals that ``source`` can influence (its transitive fan-out)."""
    model = _model_of(design_or_model)
    if source not in model.signals:
        raise KeyError(f"unknown signal {source!r}")
    graph = variable_dependency_graph(model)
    return set(nx.descendants(graph, source)) | {source}


# ---------------------------------------------------------------------------
# Control-data flow graph
# ---------------------------------------------------------------------------


def control_data_flow_graph(design_or_model) -> nx.DiGraph:
    """Build a CDFG with one node per process/assign and per signal.

    Node kinds: ``signal``, ``assign``, ``comb``, ``seq``.  Edges run from
    signals into the processes that read them and from processes to the
    signals they drive, so graph reachability answers both COI and fan-out
    questions at process granularity.
    """
    model = _model_of(design_or_model)
    graph = nx.DiGraph()
    for name in model.signals:
        graph.add_node(("signal", name), kind="signal", name=name)

    for index, assign in enumerate(model.assigns):
        node = ("assign", index)
        graph.add_node(node, kind="assign", target=assign.target_name)
        for source in assign.supports:
            graph.add_edge(("signal", source), node)
        graph.add_edge(node, ("signal", assign.target_name))

    for index, process in enumerate(model.comb_processes):
        node = ("comb", index)
        graph.add_node(node, kind="comb", targets=sorted(process.targets))
        for source in process.supports:
            graph.add_edge(("signal", source), node)
        for target in process.targets:
            graph.add_edge(node, ("signal", target))

    for index, process in enumerate(model.seq_processes):
        node = ("seq", index)
        graph.add_node(
            node, kind="seq", targets=sorted(process.targets), clock=process.clock
        )
        for source in process.supports:
            graph.add_edge(("signal", source), node)
        for target in process.targets:
            graph.add_edge(node, ("signal", target))

    return graph


# ---------------------------------------------------------------------------
# Derived summaries
# ---------------------------------------------------------------------------


def influence_ranking(design_or_model) -> List[str]:
    """Rank signals by how many other signals they influence (descending)."""
    model = _model_of(design_or_model)
    graph = variable_dependency_graph(model)
    scores = {name: len(nx.descendants(graph, name)) for name in model.signals}
    return sorted(model.signals, key=lambda name: (-scores[name], name))


def coi_features(
    design_or_model, target: str, include_state: bool = True
) -> List[str]:
    """Candidate antecedent signals for mining assertions about ``target``.

    Returns the cone of influence restricted to primary inputs and (optionally)
    state registers, excluding clocks — these are the observable quantities a
    GoldMine-style decision tree may branch on.
    """
    model = _model_of(design_or_model)
    cone = cone_of_influence(model, target)
    features = []
    for name in model.signals:
        if name not in cone or name == target:
            continue
        if name in model.clocks:
            continue
        signal = model.signals[name]
        if signal.kind == "input" or (include_state and signal.is_state):
            features.append(name)
    return features


def sequential_depth(design_or_model, source: str, target: str) -> Optional[int]:
    """Minimum number of register stages on a path from ``source`` to ``target``.

    Returns ``None`` when no path exists.  Used by the miners to decide how
    many ``##`` cycles to put between antecedent and consequent candidates.
    """
    model = _model_of(design_or_model)
    graph = variable_dependency_graph(model)
    if source not in graph or target not in graph:
        return None
    if not nx.has_path(graph, source, target):
        return None
    state = set(model.state_regs)
    best: Optional[int] = None
    for path in nx.all_shortest_paths(graph, source, target):
        depth = sum(1 for node in path[1:] if node in state)
        if best is None or depth < best:
            best = depth
    return best
