"""AssertionBench: the design corpus, knowledge base, and ICE construction."""

from .corpus import TEST_SPECS, TRAINING_SPECS, AssertionBenchCorpus, CorpusSpec, load_corpus
from .icl import IclExampleSet, build_icl_examples
from .knowledge import DesignKnowledge, DesignKnowledgeBase

__all__ = [
    "AssertionBenchCorpus",
    "CorpusSpec",
    "DesignKnowledge",
    "DesignKnowledgeBase",
    "IclExampleSet",
    "TEST_SPECS",
    "TRAINING_SPECS",
    "build_icl_examples",
    "load_corpus",
]
