"""AssertionBench: the design corpus, corpus registry, knowledge base, and ICEs."""

from .corpus import (
    CORPUS_REGISTRY,
    DEFAULT_CORPUS,
    SMOKE_CORPUS,
    TEST_SPECS,
    TRAINING_SPECS,
    AssertionBenchCorpus,
    CorpusEntry,
    CorpusRegistry,
    CorpusSpec,
    build_cache_stats,
    build_design,
    get_corpus,
    list_corpora,
    load_corpus,
    register_corpus,
    source_fingerprint,
)
from .icl import IclExampleSet, build_icl_examples
from .knowledge import DesignKnowledge, DesignKnowledgeBase

__all__ = [
    "AssertionBenchCorpus",
    "CORPUS_REGISTRY",
    "CorpusEntry",
    "CorpusRegistry",
    "CorpusSpec",
    "DEFAULT_CORPUS",
    "DesignKnowledge",
    "DesignKnowledgeBase",
    "IclExampleSet",
    "SMOKE_CORPUS",
    "TEST_SPECS",
    "TRAINING_SPECS",
    "build_cache_stats",
    "build_design",
    "build_icl_examples",
    "get_corpus",
    "list_corpora",
    "load_corpus",
    "register_corpus",
    "source_fingerprint",
]
