"""AssertionBench design corpus and the pluggable corpus registry.

The paper's benchmark (Section III) has a training set of five fundamental
designs (Arbiter, Half Adder, Full Adder, T flip-flop, Full Subtractor) whose
formally verified assertions seed the in-context examples, and a test set of
100 OpenCores designs, split between combinational and sequential, spanning
10 to ~1150 lines of code and covering communication controllers, RNGs for
security hardware, arithmetic datapaths, state machines, and flow-control
hardware.  This module assembles an equivalent corpus from the synthesizable
builders in :mod:`repro.bench.designs` (the substitution is documented in
DESIGN.md).

Corpora are looked up by name through the module-level registry
(:func:`register_corpus` / :func:`get_corpus` / :func:`list_corpora`), so
campaigns, the CLI, and tests all agree on what "assertionbench" or
"assertionbench-smoke" means.  Design construction is memoized process-wide:
a builder's source text is synthesized once per spec, and the parsed +
elaborated :class:`~repro.hdl.design.Design` is cached by source hash, so
building a second corpus instance (another suite, another evaluator, a
benchmark fixture) costs dictionary lookups instead of re-elaboration.

For multi-process campaigns a corpus can be split by design with
:meth:`AssertionBenchCorpus.shard`: shard *i of n* keeps every *n*-th test
design (training designs are replicated into every shard because every
worker needs the ICE pool).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..hdl.design import Design
from .designs import arithmetic, basic, comm, fsm, memory, sequential, wide


@dataclass(frozen=True)
class CorpusSpec:
    """Recipe for one corpus design."""

    name: str
    category: str
    functionality: str
    builder: Callable[[], str]
    split: str = "test"


def _spec(name, category, functionality, builder, split="test") -> CorpusSpec:
    return CorpusSpec(name, category, functionality, builder, split)


#: The five training designs (Section III of the paper).
TRAINING_SPECS: List[CorpusSpec] = [
    _spec("arb2", "arbitration", "2-port arbiter", basic.arb2, "train"),
    _spec("half_adder", "arithmetic", "Half adder", basic.half_adder, "train"),
    _spec("full_adder", "arithmetic", "Full adder", basic.full_adder, "train"),
    _spec("t_flip_flop", "storage", "T flip-flop", basic.t_flip_flop, "train"),
    _spec("full_subtractor", "arithmetic", "Full subtractor", basic.full_subtractor, "train"),
]


#: The 100 test designs, ordered roughly by category.
TEST_SPECS: List[CorpusSpec] = [
    # -- small combinational blocks -------------------------------------------------
    _spec("d_flip_flop", "storage", "D flip-flop with enable", basic.d_flip_flop),
    _spec("mux4_w2", "datapath", "4-to-1 multiplexer, 2-bit", partial(basic.mux4, 2)),
    _spec("mux4_w8", "datapath", "4-to-1 multiplexer, 8-bit", partial(basic.mux4, 8)),
    _spec("decoder4", "datapath", "2-to-4 decoder", partial(basic.decoder, 2)),
    _spec("decoder8", "datapath", "3-to-8 decoder", partial(basic.decoder, 3)),
    _spec("decoder16", "datapath", "4-to-16 decoder", partial(basic.decoder, 4)),
    _spec("priority_encoder4", "datapath", "4-line priority encoder", partial(basic.priority_encoder, 2)),
    _spec("priority_encoder8", "datapath", "8-line priority encoder", partial(basic.priority_encoder, 3)),
    _spec("comparator8", "datapath", "8-bit magnitude comparator", partial(basic.comparator, 8)),
    _spec("parity_gen8", "coding", "8-bit parity generator", partial(basic.parity_generator, 8)),
    _spec("gray_encoder4", "coding", "4-bit binary-to-Gray encoder", partial(basic.gray_encoder, 4)),
    _spec("inputReg", "storage", "Registered input stage", partial(basic.input_register, 8)),
    _spec("bitNegator", "datapath", "Registered bitwise negator", partial(basic.bit_negator, 8)),
    _spec("clean_rst", "infrastructure", "Reset synchroniser", basic.clean_reset),
    _spec("tcReset", "infrastructure", "Terminal-count reset generator", basic.tc_reset),
    # -- arithmetic datapaths ----------------------------------------------------------
    _spec("rca4", "arithmetic", "4-bit ripple-carry adder", partial(arithmetic.ripple_carry_adder, 4)),
    _spec("rca8", "arithmetic", "8-bit ripple-carry adder", partial(arithmetic.ripple_carry_adder, 8)),
    _spec("rca16", "arithmetic", "16-bit ripple-carry adder", partial(arithmetic.ripple_carry_adder, 16)),
    _spec("rca32", "arithmetic", "32-bit ripple-carry adder", partial(arithmetic.ripple_carry_adder, 32)),
    _spec("csel_adder8", "arithmetic", "8-bit carry-select adder", partial(arithmetic.carry_select_adder, 8)),
    _spec("csel_adder16", "arithmetic", "16-bit carry-select adder", partial(arithmetic.carry_select_adder, 16)),
    _spec("alu4", "arithmetic", "4-bit ALU", partial(arithmetic.alu, 4)),
    _spec("alu8", "arithmetic", "8-bit ALU", partial(arithmetic.alu, 8)),
    _spec("alu16", "arithmetic", "16-bit ALU", partial(arithmetic.alu, 16)),
    _spec("qadd", "arithmetic", "Fixed-point saturating adder", partial(arithmetic.qadd, 16)),
    _spec("multiplier4", "arithmetic", "4-bit shift-add multiplier", partial(arithmetic.shift_add_multiplier, 4)),
    _spec("multiplier8", "arithmetic", "8-bit shift-add multiplier", partial(arithmetic.shift_add_multiplier, 8)),
    _spec("barrel_shifter8", "datapath", "8-bit barrel shifter", partial(arithmetic.barrel_shifter, 8)),
    _spec("barrel_shifter16", "datapath", "16-bit barrel shifter", partial(arithmetic.barrel_shifter, 16)),
    _spec("barrel_shifter32", "datapath", "32-bit barrel shifter", partial(arithmetic.barrel_shifter, 32)),
    _spec("sat_accum8", "arithmetic", "Saturating accumulator, 8-bit", partial(arithmetic.saturating_accumulator, 8)),
    _spec("abs_diff8", "arithmetic", "Absolute difference unit", partial(arithmetic.abs_diff, 8)),
    _spec("mtx_trps_4x4", "dsp", "4x4 matrix transpose", partial(arithmetic.matrix_transpose, 4, 4)),
    _spec("mtx_trps_8x8_dpsra", "dsp", "8x8 matrix transpose", partial(arithmetic.matrix_transpose, 8, 4)),
    _spec("fht_1d_x8", "dsp", "8-point fast Hartley transform stage", partial(arithmetic.fht_butterfly, 8, 8)),
    _spec("fht_1d_x16", "dsp", "16-point fast Hartley transform stage", partial(arithmetic.fht_butterfly, 16, 8)),
    # -- counters, shift registers, RNGs ---------------------------------------------------
    _spec("counter", "sequential", "4-bit up counter", partial(sequential.up_counter, 4)),
    _spec("counter8", "sequential", "8-bit up counter", partial(sequential.up_counter, 8)),
    _spec("counter16", "sequential", "16-bit up counter", partial(sequential.up_counter, 16)),
    _spec("updown_counter4", "sequential", "4-bit up/down counter", partial(sequential.up_down_counter, 4)),
    _spec("mod10_counter", "sequential", "Decade counter", partial(sequential.mod_counter, 10, 4)),
    _spec("mod6_counter", "sequential", "Modulo-6 counter", partial(sequential.mod_counter, 6, 3)),
    _spec("gray_counter4", "sequential", "4-bit Gray-code counter", partial(sequential.gray_counter, 4)),
    _spec("gray_counter6", "sequential", "6-bit Gray-code counter", partial(sequential.gray_counter, 6)),
    _spec("shift_reg8", "sequential", "8-stage shift register", partial(sequential.shift_register, 8)),
    _spec("shift_reg16", "sequential", "16-stage shift register", partial(sequential.shift_register, 16)),
    _spec("shift_reg32", "sequential", "32-stage shift register", partial(sequential.shift_register, 32)),
    _spec("lfsr8", "security", "8-bit LFSR random number generator", partial(sequential.lfsr, 8)),
    _spec("lfsr16", "security", "16-bit LFSR random number generator", partial(sequential.lfsr, 16)),
    _spec("prng_small", "security", "4-bank pattern generator", partial(sequential.prng_bank, 4, 8)),
    _spec("ca_prng", "security", "Compact pattern generator", partial(sequential.prng_bank, 32, 28)),
    _spec("eth_clockgen", "infrastructure", "Programmable clock divider", partial(sequential.clock_divider, 3)),
    _spec("pwm4", "control", "4-bit pulse-width modulator", partial(sequential.pwm_generator, 4)),
    _spec("watchdog4", "control", "4-bit watchdog timer", partial(sequential.watchdog_timer, 4)),
    _spec("debouncer3", "control", "Switch debouncer", partial(sequential.debouncer, 3)),
    _spec("reg_int_sim", "control", "Interrupt status register", partial(sequential.register_with_interrupt, 8)),
    _spec("phasecomparator", "mixed-signal", "Phase/frequency comparator", sequential.phase_comparator),
    # -- finite state machines -------------------------------------------------------------
    _spec("seq_detect_1011", "fsm", "Sequence detector for 1011", partial(fsm.sequence_detector, "1011")),
    _spec("seq_detect_110", "fsm", "Sequence detector for 110", partial(fsm.sequence_detector, "110")),
    _spec("seq_detect_10110", "fsm", "Sequence detector for 10110", partial(fsm.sequence_detector, "10110")),
    _spec("traffic_light", "fsm", "Traffic light controller", fsm.traffic_light),
    _spec("vending_machine", "fsm", "Vending machine controller", fsm.vending_machine),
    _spec("handshake_ctrl", "fsm", "Four-phase handshake controller", fsm.handshake_controller),
    _spec("uart_tx", "communication", "UART transmitter", partial(fsm.uart_tx, 8)),
    _spec("rxStateMachine", "communication", "Serial receiver state machine", partial(fsm.rx_state_machine, 8)),
    _spec("mem_ctrl_fsm", "fsm", "SRAM controller FSM", fsm.memory_controller_fsm),
    _spec("elevator4", "fsm", "4-floor elevator controller", partial(fsm.elevator_controller, 4)),
    _spec("flow_ctrl", "flow-control", "Credit-based flow controller", partial(fsm.flow_control, 4)),
    _spec("crc_control_unit", "communication", "CRC datapath control unit", fsm.crc_control_unit),
    # -- coding and communication ------------------------------------------------------------
    _spec("crc5_gen", "communication", "CRC-5 generator", partial(comm.crc_generator, 5, 4)),
    _spec("crc8_gen", "communication", "CRC-8 generator", partial(comm.crc_generator, 8, 8)),
    _spec("crc16_gen", "communication", "CRC-16 generator", partial(comm.crc_generator, 16, 8)),
    _spec("crc32_gen", "communication", "CRC-32 generator", partial(comm.crc_generator, 32, 8)),
    _spec("can_crc", "communication", "CAN bus CRC-15", comm.can_crc),
    _spec("eth_l3_checksum", "communication", "Ones-complement checksum", partial(comm.checksum_unit, 8)),
    _spec("hamming_encoder", "coding", "Hamming(7,4) encoder", comm.hamming_encoder),
    _spec("hamming_decoder", "coding", "Hamming(7,4) decoder", comm.hamming_decoder),
    _spec("scrambler7", "coding", "Self-synchronising scrambler", partial(comm.scrambler, 7)),
    _spec("manchester_encoder", "coding", "Manchester encoder", comm.manchester_encoder),
    _spec("MAC_tx_Ctrl", "communication", "Ethernet MAC transmit controller", comm.mac_tx_ctrl),
    _spec("ge_1000baseX_rx", "communication", "1000BASE-X PCS receive synchroniser", comm.ge_1000basex_rx),
    _spec("PSGBusArb", "arbitration", "Fixed-priority bus arbiter", partial(comm.bus_arbiter, 4)),
    _spec("PSGOutputSummer", "dsp", "Registered channel summer", partial(comm.output_summer, 3, 8)),
    _spec("cavlc_read_total_coeffs", "video", "Video encoder coefficient table", partial(comm.cavlc_coeff_table, 16, 64)),
    _spec("cavlc_read_total_zeros", "video", "Video encoder total-zeros table", comm.cavlc_zeros_table),
    _spec("key_expander", "security", "Block-cipher key schedule", partial(comm.key_expander, 16, 4)),
    _spec("can_register_asyn_syn", "communication", "CAN register with set/clear", comm.can_register_async),
    # -- storage and interconnect ----------------------------------------------------------------
    _spec("fifo_mem", "storage", "Synchronous FIFO", partial(memory.fifo_mem, 4, 4)),
    _spec("fifo_mem8", "storage", "Synchronous FIFO, 8 deep", partial(memory.fifo_mem, 8, 8)),
    _spec("eth_fifo", "storage", "FIFO with status flags", partial(memory.eth_fifo, 4, 8)),
    _spec("stack_lifo", "storage", "LIFO stack", partial(memory.stack, 4, 4)),
    _spec("register_file", "storage", "Register file, 2R1W", partial(memory.register_file, 4, 4)),
    _spec("rr_arbiter4", "arbitration", "Round-robin arbiter, 4 ports", partial(memory.round_robin_arbiter, 4)),
    _spec("node", "network-on-chip", "Mesh router node", partial(memory.noc_node, 4)),
    _spec("decoder64", "datapath", "6-to-64 decoder", partial(basic.decoder, 6)),
    _spec("mtx_trps_12x12", "dsp", "12x12 matrix transpose", partial(arithmetic.matrix_transpose, 12, 4)),
    _spec("ge_prng_mid", "security", "16-bank pattern generator", partial(sequential.prng_bank, 16, 16)),
    _spec("cavlc_read_levels", "video", "Video encoder level decode table", partial(comm.cavlc_coeff_table, 16, 16)),
    _spec("register_file16", "storage", "Register file, 16 entries", partial(memory.register_file, 16, 8)),
    _spec("sync2", "infrastructure", "2-stage synchroniser", partial(memory.synchronizer, 2, 1)),
]


# ---------------------------------------------------------------------------
# Memoized design construction
# ---------------------------------------------------------------------------

#: Builder output per spec: synthesizing source is cheap but not free, and
#: every corpus instance shares the module-level spec lists, so one synthesis
#: per spec serves the whole process.  Keyed by the (frozen, hashable) spec
#: itself — an id() key could be recycled by the allocator after a custom
#: spec is garbage-collected and silently serve the wrong source.
_SOURCE_CACHE: Dict[CorpusSpec, str] = {}
#: Parsed + elaborated designs keyed by (source hash, identity fields).  Two
#: corpus instances (or two differently-named corpora sharing a builder)
#: reuse one elaboration as long as the source and metadata agree.
_DESIGN_CACHE: Dict[Tuple[str, str, str, str], Design] = {}
_BUILD_LOCK = threading.Lock()


def source_fingerprint(source: str) -> str:
    """Stable content hash of design source text (also used by run stores)."""
    return hashlib.sha256(source.encode()).hexdigest()[:16]


def build_design(spec: CorpusSpec) -> Design:
    """Synthesize, parse, and elaborate one spec, memoized process-wide."""
    with _BUILD_LOCK:
        source = _SOURCE_CACHE.get(spec)
    if source is None:
        source = spec.builder()
        with _BUILD_LOCK:
            _SOURCE_CACHE[spec] = source
    key = (source_fingerprint(source), spec.name, spec.functionality, spec.category)
    with _BUILD_LOCK:
        design = _DESIGN_CACHE.get(key)
    if design is None:
        design = Design.from_source(
            source,
            name=spec.name,
            functionality=spec.functionality,
            category=spec.category,
        )
        with _BUILD_LOCK:
            design = _DESIGN_CACHE.setdefault(key, design)
    return design


def build_cache_stats() -> Dict[str, int]:
    """Sizes of the process-wide memoization tables (for tests/diagnostics)."""
    with _BUILD_LOCK:
        return {"sources": len(_SOURCE_CACHE), "designs": len(_DESIGN_CACHE)}


class AssertionBenchCorpus:
    """Lazily built collection of the benchmark's designs.

    Designs are built on first access and memoized process-wide (see
    :func:`build_design`), so constructing many corpus instances does not
    re-synthesize or re-elaborate identical source.
    """

    def __init__(self, specs: Optional[Sequence[CorpusSpec]] = None):
        self._specs: List[CorpusSpec] = list(specs) if specs is not None else (
            TRAINING_SPECS + TEST_SPECS
        )
        self._by_name: Dict[str, CorpusSpec] = {spec.name: spec for spec in self._specs}

    # -- access --------------------------------------------------------------------

    @property
    def specs(self) -> List[CorpusSpec]:
        return list(self._specs)

    def names(self, split: Optional[str] = None) -> List[str]:
        return [spec.name for spec in self._specs if split is None or spec.split == split]

    def design(self, name: str) -> Design:
        """Build (or fetch from the process-wide cache) one design by name."""
        spec = self._by_name.get(name)
        if spec is None:
            raise KeyError(f"no corpus design named {name!r}")
        return build_design(spec)

    def training_designs(self) -> List[Design]:
        """The five training designs used for ICE construction."""
        return [self.design(spec.name) for spec in self._specs if spec.split == "train"]

    def test_designs(self, limit: Optional[int] = None) -> List[Design]:
        """The test designs, optionally truncated to the first ``limit``."""
        names = [spec.name for spec in self._specs if spec.split == "test"]
        if limit is not None:
            names = names[:limit]
        return [self.design(name) for name in names]

    def all_designs(self) -> List[Design]:
        return [self.design(spec.name) for spec in self._specs]

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self):
        return (self.design(spec.name) for spec in self._specs)

    # -- sharding ---------------------------------------------------------------------

    def shard(self, index: int, count: int) -> "AssertionBenchCorpus":
        """Shard ``index`` of ``count``: every ``count``-th test design.

        Training designs are replicated into every shard (each worker needs
        the full ICE pool); test designs are dealt round-robin so shard sizes
        differ by at most one and the union of all shards is the full corpus.
        """
        if count < 1:
            raise ValueError(f"shard count must be >= 1, got {count}")
        if not 0 <= index < count:
            raise ValueError(f"shard index {index} outside [0, {count})")
        train = [spec for spec in self._specs if spec.split == "train"]
        test = [spec for spec in self._specs if spec.split == "test"]
        return AssertionBenchCorpus(train + test[index::count])

    # -- reports ---------------------------------------------------------------------

    def loc_by_design(self, split: str = "test") -> Dict[str, int]:
        """Design name -> lines of code (Figure 3 data)."""
        return {design.name: design.loc for design in self._iter_split(split)}

    def representative_designs(self, count: int = 5) -> List[Design]:
        """The ``count`` largest test designs (Table I rows)."""
        designs = sorted(self._iter_split("test"), key=lambda d: -d.loc)
        return designs[:count]

    def split_counts(self) -> Dict[str, int]:
        """Number of combinational vs sequential designs in the test set."""
        counts = {"combinational": 0, "sequential": 0}
        for design in self._iter_split("test"):
            counts[design.design_type] += 1
        return counts

    def _iter_split(self, split: str):
        for spec in self._specs:
            if spec.split == split:
                yield self.design(spec.name)


# ---------------------------------------------------------------------------
# The corpus registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CorpusEntry:
    """One registered corpus: a named, lazily-invoked factory."""

    name: str
    factory: Callable[[], AssertionBenchCorpus]
    description: str = ""


class CorpusRegistry:
    """Name -> corpus factory mapping shared by campaigns, CLI, and tests."""

    def __init__(self):
        self._entries: Dict[str, CorpusEntry] = {}
        self._lock = threading.Lock()

    def register(
        self,
        name: str,
        factory: Callable[[], AssertionBenchCorpus],
        description: str = "",
        replace: bool = False,
    ) -> None:
        with self._lock:
            if name in self._entries and not replace:
                raise ValueError(f"corpus {name!r} is already registered")
            self._entries[name] = CorpusEntry(name, factory, description)

    def get(
        self, name: str, shard: Optional[Tuple[int, int]] = None
    ) -> AssertionBenchCorpus:
        """Build the named corpus, optionally sharded as ``(index, count)``."""
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            known = ", ".join(sorted(self._entries))
            raise KeyError(f"no corpus named {name!r} (registered: {known})")
        corpus = entry.factory()
        if shard is not None:
            corpus = corpus.shard(*shard)
        return corpus

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def entries(self) -> List[CorpusEntry]:
        with self._lock:
            return [self._entries[name] for name in sorted(self._entries)]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries


#: The process-wide registry.  Module-level helpers below are the public API.
CORPUS_REGISTRY = CorpusRegistry()

DEFAULT_CORPUS = "assertionbench"
SMOKE_CORPUS = "assertionbench-smoke"


def register_corpus(
    name: str,
    factory: Callable[[], AssertionBenchCorpus],
    description: str = "",
    replace: bool = False,
) -> None:
    """Register a corpus factory under ``name`` in the process-wide registry."""
    CORPUS_REGISTRY.register(name, factory, description, replace=replace)


def get_corpus(
    name: str = DEFAULT_CORPUS, shard: Optional[Tuple[int, int]] = None
) -> AssertionBenchCorpus:
    """Look up a registered corpus by name (optionally sharded)."""
    return CORPUS_REGISTRY.get(name, shard=shard)


def list_corpora() -> List[CorpusEntry]:
    """All registered corpora, sorted by name."""
    return CORPUS_REGISTRY.entries()


def _smoke_specs() -> List[CorpusSpec]:
    return TRAINING_SPECS + TEST_SPECS[:6]


def _split_specs(design_type_prefixes: Sequence[str]) -> List[CorpusSpec]:
    keep = [
        spec
        for spec in TEST_SPECS
        if any(spec.category.startswith(prefix) for prefix in design_type_prefixes)
    ]
    return TRAINING_SPECS + keep


register_corpus(
    DEFAULT_CORPUS,
    AssertionBenchCorpus,
    "Full AssertionBench: 5 training + 100 test designs (paper Section III)",
)
register_corpus(
    SMOKE_CORPUS,
    lambda: AssertionBenchCorpus(_smoke_specs()),
    "CI smoke subset: 5 training + 6 small test designs",
)
register_corpus(
    "assertionbench-arithmetic",
    lambda: AssertionBenchCorpus(_split_specs(["arithmetic", "dsp"])),
    "Arithmetic and DSP datapaths only",
)
register_corpus(
    "assertionbench-control",
    lambda: AssertionBenchCorpus(_split_specs(["fsm", "control", "flow-control", "arbitration"])),
    "State machines, arbiters, and control blocks only",
)

#: Designs whose reachable state × input space the FPV engine sweeps
#: explicitly under its default caps — the workload of the vectorized-kernel
#: benchmark (``benchmarks/test_bench_fpv_kernel.py``).  Sequential designs
#: with enumerable inputs and small state vectors; the heavy sweeps
#: (``watchdog4``, ``pwm4``, ``eth_clockgen``, ``MAC_tx_Ctrl``) dominate.
_FPV_KERNEL_NAMES = [
    "arb2",
    "t_flip_flop",
    "d_flip_flop",
    "counter",
    "updown_counter4",
    "mod10_counter",
    "mod6_counter",
    "gray_counter4",
    "gray_counter6",
    "pwm4",
    "watchdog4",
    "debouncer3",
    "eth_clockgen",
    "seq_detect_1011",
    "seq_detect_110",
    "seq_detect_10110",
    "traffic_light",
    "vending_machine",
    "handshake_ctrl",
    "mem_ctrl_fsm",
    "elevator4",
    "flow_ctrl",
    "MAC_tx_Ctrl",
    "rr_arbiter4",
    "phasecomparator",
]


def _fpv_kernel_specs() -> List[CorpusSpec]:
    keep = set(_FPV_KERNEL_NAMES)
    return [spec for spec in TRAINING_SPECS + TEST_SPECS if spec.name in keep]


register_corpus(
    "assertionbench-fpv-kernel",
    lambda: AssertionBenchCorpus(_fpv_kernel_specs()),
    "Explicit-state sweep designs driving the FPV kernel benchmark",
)

register_corpus(
    "assertionbench-mutation",
    lambda: AssertionBenchCorpus(_fpv_kernel_specs()),
    "Mutation-analysis workload: designs whose mutants stay exhaustively checkable",
)

#: Wide-datapath family: every design carries operands past the 64-bit packed
#: ceiling, so the whole corpus exercises the multi-limb (and, for narrow
#: control planes, bit-sliced) lowering strategies.  Zero scalar fallbacks
#: across this corpus is a CI-gated invariant.
WIDE_SPECS: List[CorpusSpec] = [
    _spec("wide_counter100", "wide-arithmetic", "100-bit strided up counter", partial(wide.wide_counter, 100, 1)),
    _spec("wide_counter128", "wide-arithmetic", "128-bit strided up counter", partial(wide.wide_counter, 128, 2)),
    _spec("wide_accum100", "wide-arithmetic", "100-bit add/sub accumulator", partial(wide.wide_accumulator, 100, 16, 3)),
    _spec("wide_accum96", "wide-arithmetic", "96-bit add/sub accumulator", partial(wide.wide_accumulator, 96, 24, 4)),
    _spec("wide_cmp100", "wide-datapath", "100-bit magnitude comparator", partial(wide.wide_compare, 100, 5)),
    _spec("wide_cmp80", "wide-datapath", "80-bit magnitude comparator", partial(wide.wide_compare, 80, 6)),
    _spec("wide_checksum96", "wide-coding", "96-bit bus running checksum", partial(wide.wide_checksum, 96, 16, 7)),
    _spec("wide_checksum128", "wide-coding", "128-bit bus running checksum", partial(wide.wide_checksum, 128, 16, 8)),
    _spec("wide_mul40x40", "wide-arithmetic", "40x40 full-precision multiplier", partial(wide.wide_multiplier, 40)),
    _spec("wide_mul48x48", "wide-arithmetic", "48x48 full-precision multiplier", partial(wide.wide_multiplier, 48)),
    _spec("pow_lfsr72", "wide-security", "72-bit power-map pattern generator", partial(wide.pow_lfsr, 72, 9)),
    _spec("pow_lfsr80", "wide-security", "80-bit power-map pattern generator", partial(wide.pow_lfsr, 80, 10)),
    _spec("wide_shift80", "wide-datapath", "80-bit dynamic barrel shifter", partial(wide.wide_shifter, 80)),
    _spec("wide_shift100", "wide-datapath", "100-bit dynamic barrel shifter", partial(wide.wide_shifter, 100)),
    _spec("wide_mux96", "wide-datapath", "96-bit constant-bank mux", partial(wide.wide_mux_bank, 96, 4, 11)),
]

register_corpus(
    "assertionbench-wide",
    lambda: AssertionBenchCorpus(WIDE_SPECS),
    "Wide-operand designs (>64-bit) driving the multi-limb lowering path",
)


def load_corpus() -> AssertionBenchCorpus:
    """Load the full AssertionBench corpus (5 training + 100 test designs)."""
    return get_corpus(DEFAULT_CORPUS)
