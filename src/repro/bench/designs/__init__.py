"""Verilog design builders for the AssertionBench corpus.

Each builder returns Verilog source text for one synthesizable module within
the supported subset.  The corpus assembly in :mod:`repro.bench.corpus`
instantiates these builders (with varying parameters) into the training and
test design sets.
"""

from . import arithmetic, basic, comm, fsm, memory, sequential

__all__ = ["arithmetic", "basic", "comm", "fsm", "memory", "sequential"]
