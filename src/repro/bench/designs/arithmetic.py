"""Arithmetic datapath designs: adders, ALUs, fixed-point blocks, shifters.

These builders emit explicit bit-level logic (one assign/statement per bit or
stage) so that larger instantiations reach the line counts of the mid-sized
OpenCores designs the paper's test set contains (Figure 3).
"""

from __future__ import annotations


def ripple_carry_adder(width: int = 8) -> str:
    """Structural ripple-carry adder: explicit sum/carry equations per bit."""
    lines = [
        f"module rca{width}(a, b, cin, sum, cout);",
        f"  input [{width - 1}:0] a, b;",
        "  input cin;",
        f"  output [{width - 1}:0] sum;",
        "  output cout;",
        f"  wire [{width}:0] carry;",
        "  assign carry[0] = cin;",
    ]
    for index in range(width):
        lines.append(f"  assign sum[{index}] = a[{index}] ^ b[{index}] ^ carry[{index}];")
        lines.append(
            f"  assign carry[{index + 1}] = (a[{index}] & b[{index}]) | "
            f"(a[{index}] & carry[{index}]) | (b[{index}] & carry[{index}]);"
        )
    lines.append(f"  assign cout = carry[{width}];")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def carry_select_adder(width: int = 8, block: int = 4) -> str:
    """Carry-select adder built from per-bit equations for both carry guesses."""
    lines = [
        f"module csel_adder{width}(a, b, cin, sum, cout);",
        f"  input [{width - 1}:0] a, b;",
        "  input cin;",
        f"  output [{width - 1}:0] sum;",
        "  output cout;",
        f"  wire [{width}:0] c;",
        "  assign c[0] = cin;",
    ]
    for start in range(0, width, block):
        end = min(start + block, width)
        for index in range(start, end):
            lines.append(
                f"  wire s0_{index}, s1_{index}, c0_{index}, c1_{index};"
            )
            prev0 = f"c0_{index - 1}" if index > start else "1'b0"
            prev1 = f"c1_{index - 1}" if index > start else "1'b1"
            lines.append(f"  assign s0_{index} = a[{index}] ^ b[{index}] ^ {prev0};")
            lines.append(
                f"  assign c0_{index} = (a[{index}] & b[{index}]) | (a[{index}] & {prev0}) | (b[{index}] & {prev0});"
            )
            lines.append(f"  assign s1_{index} = a[{index}] ^ b[{index}] ^ {prev1};")
            lines.append(
                f"  assign c1_{index} = (a[{index}] & b[{index}]) | (a[{index}] & {prev1}) | (b[{index}] & {prev1});"
            )
        for index in range(start, end):
            lines.append(
                f"  assign sum[{index}] = c[{start}] ? s1_{index} : s0_{index};"
            )
        lines.append(
            f"  assign c[{end}] = c[{start}] ? c1_{end - 1} : c0_{end - 1};"
        )
    lines.append(f"  assign cout = c[{width}];")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def alu(width: int = 8) -> str:
    """Small ALU with add/sub/logic/shift/compare operations."""
    return f"""\
module alu{width}(op, a, b, result, zero, negative, carry_out);
  input [3:0] op;
  input [{width - 1}:0] a, b;
  output reg [{width - 1}:0] result;
  output zero, negative;
  output reg carry_out;
  wire [{width}:0] add_full;
  wire [{width}:0] sub_full;
  assign add_full = a + b;
  assign sub_full = a - b;
  always @(*) begin
    carry_out = 1'b0;
    case (op)
      4'd0: begin
        result = add_full[{width - 1}:0];
        carry_out = add_full[{width}];
      end
      4'd1: begin
        result = sub_full[{width - 1}:0];
        carry_out = sub_full[{width}];
      end
      4'd2: result = a & b;
      4'd3: result = a | b;
      4'd4: result = a ^ b;
      4'd5: result = ~a;
      4'd6: result = a << 1;
      4'd7: result = a >> 1;
      4'd8: result = (a < b) ? {width}'d1 : {width}'d0;
      4'd9: result = (a == b) ? {width}'d1 : {width}'d0;
      4'd10: result = a + 1;
      4'd11: result = a - 1;
      4'd12: result = b;
      4'd13: result = a & ~b;
      4'd14: result = a | ~b;
      default: result = a;
    endcase
  end
  assign zero = (result == 0);
  assign negative = result[{width - 1}];
endmodule
"""


def qadd(width: int = 16) -> str:
    """Fixed-point saturating adder (qadd.v analogue).

    Operands are sign-magnitude fixed point: bit ``width-1`` is the sign.
    """
    magnitude = width - 1
    return f"""\
module qadd(a, b, c);
  input [{width - 1}:0] a, b;
  output reg [{width - 1}:0] c;
  reg [{magnitude - 1}:0] mag_a, mag_b;
  reg [{magnitude}:0] mag_sum;
  reg sign_a, sign_b;
  always @(*) begin
    sign_a = a[{width - 1}];
    sign_b = b[{width - 1}];
    mag_a = a[{magnitude - 1}:0];
    mag_b = b[{magnitude - 1}:0];
    if (sign_a == sign_b) begin
      mag_sum = mag_a + mag_b;
      if (mag_sum[{magnitude}])
        c = {{sign_a, {{{magnitude}{{1'b1}}}}}};
      else
        c = {{sign_a, mag_sum[{magnitude - 1}:0]}};
    end else begin
      if (mag_a >= mag_b) begin
        mag_sum = mag_a - mag_b;
        c = {{sign_a, mag_sum[{magnitude - 1}:0]}};
      end else begin
        mag_sum = mag_b - mag_a;
        c = {{sign_b, mag_sum[{magnitude - 1}:0]}};
      end
    end
  end
endmodule
"""


def shift_add_multiplier(width: int = 4) -> str:
    """Sequential shift-and-add multiplier with start/done handshake."""
    total = width * 2
    return f"""\
module multiplier{width}(clk, rst, start, multiplicand, multiplier, product, busy, done);
  input clk, rst, start;
  input [{width - 1}:0] multiplicand, multiplier;
  output reg [{total - 1}:0] product;
  output busy, done;
  reg [{width - 1}:0] mcand_reg;
  reg [{width - 1}:0] mult_reg;
  reg [{total - 1}:0] accum;
  reg [{width}:0] count;
  reg running;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      mcand_reg <= 0;
      mult_reg <= 0;
      accum <= 0;
      count <= 0;
      running <= 1'b0;
      product <= 0;
    end else if (start && !running) begin
      mcand_reg <= multiplicand;
      mult_reg <= multiplier;
      accum <= 0;
      count <= {width};
      running <= 1'b1;
    end else if (running) begin
      if (mult_reg[0])
        accum <= accum + {{{{{width}{{1'b0}}}}, mcand_reg}};
      if (count == 1) begin
        running <= 1'b0;
        if (mult_reg[0])
          product <= accum + {{{{{width}{{1'b0}}}}, mcand_reg}};
        else
          product <= accum;
      end
      mcand_reg <= mcand_reg << 1;
      mult_reg <= mult_reg >> 1;
      count <= count - 1;
    end
  end
  assign busy = running;
  assign done = !running && (count == 0);
endmodule
"""


def barrel_shifter(width: int = 8) -> str:
    """Logarithmic barrel shifter with explicit per-stage muxing."""
    import math

    stages = max(1, int(math.ceil(math.log2(width))))
    lines = [
        f"module barrel_shifter{width}(data_in, shift, direction, data_out);",
        f"  input [{width - 1}:0] data_in;",
        f"  input [{stages - 1}:0] shift;",
        "  input direction;",
        f"  output [{width - 1}:0] data_out;",
        f"  wire [{width - 1}:0] stage_in_0;",
        "  assign stage_in_0 = data_in;",
    ]
    for stage in range(stages):
        amount = 1 << stage
        lines.append(f"  wire [{width - 1}:0] left_{stage}, right_{stage}, stage_in_{stage + 1};")
        lines.append(f"  assign left_{stage} = stage_in_{stage} << {amount};")
        lines.append(f"  assign right_{stage} = stage_in_{stage} >> {amount};")
        lines.append(
            f"  assign stage_in_{stage + 1} = shift[{stage}] ? "
            f"(direction ? right_{stage} : left_{stage}) : stage_in_{stage};"
        )
    lines.append(f"  assign data_out = stage_in_{stages};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def saturating_accumulator(width: int = 8) -> str:
    """Accumulator that saturates at its maximum instead of wrapping."""
    max_value = (1 << width) - 1
    return f"""\
module sat_accum{width}(clk, rst, clear, add_en, value, total, saturated);
  input clk, rst, clear, add_en;
  input [{width - 1}:0] value;
  output reg [{width - 1}:0] total;
  output saturated;
  wire [{width}:0] next_sum;
  assign next_sum = total + value;
  always @(posedge clk or posedge rst) begin
    if (rst)
      total <= 0;
    else if (clear)
      total <= 0;
    else if (add_en) begin
      if (next_sum[{width}])
        total <= {width}'d{max_value};
      else
        total <= next_sum[{width - 1}:0];
    end
  end
  assign saturated = (total == {width}'d{max_value});
endmodule
"""


def abs_diff(width: int = 8) -> str:
    """Absolute-difference unit with min/max outputs."""
    return f"""\
module abs_diff{width}(a, b, diff, min_val, max_val);
  input [{width - 1}:0] a, b;
  output [{width - 1}:0] diff, min_val, max_val;
  assign max_val = (a >= b) ? a : b;
  assign min_val = (a >= b) ? b : a;
  assign diff = max_val - min_val;
endmodule
"""


def matrix_transpose(rows: int = 4, width: int = 4) -> str:
    """Registered matrix transpose (mtx_trps analogue).

    The matrix is presented as ``rows*rows`` packed elements; the transposed
    matrix is registered on ``load``.  Explicit per-element assignments give
    the design a realistic line count.
    """
    count = rows * rows
    total_bits = count * width
    lines = [
        f"module mtx_trps_{rows}x{rows}(clk, rst, load, matrix_in, matrix_out, valid);",
        "  input clk, rst, load;",
        f"  input [{total_bits - 1}:0] matrix_in;",
        f"  output reg [{total_bits - 1}:0] matrix_out;",
        "  output reg valid;",
        "  always @(posedge clk or posedge rst) begin",
        "    if (rst) begin",
        "      matrix_out <= 0;",
        "      valid <= 1'b0;",
        "    end else if (load) begin",
    ]
    for row in range(rows):
        for col in range(rows):
            src = (row * rows + col) * width
            dst = (col * rows + row) * width
            lines.append(
                f"      matrix_out[{dst + width - 1}:{dst}] <= matrix_in[{src + width - 1}:{src}];"
            )
    lines.append("      valid <= 1'b1;")
    lines.append("    end else begin")
    lines.append("      valid <= 1'b0;")
    lines.append("    end")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def fht_butterfly(points: int = 8, width: int = 8) -> str:
    """One stage of a fast Hartley transform datapath (fht_1d analogue).

    Produces explicit butterfly add/sub pairs followed by a registered output
    stage; larger ``points`` values scale the line count up realistically.
    """
    lines = [
        f"module fht_1d_x{points}(clk, rst, start, data_in, data_out, done);",
        "  input clk, rst, start;",
        f"  input [{points * width - 1}:0] data_in;",
        f"  output reg [{points * width - 1}:0] data_out;",
        "  output reg done;",
    ]
    for index in range(points):
        low = index * width
        lines.append(f"  wire [{width - 1}:0] x{index};")
        lines.append(f"  assign x{index} = data_in[{low + width - 1}:{low}];")
    half = points // 2
    for index in range(half):
        lines.append(f"  wire [{width - 1}:0] sum{index}, diff{index};")
        lines.append(f"  assign sum{index} = x{index} + x{index + half};")
        lines.append(f"  assign diff{index} = x{index} - x{index + half};")
    lines.append("  always @(posedge clk or posedge rst) begin")
    lines.append("    if (rst) begin")
    lines.append("      data_out <= 0;")
    lines.append("      done <= 1'b0;")
    lines.append("    end else if (start) begin")
    for index in range(half):
        low = index * width
        lines.append(f"      data_out[{low + width - 1}:{low}] <= sum{index};")
    for index in range(half):
        low = (index + half) * width
        lines.append(f"      data_out[{low + width - 1}:{low}] <= diff{index};")
    lines.append("      done <= 1'b1;")
    lines.append("    end else begin")
    lines.append("      done <= 1'b0;")
    lines.append("    end")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
