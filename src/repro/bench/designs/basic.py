"""Basic training-set designs and small combinational blocks.

The paper's training set (Section III) consists of an Arbiter, Half Adder,
Full Adder, T flip-flop, and Full Subtractor; the arbiter reproduced here is
the corrected version of Figure 1 (the published listing's priority branch
``gnt1 = req1 & req2`` contradicts the claimed verdict of assertion P1, so we
use ``gnt1 = req1 & ~req2``, which makes P1 provable and P2 a CEX exactly as
the paper reports).
"""

from __future__ import annotations


def arb2() -> str:
    """2-port arbiter from the paper's Figure 1 (with the priority fix)."""
    return """\
module arb2(clk, rst, req1, req2, gnt1, gnt2);
  input clk, rst, req1, req2;
  output gnt1, gnt2;
  reg gnt_;
  reg gnt1, gnt2;
  always @(posedge clk or posedge rst)
    if (rst)
      gnt_ <= 0;
    else
      gnt_ <= gnt1;
  always @(*)
    if (gnt_)
      begin
        gnt1 = req1 & ~req2;
        gnt2 = req2;
      end
    else
      begin
        gnt1 = req1;
        gnt2 = req2 & ~req1;
      end
endmodule
"""


def half_adder() -> str:
    """Combinational half adder."""
    return """\
module half_adder(a, b, sum, carry);
  input a, b;
  output sum, carry;
  assign sum = a ^ b;
  assign carry = a & b;
endmodule
"""


def full_adder() -> str:
    """Combinational full adder."""
    return """\
module full_adder(a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire p, g, c1;
  assign p = a ^ b;
  assign g = a & b;
  assign sum = p ^ cin;
  assign c1 = p & cin;
  assign cout = g | c1;
endmodule
"""


def full_subtractor() -> str:
    """Combinational full subtractor."""
    return """\
module full_subtractor(a, b, bin, diff, bout);
  input a, b, bin;
  output diff, bout;
  wire axb;
  assign axb = a ^ b;
  assign diff = axb ^ bin;
  assign bout = (~a & b) | (~axb & bin);
endmodule
"""


def t_flip_flop() -> str:
    """T flip-flop with synchronous enable and asynchronous reset."""
    return """\
module t_flip_flop(clk, rst, t, q, qbar);
  input clk, rst, t;
  output q, qbar;
  reg q;
  always @(posedge clk or posedge rst)
    if (rst)
      q <= 1'b0;
    else if (t)
      q <= ~q;
  assign qbar = ~q;
endmodule
"""


def d_flip_flop() -> str:
    """D flip-flop with enable."""
    return """\
module d_flip_flop(clk, rst, en, d, q);
  input clk, rst, en, d;
  output q;
  reg q;
  always @(posedge clk or posedge rst)
    if (rst)
      q <= 1'b0;
    else if (en)
      q <= d;
endmodule
"""


def mux4(width: int = 4) -> str:
    """4-to-1 multiplexer with a parameterised data width."""
    return f"""\
module mux4(sel, in0, in1, in2, in3, out);
  input [1:0] sel;
  input [{width - 1}:0] in0, in1, in2, in3;
  output reg [{width - 1}:0] out;
  always @(*)
    case (sel)
      2'd0: out = in0;
      2'd1: out = in1;
      2'd2: out = in2;
      default: out = in3;
    endcase
endmodule
"""


def decoder(bits: int = 3) -> str:
    """Binary decoder with one explicit assign per output line."""
    lines = [
        f"module decoder{1 << bits}(en, sel, y);",
        "  input en;",
        f"  input [{bits - 1}:0] sel;",
        f"  output [{(1 << bits) - 1}:0] y;",
    ]
    for index in range(1 << bits):
        lines.append(f"  assign y[{index}] = en & (sel == {bits}'d{index});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def priority_encoder(bits: int = 3) -> str:
    """Priority encoder over 2**bits request lines."""
    count = 1 << bits
    lines = [
        f"module priority_encoder{count}(req, grant_index, valid);",
        f"  input [{count - 1}:0] req;",
        f"  output reg [{bits - 1}:0] grant_index;",
        "  output reg valid;",
        "  always @(*) begin",
        f"    grant_index = {bits}'d0;",
        "    valid = 1'b0;",
    ]
    for index in range(count - 1, -1, -1):
        lines.append(f"    if (req[{index}]) begin")
        lines.append(f"      grant_index = {bits}'d{index};")
        lines.append("      valid = 1'b1;")
        lines.append("    end")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def comparator(width: int = 4) -> str:
    """Magnitude comparator."""
    return f"""\
module comparator{width}(a, b, eq, lt, gt);
  input [{width - 1}:0] a, b;
  output eq, lt, gt;
  assign eq = (a == b);
  assign lt = (a < b);
  assign gt = (a > b);
endmodule
"""


def parity_generator(width: int = 8) -> str:
    """Even/odd parity generator with an explicit XOR chain."""
    lines = [
        f"module parity_gen{width}(data, even_parity, odd_parity);",
        f"  input [{width - 1}:0] data;",
        "  output even_parity, odd_parity;",
        f"  wire [{width - 1}:0] chain;",
        "  assign chain[0] = data[0];",
    ]
    for index in range(1, width):
        lines.append(f"  assign chain[{index}] = chain[{index - 1}] ^ data[{index}];")
    lines.append(f"  assign even_parity = chain[{width - 1}];")
    lines.append(f"  assign odd_parity = ~chain[{width - 1}];")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def gray_encoder(width: int = 4) -> str:
    """Binary-to-Gray encoder with one assign per bit."""
    lines = [
        f"module gray_encoder{width}(binary, gray);",
        f"  input [{width - 1}:0] binary;",
        f"  output [{width - 1}:0] gray;",
        f"  assign gray[{width - 1}] = binary[{width - 1}];",
    ]
    for index in range(width - 2, -1, -1):
        lines.append(f"  assign gray[{index}] = binary[{index + 1}] ^ binary[{index}];")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def input_register(width: int = 8) -> str:
    """Registered input stage with enable and clear (inputReg.v analogue)."""
    return f"""\
module input_reg(clk, rst, load, clear, data_in, data_out, loaded);
  input clk, rst, load, clear;
  input [{width - 1}:0] data_in;
  output reg [{width - 1}:0] data_out;
  output reg loaded;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      data_out <= 0;
      loaded <= 1'b0;
    end else if (clear) begin
      data_out <= 0;
      loaded <= 1'b0;
    end else if (load) begin
      data_out <= data_in;
      loaded <= 1'b1;
    end
  end
endmodule
"""


def bit_negator(width: int = 8) -> str:
    """Registered bitwise negator (bitNegator.v analogue)."""
    lines = [
        "module bit_negator(clk, rst, en, data_in, data_out);",
        "  input clk, rst, en;",
        f"  input [{width - 1}:0] data_in;",
        f"  output reg [{width - 1}:0] data_out;",
        "  always @(posedge clk or posedge rst) begin",
        "    if (rst)",
        "      data_out <= 0;",
        "    else if (en) begin",
    ]
    for index in range(width):
        lines.append(f"      data_out[{index}] <= ~data_in[{index}];")
    lines.append("    end")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def clean_reset() -> str:
    """Reset synchroniser / stretcher (clean_rst.v analogue)."""
    return """\
module clean_rst(clk, rst_in, rst_out);
  input clk, rst_in;
  output rst_out;
  reg sync0, sync1, sync2;
  always @(posedge clk or posedge rst_in) begin
    if (rst_in) begin
      sync0 <= 1'b1;
      sync1 <= 1'b1;
      sync2 <= 1'b1;
    end else begin
      sync0 <= 1'b0;
      sync1 <= sync0;
      sync2 <= sync1;
    end
  end
  assign rst_out = sync2;
endmodule
"""


def tc_reset() -> str:
    """Terminal-count reset generator (tcReset.v analogue)."""
    return """\
module tc_reset(clk, rst, count_en, tc, count);
  input clk, rst, count_en;
  output tc;
  output reg [3:0] count;
  always @(posedge clk or posedge rst) begin
    if (rst)
      count <= 4'd0;
    else if (count_en) begin
      if (count == 4'd11)
        count <= 4'd0;
      else
        count <= count + 4'd1;
    end
  end
  assign tc = (count == 4'd11);
endmodule
"""
