"""Communication and coding designs: CRC, checksum, Hamming, scramblers, MAC.

These reproduce the "communication controllers", Ethernet-layer helpers, and
CAN-style blocks in the paper's test set.  CRC builders unroll the
polynomial update into explicit per-bit equations, which is both how the
OpenCores implementations look and how the larger line counts arise.
"""

from __future__ import annotations

from typing import List, Sequence


def _crc_next_equations(width: int, poly_taps: Sequence[int], data_bits: int) -> List[str]:
    """Symbolically unroll a serial CRC over ``data_bits`` input bits.

    State is a list of XOR sets (one per CRC bit); each set contains symbolic
    atoms ``c<i>`` (current CRC bits) and ``d<j>`` (data bits, MSB first).
    """
    state = [{f"c{i}"} for i in range(width)]
    for j in range(data_bits - 1, -1, -1):
        feedback = state[width - 1] ^ {f"d{j}"}
        new_state = []
        for i in range(width):
            if i == 0:
                new_state.append(set(feedback))
            elif i in poly_taps:
                new_state.append(state[i - 1] ^ feedback)
            else:
                new_state.append(set(state[i - 1]))
        state = new_state
    equations = []
    for i in range(width):
        terms = sorted(state[i])
        rendered = " ^ ".join(
            f"crc[{term[1:]}]" if term.startswith("c") else f"data[{term[1:]}]"
            for term in terms
        )
        equations.append(rendered if rendered else "1'b0")
    return equations


def crc_generator(width: int = 8, data_bits: int = 8, name: str = "") -> str:
    """Parallel CRC generator with explicit next-state equations per bit."""
    polynomials = {
        5: (0, 2),
        8: (0, 1, 2),
        15: (0, 3, 4, 7, 10, 14),
        16: (0, 5, 12),
        32: (0, 1, 2, 4, 5, 7, 8, 10, 11, 12, 16, 22, 23, 26),
    }
    taps = polynomials.get(width, (0, 1, 2))
    module = name or f"crc{width}_gen"
    equations = _crc_next_equations(width, set(taps) - {0}, data_bits)
    lines = [
        f"module {module}(clk, rst, enable, init, data, crc, crc_valid);",
        "  input clk, rst, enable, init;",
        f"  input [{data_bits - 1}:0] data;",
        f"  output reg [{width - 1}:0] crc;",
        "  output reg crc_valid;",
        "  always @(posedge clk or posedge rst) begin",
        "    if (rst) begin",
        f"      crc <= {{{width}{{1'b1}}}};",
        "      crc_valid <= 1'b0;",
        "    end else if (init) begin",
        f"      crc <= {{{width}{{1'b1}}}};",
        "      crc_valid <= 1'b0;",
        "    end else if (enable) begin",
    ]
    for index, equation in enumerate(equations):
        lines.append(f"      crc[{index}] <= {equation};")
    lines.append("      crc_valid <= 1'b1;")
    lines.append("    end else begin")
    lines.append("      crc_valid <= 1'b0;")
    lines.append("    end")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def can_crc() -> str:
    """CAN bus CRC-15 over a serial bit stream (can_crc.v analogue)."""
    return """\
module can_crc(clk, rst, data_bit, enable, initialize, crc, crc_error);
  input clk, rst, data_bit, enable, initialize;
  output reg [14:0] crc;
  output crc_error;
  wire crc_next;
  wire [14:0] crc_shifted;
  assign crc_next = data_bit ^ crc[14];
  assign crc_shifted = crc << 1;
  always @(posedge clk or posedge rst) begin
    if (rst)
      crc <= 15'd0;
    else if (initialize)
      crc <= 15'd0;
    else if (enable) begin
      if (crc_next)
        crc <= crc_shifted ^ 15'h4599;
      else
        crc <= crc_shifted;
    end
  end
  assign crc_error = (crc != 15'd0);
endmodule
"""


def checksum_unit(width: int = 8) -> str:
    """Ones-complement checksum accumulator (eth_l3_checksum analogue)."""
    return f"""\
module eth_l3_checksum(clk, rst, clear, word_valid, word_in, checksum, checksum_ready);
  input clk, rst, clear, word_valid;
  input [{width - 1}:0] word_in;
  output [{width - 1}:0] checksum;
  output reg checksum_ready;
  reg [{width}:0] accum;
  wire [{width}:0] sum_next;
  assign sum_next = accum[{width - 1}:0] + word_in + accum[{width}];
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      accum <= 0;
      checksum_ready <= 1'b0;
    end else if (clear) begin
      accum <= 0;
      checksum_ready <= 1'b0;
    end else if (word_valid) begin
      accum <= sum_next;
      checksum_ready <= 1'b1;
    end else begin
      checksum_ready <= 1'b0;
    end
  end
  assign checksum = ~accum[{width - 1}:0];
endmodule
"""


def hamming_encoder() -> str:
    """Hamming(7,4) encoder."""
    return """\
module hamming_encoder(data_in, code_out);
  input [3:0] data_in;
  output [6:0] code_out;
  assign code_out[0] = data_in[0] ^ data_in[1] ^ data_in[3];
  assign code_out[1] = data_in[0] ^ data_in[2] ^ data_in[3];
  assign code_out[2] = data_in[0];
  assign code_out[3] = data_in[1] ^ data_in[2] ^ data_in[3];
  assign code_out[4] = data_in[1];
  assign code_out[5] = data_in[2];
  assign code_out[6] = data_in[3];
endmodule
"""


def hamming_decoder() -> str:
    """Hamming(7,4) decoder with single-error correction."""
    return """\
module hamming_decoder(code_in, data_out, error_detected, error_position);
  input [6:0] code_in;
  output [3:0] data_out;
  output error_detected;
  output [2:0] error_position;
  wire s0, s1, s2;
  wire [6:0] corrected;
  assign s0 = code_in[0] ^ code_in[2] ^ code_in[4] ^ code_in[6];
  assign s1 = code_in[1] ^ code_in[2] ^ code_in[5] ^ code_in[6];
  assign s2 = code_in[3] ^ code_in[4] ^ code_in[5] ^ code_in[6];
  assign error_position = {s2, s1, s0};
  assign error_detected = (error_position != 3'd0);
  assign corrected[0] = (error_position == 3'd1) ? ~code_in[0] : code_in[0];
  assign corrected[1] = (error_position == 3'd2) ? ~code_in[1] : code_in[1];
  assign corrected[2] = (error_position == 3'd3) ? ~code_in[2] : code_in[2];
  assign corrected[3] = (error_position == 3'd4) ? ~code_in[3] : code_in[3];
  assign corrected[4] = (error_position == 3'd5) ? ~code_in[4] : code_in[4];
  assign corrected[5] = (error_position == 3'd6) ? ~code_in[5] : code_in[5];
  assign corrected[6] = (error_position == 3'd7) ? ~code_in[6] : code_in[6];
  assign data_out = {corrected[6], corrected[5], corrected[4], corrected[2]};
endmodule
"""


def scrambler(width: int = 7) -> str:
    """Additive self-synchronising scrambler over a serial bit stream."""
    lines = [
        f"module scrambler{width}(clk, rst, enable, bit_in, bit_out, lfsr_state);",
        "  input clk, rst, enable, bit_in;",
        "  output bit_out;",
        f"  output [{width - 1}:0] lfsr_state;",
        f"  reg [{width - 1}:0] state;",
        "  wire feedback;",
        f"  assign feedback = state[{width - 1}] ^ state[{width - 2}];",
        "  assign bit_out = bit_in ^ feedback;",
        "  assign lfsr_state = state;",
        "  always @(posedge clk or posedge rst) begin",
        "    if (rst)",
        f"      state <= {{{width}{{1'b1}}}};",
        "    else if (enable) begin",
        "      state[0] <= feedback;",
    ]
    for index in range(1, width):
        lines.append(f"      state[{index}] <= state[{index - 1}];")
    lines.append("    end")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def manchester_encoder() -> str:
    """Manchester encoder with a half-bit phase register."""
    return """\
module manchester_encoder(clk, rst, enable, data_in, encoded, phase);
  input clk, rst, enable, data_in;
  output encoded;
  output reg phase;
  reg data_reg;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      phase <= 1'b0;
      data_reg <= 1'b0;
    end else if (enable) begin
      phase <= ~phase;
      if (!phase)
        data_reg <= data_in;
    end
  end
  assign encoded = data_reg ^ phase;
endmodule
"""


def mac_tx_ctrl() -> str:
    """Ethernet MAC transmit controller (MAC_tx_Ctrl analogue)."""
    return """\
module mac_tx_ctrl(clk, rst, tx_start, tx_data_valid, tx_last, pad_needed, collision, state, tx_en, append_crc, send_pad, retry, tx_done);
  input clk, rst, tx_start, tx_data_valid, tx_last, pad_needed, collision;
  output reg [2:0] state;
  output tx_en, append_crc, send_pad;
  output reg retry;
  output tx_done;
  reg [3:0] ifg_count;
  reg [3:0] preamble_count;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      state <= 3'd0;
      ifg_count <= 0;
      preamble_count <= 0;
      retry <= 1'b0;
    end else begin
      case (state)
        3'd0: begin
          retry <= 1'b0;
          if (tx_start)
            state <= 3'd1;
        end
        3'd1: begin
          if (preamble_count == 4'd7) begin
            preamble_count <= 0;
            state <= 3'd2;
          end else
            preamble_count <= preamble_count + 1;
        end
        3'd2: begin
          if (collision) begin
            retry <= 1'b1;
            state <= 3'd6;
          end else if (tx_last) begin
            if (pad_needed)
              state <= 3'd3;
            else
              state <= 3'd4;
          end
        end
        3'd3: begin
          if (collision) begin
            retry <= 1'b1;
            state <= 3'd6;
          end else
            state <= 3'd4;
        end
        3'd4: begin
          state <= 3'd5;
        end
        3'd5: begin
          if (ifg_count == 4'd11) begin
            ifg_count <= 0;
            state <= 3'd0;
          end else
            ifg_count <= ifg_count + 1;
        end
        3'd6: begin
          if (ifg_count == 4'd11) begin
            ifg_count <= 0;
            state <= 3'd0;
          end else
            ifg_count <= ifg_count + 1;
        end
        default: state <= 3'd0;
      endcase
    end
  end
  assign tx_en = (state == 3'd1) | (state == 3'd2) | (state == 3'd3) | (state == 3'd4);
  assign append_crc = (state == 3'd4);
  assign send_pad = (state == 3'd3);
  assign tx_done = (state == 3'd5);
endmodule
"""


def ge_1000basex_rx() -> str:
    """Simplified 1000BASE-X PCS receive synchroniser (ge_1000baseX_rx analogue)."""
    return """\
module ge_1000basex_rx(clk, rst, code_valid, comma_detected, code_error, sync_status, rx_even, state, los_count);
  input clk, rst, code_valid, comma_detected, code_error;
  output sync_status;
  output reg rx_even;
  output reg [2:0] state;
  output reg [2:0] los_count;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      state <= 3'd0;
      rx_even <= 1'b0;
      los_count <= 0;
    end else begin
      rx_even <= ~rx_even;
      case (state)
        3'd0: begin
          los_count <= 0;
          if (comma_detected && code_valid)
            state <= 3'd1;
        end
        3'd1: begin
          if (code_error)
            state <= 3'd0;
          else if (comma_detected && code_valid)
            state <= 3'd2;
        end
        3'd2: begin
          if (code_error)
            state <= 3'd1;
          else if (comma_detected && code_valid)
            state <= 3'd3;
        end
        3'd3: begin
          if (code_error) begin
            if (los_count == 3'd3)
              state <= 3'd0;
            else begin
              los_count <= los_count + 1;
              state <= 3'd4;
            end
          end
        end
        3'd4: begin
          if (code_valid && !code_error) begin
            los_count <= 0;
            state <= 3'd3;
          end else if (code_error) begin
            if (los_count == 3'd3)
              state <= 3'd0;
            else
              los_count <= los_count + 1;
          end
        end
        default: state <= 3'd0;
      endcase
    end
  end
  assign sync_status = (state == 3'd3) | (state == 3'd4);
endmodule
"""


def bus_arbiter(ports: int = 4) -> str:
    """Fixed-priority bus arbiter with explicit per-port grants (PSGBusArb analogue)."""
    lines = [
        f"module psg_bus_arb{ports}(clk, rst, request, grant, busy, active_port);",
        "  input clk, rst;",
        f"  input [{ports - 1}:0] request;",
        f"  output reg [{ports - 1}:0] grant;",
        "  output busy;",
        f"  output reg [{max(1, (ports - 1).bit_length())}:0] active_port;",
        "  always @(posedge clk or posedge rst) begin",
        "    if (rst) begin",
        "      grant <= 0;",
        "      active_port <= 0;",
        "    end else begin",
        "      grant <= 0;",
        "      active_port <= 0;",
    ]
    for port in range(ports):
        keyword = "if" if port == 0 else "else if"
        lines.append(f"      {keyword} (request[{port}]) begin")
        lines.append(f"        grant[{port}] <= 1'b1;")
        lines.append(f"        active_port <= {port};")
        lines.append("      end")
    lines.append("    end")
    lines.append("  end")
    lines.append("  assign busy = |grant;")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def output_summer(channels: int = 3, width: int = 8) -> str:
    """Registered adder tree summing several channels (PSGOutputSummer analogue)."""
    import math

    out_width = width + max(1, math.ceil(math.log2(channels)))
    lines = [
        f"module psg_output_summer{channels}(clk, rst, enable, "
        + ", ".join(f"ch{index}" for index in range(channels))
        + ", mixed, mixed_valid);",
        "  input clk, rst, enable;",
    ]
    for index in range(channels):
        lines.append(f"  input [{width - 1}:0] ch{index};")
    lines.append(f"  output reg [{out_width - 1}:0] mixed;")
    lines.append("  output reg mixed_valid;")
    total = " + ".join(f"ch{index}" for index in range(channels))
    lines.append("  always @(posedge clk or posedge rst) begin")
    lines.append("    if (rst) begin")
    lines.append("      mixed <= 0;")
    lines.append("      mixed_valid <= 1'b0;")
    lines.append("    end else if (enable) begin")
    lines.append(f"      mixed <= {total};")
    lines.append("      mixed_valid <= 1'b1;")
    lines.append("    end else begin")
    lines.append("      mixed_valid <= 1'b0;")
    lines.append("    end")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def cavlc_coeff_table(levels: int = 16, entries_per_nc: int = 32) -> str:
    """CAVLC total-coefficients decode table (cavlc_read_total_coeffs analogue).

    The real OpenCores module is dominated by a very large combinational
    lookup table; we reproduce that structure with an explicit case statement
    mapping (nc, code) pairs to coefficient counts.
    """
    lines = [
        "module cavlc_read_total_coeffs(clk, rst, enable, nc_idx, code, total_coeffs, trailing_ones, table_valid);",
        "  input clk, rst, enable;",
        "  input [1:0] nc_idx;",
        f"  input [{levels - 1}:0] code;",
        "  output reg [4:0] total_coeffs;",
        "  output reg [1:0] trailing_ones;",
        "  output reg table_valid;",
        "  reg [4:0] coeffs_next;",
        "  reg [1:0] ones_next;",
        "  always @(*) begin",
        "    coeffs_next = 5'd0;",
        "    ones_next = 2'd0;",
        "    case (nc_idx)",
    ]
    for nc in range(4):
        lines.append(f"      2'd{nc}: begin")
        lines.append(f"        case (code[{levels - 1}:{levels - 8}])")
        for entry in range(entries_per_nc):
            code_value = (entry * (nc + 3)) % 256
            coeffs = (entry + nc) % 17
            ones = (entry + nc) % 4
            lines.append(f"          8'd{code_value}: begin")
            lines.append(f"            coeffs_next = 5'd{coeffs};")
            lines.append(f"            ones_next = 2'd{ones};")
            lines.append("          end")
        lines.append("          default: begin")
        lines.append("            coeffs_next = 5'd0;")
        lines.append("            ones_next = 2'd0;")
        lines.append("          end")
        lines.append("        endcase")
        lines.append("      end")
    lines.append("      default: begin")
    lines.append("        coeffs_next = 5'd0;")
    lines.append("        ones_next = 2'd0;")
    lines.append("      end")
    lines.append("    endcase")
    lines.append("  end")
    lines.append("  always @(posedge clk or posedge rst) begin")
    lines.append("    if (rst) begin")
    lines.append("      total_coeffs <= 0;")
    lines.append("      trailing_ones <= 0;")
    lines.append("      table_valid <= 1'b0;")
    lines.append("    end else if (enable) begin")
    lines.append("      total_coeffs <= coeffs_next;")
    lines.append("      trailing_ones <= ones_next;")
    lines.append("      table_valid <= 1'b1;")
    lines.append("    end else begin")
    lines.append("      table_valid <= 1'b0;")
    lines.append("    end")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def cavlc_zeros_table(codes_per_coeff: int = 10) -> str:
    """CAVLC total-zeros decode table (cavlc_read_total_zeros analogue)."""
    lines = [
        "module cavlc_read_total_zeros(total_coeffs, code, total_zeros, code_length);",
        "  input [3:0] total_coeffs;",
        "  input [8:0] code;",
        "  output reg [3:0] total_zeros;",
        "  output reg [3:0] code_length;",
        "  always @(*) begin",
        "    total_zeros = 4'd0;",
        "    code_length = 4'd1;",
        "    case (total_coeffs)",
    ]
    for coeffs in range(1, 16):
        lines.append(f"      4'd{coeffs}: begin")
        lines.append("        case (code[8:5])")
        for code_value in range(codes_per_coeff):
            zeros = (code_value + coeffs) % 16
            length = 1 + (code_value % 9)
            lines.append(f"          4'd{code_value}: begin")
            lines.append(f"            total_zeros = 4'd{zeros};")
            lines.append(f"            code_length = 4'd{length};")
            lines.append("          end")
        lines.append("        endcase")
        lines.append("      end")
    lines.append("      default: begin")
    lines.append("        total_zeros = 4'd0;")
    lines.append("        code_length = 4'd1;")
    lines.append("      end")
    lines.append("    endcase")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def key_expander(width: int = 16, rounds: int = 4) -> str:
    """Simplified block-cipher key schedule (key_expander.v analogue).

    Each enabled cycle derives the next round key by rotating the current key,
    passing the low nibble through a small substitution box, and mixing in a
    round constant, mirroring the structure (rotate / substitute / xor rcon)
    of an AES-style key expansion without the full S-box table.
    """
    lines = [
        "module key_expander(clk, rst, load, expand, key_in, round_key, round_count, done);",
        "  input clk, rst, load, expand;",
        f"  input [{width - 1}:0] key_in;",
        f"  output reg [{width - 1}:0] round_key;",
        "  output reg [2:0] round_count;",
        "  output done;",
        f"  wire [{width - 1}:0] rotated;",
        "  reg [3:0] sbox_out;",
        f"  wire [{width - 1}:0] substituted;",
        f"  wire [{width - 1}:0] mixed;",
        f"  assign rotated = {{round_key[{width - 5}:0], round_key[{width - 1}:{width - 4}]}};",
        "  always @(*) begin",
        "    case (rotated[3:0])",
    ]
    sbox = [0x9, 0x4, 0xA, 0xB, 0xD, 0x1, 0x8, 0x5, 0x6, 0x2, 0x0, 0x3, 0xC, 0xE, 0xF, 0x7]
    for index, value in enumerate(sbox):
        lines.append(f"      4'd{index}: sbox_out = 4'd{value};")
    lines.append("      default: sbox_out = 4'd0;")
    lines.append("    endcase")
    lines.append("  end")
    lines.append(f"  assign substituted = {{rotated[{width - 1}:4], sbox_out}};")
    lines.append(f"  assign mixed = substituted ^ {{{{{width - 3}{{1'b0}}}}, round_count}};")
    lines.append("  always @(posedge clk or posedge rst) begin")
    lines.append("    if (rst) begin")
    lines.append("      round_key <= 0;")
    lines.append("      round_count <= 0;")
    lines.append("    end else if (load) begin")
    lines.append("      round_key <= key_in;")
    lines.append("      round_count <= 0;")
    lines.append(f"    end else if (expand && round_count != 3'd{rounds}) begin")
    lines.append("      round_key <= mixed;")
    lines.append("      round_count <= round_count + 1;")
    lines.append("    end")
    lines.append("  end")
    lines.append(f"  assign done = (round_count == 3'd{rounds});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def can_register_async() -> str:
    """CAN controller register with asynchronous set/clear (can_register_asyn analogue)."""
    return """\
module can_register_asyn(clk, rst, we, set_bit, clear_bit, data_in, data_out, bit_out);
  input clk, rst, we, set_bit, clear_bit;
  input [7:0] data_in;
  output reg [7:0] data_out;
  output bit_out;
  always @(posedge clk or posedge rst) begin
    if (rst)
      data_out <= 8'd0;
    else if (we)
      data_out <= data_in;
    else begin
      if (set_bit)
        data_out[0] <= 1'b1;
      if (clear_bit)
        data_out[0] <= 1'b0;
    end
  end
  assign bit_out = data_out[0];
endmodule
"""
