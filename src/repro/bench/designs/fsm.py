"""Finite-state-machine designs: controllers, protocol engines, detectors.

These cover the "state machines", "communication controllers", and
"flow control hardware" categories of the paper's test set.
"""

from __future__ import annotations


def sequence_detector(pattern: str = "1011") -> str:
    """Overlapping sequence detector for a fixed bit pattern."""
    states = len(pattern)
    import math

    state_bits = max(1, math.ceil(math.log2(states + 1)))
    lines = [
        f"module seq_detect_{pattern}(clk, rst, bit_in, detected, state);",
        "  input clk, rst, bit_in;",
        "  output detected;",
        f"  output reg [{state_bits - 1}:0] state;",
        "  always @(posedge clk or posedge rst) begin",
        "    if (rst)",
        "      state <= 0;",
        "    else begin",
        "      case (state)",
    ]
    for index in range(states):
        expected = pattern[index]
        # Overlap handling: on a mismatch fall back to the longest prefix that
        # is also a suffix of what has been seen.
        matched_prefix = pattern[:index] + ("1" if expected == "0" else "0")
        fallback = 0
        for length in range(min(len(matched_prefix), states - 1), 0, -1):
            if matched_prefix.endswith(pattern[:length]):
                fallback = length
                break
        next_state = index + 1
        lines.append(f"        {state_bits}'d{index}:")
        lines.append(f"          if (bit_in == 1'b{expected})")
        lines.append(f"            state <= {state_bits}'d{next_state};")
        lines.append("          else")
        lines.append(f"            state <= {state_bits}'d{fallback};")
    final_fallback = 0
    for length in range(states - 1, 0, -1):
        if pattern.endswith(pattern[:length]):
            final_fallback = length
            break
    lines.append(f"        {state_bits}'d{states}:")
    lines.append(f"          if (bit_in == 1'b{pattern[-1]})")
    lines.append(f"            state <= {state_bits}'d{states};")
    lines.append("          else")
    lines.append(f"            state <= {state_bits}'d{final_fallback};")
    lines.append("        default: state <= 0;")
    lines.append("      endcase")
    lines.append("    end")
    lines.append("  end")
    lines.append(f"  assign detected = (state == {state_bits}'d{states});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def traffic_light() -> str:
    """Two-way traffic light controller with pedestrian request."""
    return """\
module traffic_light(clk, rst, ped_request, ns_green, ns_yellow, ns_red, ew_green, ew_yellow, ew_red, walk);
  input clk, rst, ped_request;
  output ns_green, ns_yellow, ns_red;
  output ew_green, ew_yellow, ew_red;
  output walk;
  reg [2:0] state;
  reg [3:0] timer;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      state <= 3'd0;
      timer <= 0;
    end else begin
      case (state)
        3'd0: begin
          if (timer == 4'd7) begin
            state <= 3'd1;
            timer <= 0;
          end else
            timer <= timer + 1;
        end
        3'd1: begin
          if (timer == 4'd2) begin
            state <= 3'd2;
            timer <= 0;
          end else
            timer <= timer + 1;
        end
        3'd2: begin
          if (timer == 4'd7) begin
            state <= 3'd3;
            timer <= 0;
          end else
            timer <= timer + 1;
        end
        3'd3: begin
          if (timer == 4'd2) begin
            if (ped_request)
              state <= 3'd4;
            else
              state <= 3'd0;
            timer <= 0;
          end else
            timer <= timer + 1;
        end
        3'd4: begin
          if (timer == 4'd5) begin
            state <= 3'd0;
            timer <= 0;
          end else
            timer <= timer + 1;
        end
        default: begin
          state <= 3'd0;
          timer <= 0;
        end
      endcase
    end
  end
  assign ns_green = (state == 3'd0);
  assign ns_yellow = (state == 3'd1);
  assign ns_red = (state == 3'd2) | (state == 3'd3) | (state == 3'd4);
  assign ew_green = (state == 3'd2);
  assign ew_yellow = (state == 3'd3);
  assign ew_red = (state == 3'd0) | (state == 3'd1) | (state == 3'd4);
  assign walk = (state == 3'd4);
endmodule
"""


def vending_machine() -> str:
    """Vending machine accepting nickels/dimes, vending at 20 cents."""
    return """\
module vending_machine(clk, rst, nickel, dime, vend, change, credit);
  input clk, rst, nickel, dime;
  output vend, change;
  output reg [2:0] credit;
  always @(posedge clk or posedge rst) begin
    if (rst)
      credit <= 3'd0;
    else begin
      if (credit >= 3'd4)
        credit <= 3'd0;
      else if (nickel && !dime)
        credit <= credit + 3'd1;
      else if (dime && !nickel) begin
        if (credit >= 3'd3)
          credit <= 3'd4;
        else
          credit <= credit + 3'd2;
      end
    end
  end
  assign vend = (credit >= 3'd4);
  assign change = (credit > 3'd4);
endmodule
"""


def handshake_controller() -> str:
    """Four-phase request/acknowledge handshake controller."""
    return """\
module handshake_ctrl(clk, rst, start, peer_ack, req, busy, done);
  input clk, rst, start, peer_ack;
  output reg req;
  output busy, done;
  reg [1:0] state;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      state <= 2'd0;
      req <= 1'b0;
    end else begin
      case (state)
        2'd0: begin
          if (start) begin
            req <= 1'b1;
            state <= 2'd1;
          end
        end
        2'd1: begin
          if (peer_ack) begin
            req <= 1'b0;
            state <= 2'd2;
          end
        end
        2'd2: begin
          if (!peer_ack)
            state <= 2'd3;
        end
        default: begin
          state <= 2'd0;
        end
      endcase
    end
  end
  assign busy = (state != 2'd0);
  assign done = (state == 2'd3);
endmodule
"""


def uart_tx(data_bits: int = 8) -> str:
    """UART transmitter FSM: start bit, data bits, stop bit."""
    import math

    count_bits = max(1, math.ceil(math.log2(data_bits + 1)))
    return f"""\
module uart_tx(clk, rst, send, data, tx, busy, done);
  input clk, rst, send;
  input [{data_bits - 1}:0] data;
  output reg tx;
  output busy, done;
  reg [1:0] state;
  reg [{count_bits - 1}:0] bit_index;
  reg [{data_bits - 1}:0] shift;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      state <= 2'd0;
      tx <= 1'b1;
      bit_index <= 0;
      shift <= 0;
    end else begin
      case (state)
        2'd0: begin
          tx <= 1'b1;
          if (send) begin
            shift <= data;
            bit_index <= 0;
            state <= 2'd1;
          end
        end
        2'd1: begin
          tx <= 1'b0;
          state <= 2'd2;
        end
        2'd2: begin
          tx <= shift[0];
          shift <= shift >> 1;
          if (bit_index == {count_bits}'d{data_bits - 1})
            state <= 2'd3;
          else
            bit_index <= bit_index + 1;
        end
        default: begin
          tx <= 1'b1;
          state <= 2'd0;
        end
      endcase
    end
  end
  assign busy = (state != 2'd0);
  assign done = (state == 2'd3);
endmodule
"""


def rx_state_machine(data_bits: int = 8) -> str:
    """Serial receiver state machine (rxStateMachine.v analogue)."""
    import math

    count_bits = max(1, math.ceil(math.log2(data_bits + 1)))
    return f"""\
module rx_state_machine(clk, rst, rx, data_out, data_valid, framing_error);
  input clk, rst, rx;
  output reg [{data_bits - 1}:0] data_out;
  output reg data_valid;
  output reg framing_error;
  reg [1:0] state;
  reg [{count_bits - 1}:0] bit_index;
  reg [{data_bits - 1}:0] shift;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      state <= 2'd0;
      bit_index <= 0;
      shift <= 0;
      data_out <= 0;
      data_valid <= 1'b0;
      framing_error <= 1'b0;
    end else begin
      data_valid <= 1'b0;
      case (state)
        2'd0: begin
          framing_error <= 1'b0;
          if (!rx) begin
            state <= 2'd1;
            bit_index <= 0;
          end
        end
        2'd1: begin
          shift <= {{rx, shift[{data_bits - 1}:1]}};
          if (bit_index == {count_bits}'d{data_bits - 1})
            state <= 2'd2;
          else
            bit_index <= bit_index + 1;
        end
        2'd2: begin
          if (rx) begin
            data_out <= shift;
            data_valid <= 1'b1;
          end else begin
            framing_error <= 1'b1;
          end
          state <= 2'd0;
        end
        default: state <= 2'd0;
      endcase
    end
  end
endmodule
"""


def memory_controller_fsm() -> str:
    """Simple SRAM controller FSM with read/write/refresh phases."""
    return """\
module mem_ctrl_fsm(clk, rst, read_req, write_req, refresh_req, ack, cs_n, we_n, oe_n, state);
  input clk, rst, read_req, write_req, refresh_req;
  output reg ack;
  output cs_n, we_n, oe_n;
  output reg [2:0] state;
  reg [1:0] wait_count;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      state <= 3'd0;
      ack <= 1'b0;
      wait_count <= 0;
    end else begin
      ack <= 1'b0;
      case (state)
        3'd0: begin
          if (refresh_req)
            state <= 3'd4;
          else if (write_req)
            state <= 3'd1;
          else if (read_req)
            state <= 3'd2;
        end
        3'd1: begin
          if (wait_count == 2'd2) begin
            wait_count <= 0;
            ack <= 1'b1;
            state <= 3'd3;
          end else
            wait_count <= wait_count + 1;
        end
        3'd2: begin
          if (wait_count == 2'd1) begin
            wait_count <= 0;
            ack <= 1'b1;
            state <= 3'd3;
          end else
            wait_count <= wait_count + 1;
        end
        3'd3: begin
          if (!read_req && !write_req)
            state <= 3'd0;
        end
        3'd4: begin
          if (wait_count == 2'd3) begin
            wait_count <= 0;
            state <= 3'd0;
          end else
            wait_count <= wait_count + 1;
        end
        default: state <= 3'd0;
      endcase
    end
  end
  assign cs_n = (state == 3'd0);
  assign we_n = ~(state == 3'd1);
  assign oe_n = ~(state == 3'd2);
endmodule
"""


def elevator_controller(floors: int = 4) -> str:
    """Elevator controller serving a fixed number of floors."""
    import math

    floor_bits = max(1, math.ceil(math.log2(floors)))
    lines = [
        f"module elevator{floors}(clk, rst, request, current_floor, moving_up, moving_down, door_open);",
        "  input clk, rst;",
        f"  input [{floors - 1}:0] request;",
        f"  output reg [{floor_bits - 1}:0] current_floor;",
        "  output reg moving_up, moving_down, door_open;",
        f"  reg [{floor_bits - 1}:0] target;",
        "  reg pending;",
        "  always @(posedge clk or posedge rst) begin",
        "    if (rst) begin",
        "      current_floor <= 0;",
        "      target <= 0;",
        "      pending <= 1'b0;",
        "      moving_up <= 1'b0;",
        "      moving_down <= 1'b0;",
        "      door_open <= 1'b1;",
        "    end else begin",
        "      if (!pending) begin",
    ]
    for floor in range(floors - 1, -1, -1):
        lines.append(f"        if (request[{floor}]) begin")
        lines.append(f"          target <= {floor_bits}'d{floor};")
        lines.append("          pending <= 1'b1;")
        lines.append("        end")
    lines.append("        moving_up <= 1'b0;")
    lines.append("        moving_down <= 1'b0;")
    lines.append("        door_open <= 1'b1;")
    lines.append("      end else begin")
    lines.append("        door_open <= 1'b0;")
    lines.append("        if (current_floor < target) begin")
    lines.append("          current_floor <= current_floor + 1;")
    lines.append("          moving_up <= 1'b1;")
    lines.append("          moving_down <= 1'b0;")
    lines.append("        end else if (current_floor > target) begin")
    lines.append("          current_floor <= current_floor - 1;")
    lines.append("          moving_up <= 1'b0;")
    lines.append("          moving_down <= 1'b1;")
    lines.append("        end else begin")
    lines.append("          pending <= 1'b0;")
    lines.append("          moving_up <= 1'b0;")
    lines.append("          moving_down <= 1'b0;")
    lines.append("          door_open <= 1'b1;")
    lines.append("        end")
    lines.append("      end")
    lines.append("    end")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def flow_control(credit_width: int = 4) -> str:
    """Credit-based flow controller (flow_ctrl.v analogue)."""
    max_credit = (1 << credit_width) - 1
    return f"""\
module flow_ctrl(clk, rst, send_req, credit_return, tx_valid, credits, stalled);
  input clk, rst, send_req, credit_return;
  output tx_valid;
  output reg [{credit_width - 1}:0] credits;
  output stalled;
  always @(posedge clk or posedge rst) begin
    if (rst)
      credits <= {credit_width}'d{max_credit};
    else begin
      if (send_req && credits != 0 && !credit_return)
        credits <= credits - 1;
      else if (credit_return && !(send_req && credits != 0)) begin
        if (credits != {credit_width}'d{max_credit})
          credits <= credits + 1;
      end
    end
  end
  assign tx_valid = send_req && (credits != 0);
  assign stalled = send_req && (credits == 0);
endmodule
"""


def crc_control_unit() -> str:
    """Control unit sequencing a CRC datapath (crc_control_unit.v analogue)."""
    return """\
module crc_control_unit(clk, rst, start, data_last, crc_enable, shift_enable, output_enable, done, state);
  input clk, rst, start, data_last;
  output crc_enable, shift_enable, output_enable;
  output done;
  output reg [1:0] state;
  reg [2:0] shift_count;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      state <= 2'd0;
      shift_count <= 0;
    end else begin
      case (state)
        2'd0: begin
          shift_count <= 0;
          if (start)
            state <= 2'd1;
        end
        2'd1: begin
          if (data_last)
            state <= 2'd2;
        end
        2'd2: begin
          if (shift_count == 3'd7)
            state <= 2'd3;
          else
            shift_count <= shift_count + 1;
        end
        default: begin
          if (!start)
            state <= 2'd0;
        end
      endcase
    end
  end
  assign crc_enable = (state == 2'd1);
  assign shift_enable = (state == 2'd2);
  assign output_enable = (state == 2'd3);
  assign done = (state == 2'd3);
endmodule
"""
