"""Storage and interconnect designs: FIFOs, register files, arbiters, routers.

Includes an analogue of the paper's Figure 5 test program (``fifo_mem``) and
of the NoC-style ``node.v`` router in the test set.
"""

from __future__ import annotations

import math


def fifo_mem(depth: int = 4, width: int = 4) -> str:
    """Synchronous FIFO with explicit storage slots (fifo_mem analogue)."""
    ptr_bits = max(1, math.ceil(math.log2(depth)))
    lines = [
        "module fifo_mem(clk, rst, w_en, r_en, data_in, data_out, full, empty, count);",
        "  input clk, rst, w_en, r_en;",
        f"  input [{width - 1}:0] data_in;",
        f"  output reg [{width - 1}:0] data_out;",
        "  output full, empty;",
        f"  output reg [{ptr_bits}:0] count;",
        f"  reg [{ptr_bits - 1}:0] wptr;",
        f"  reg [{ptr_bits - 1}:0] rptr;",
    ]
    for slot in range(depth):
        lines.append(f"  reg [{width - 1}:0] mem{slot};")
    lines.append("  wire do_write, do_read;")
    lines.append("  assign do_write = w_en && !full;")
    lines.append("  assign do_read = r_en && !empty;")
    lines.append("  always @(posedge clk or posedge rst) begin")
    lines.append("    if (rst) begin")
    lines.append("      wptr <= 0;")
    lines.append("      rptr <= 0;")
    lines.append("      count <= 0;")
    lines.append("      data_out <= 0;")
    for slot in range(depth):
        lines.append(f"      mem{slot} <= 0;")
    lines.append("    end else begin")
    lines.append("      if (do_write) begin")
    lines.append("        case (wptr)")
    for slot in range(depth):
        lines.append(f"          {ptr_bits}'d{slot}: mem{slot} <= data_in;")
    lines.append("        endcase")
    lines.append("        wptr <= wptr + 1;")
    lines.append("      end")
    lines.append("      if (do_read) begin")
    lines.append("        case (rptr)")
    for slot in range(depth):
        lines.append(f"          {ptr_bits}'d{slot}: data_out <= mem{slot};")
    lines.append("        endcase")
    lines.append("        rptr <= rptr + 1;")
    lines.append("      end")
    lines.append("      if (do_write && !do_read)")
    lines.append("        count <= count + 1;")
    lines.append("      else if (do_read && !do_write)")
    lines.append("        count <= count - 1;")
    lines.append("    end")
    lines.append("  end")
    lines.append(f"  assign full = (count == {ptr_bits + 1}'d{depth});")
    lines.append("  assign empty = (count == 0);")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def eth_fifo(depth: int = 4, width: int = 8) -> str:
    """FIFO with almost-full/almost-empty status flags (eth_fifo analogue)."""
    ptr_bits = max(1, math.ceil(math.log2(depth)))
    lines = [
        "module eth_fifo(clk, rst, write, read, data_in, data_out, full, almost_full, empty, almost_empty, count);",
        "  input clk, rst, write, read;",
        f"  input [{width - 1}:0] data_in;",
        f"  output reg [{width - 1}:0] data_out;",
        "  output full, almost_full, empty, almost_empty;",
        f"  output reg [{ptr_bits}:0] count;",
        f"  reg [{ptr_bits - 1}:0] wptr, rptr;",
    ]
    for slot in range(depth):
        lines.append(f"  reg [{width - 1}:0] slot{slot};")
    lines.append("  wire do_write, do_read;")
    lines.append("  assign do_write = write && !full;")
    lines.append("  assign do_read = read && !empty;")
    lines.append("  always @(posedge clk or posedge rst) begin")
    lines.append("    if (rst) begin")
    lines.append("      wptr <= 0;")
    lines.append("      rptr <= 0;")
    lines.append("      count <= 0;")
    lines.append("      data_out <= 0;")
    for slot in range(depth):
        lines.append(f"      slot{slot} <= 0;")
    lines.append("    end else begin")
    lines.append("      if (do_write) begin")
    lines.append("        case (wptr)")
    for slot in range(depth):
        lines.append(f"          {ptr_bits}'d{slot}: slot{slot} <= data_in;")
    lines.append("        endcase")
    lines.append("        wptr <= wptr + 1;")
    lines.append("      end")
    lines.append("      if (do_read) begin")
    lines.append("        case (rptr)")
    for slot in range(depth):
        lines.append(f"          {ptr_bits}'d{slot}: data_out <= slot{slot};")
    lines.append("        endcase")
    lines.append("        rptr <= rptr + 1;")
    lines.append("      end")
    lines.append("      if (do_write && !do_read)")
    lines.append("        count <= count + 1;")
    lines.append("      else if (do_read && !do_write)")
    lines.append("        count <= count - 1;")
    lines.append("    end")
    lines.append("  end")
    lines.append(f"  assign full = (count == {ptr_bits + 1}'d{depth});")
    lines.append(f"  assign almost_full = (count >= {ptr_bits + 1}'d{depth - 1});")
    lines.append("  assign empty = (count == 0);")
    lines.append(f"  assign almost_empty = (count <= {ptr_bits + 1}'d1);")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def stack(depth: int = 4, width: int = 4) -> str:
    """LIFO stack with push/pop and overflow/underflow flags."""
    ptr_bits = max(1, math.ceil(math.log2(depth + 1)))
    lines = [
        "module stack_lifo(clk, rst, push, pop, data_in, data_out, full, empty, overflow, underflow);",
        "  input clk, rst, push, pop;",
        f"  input [{width - 1}:0] data_in;",
        f"  output reg [{width - 1}:0] data_out;",
        "  output full, empty;",
        "  output reg overflow, underflow;",
        f"  reg [{ptr_bits - 1}:0] sp;",
    ]
    for slot in range(depth):
        lines.append(f"  reg [{width - 1}:0] cell{slot};")
    lines.append("  always @(posedge clk or posedge rst) begin")
    lines.append("    if (rst) begin")
    lines.append("      sp <= 0;")
    lines.append("      data_out <= 0;")
    lines.append("      overflow <= 1'b0;")
    lines.append("      underflow <= 1'b0;")
    for slot in range(depth):
        lines.append(f"      cell{slot} <= 0;")
    lines.append("    end else begin")
    lines.append("      overflow <= 1'b0;")
    lines.append("      underflow <= 1'b0;")
    lines.append("      if (push && !pop) begin")
    lines.append(f"        if (sp == {ptr_bits}'d{depth})")
    lines.append("          overflow <= 1'b1;")
    lines.append("        else begin")
    lines.append("          case (sp)")
    for slot in range(depth):
        lines.append(f"            {ptr_bits}'d{slot}: cell{slot} <= data_in;")
    lines.append("          endcase")
    lines.append("          sp <= sp + 1;")
    lines.append("        end")
    lines.append("      end else if (pop && !push) begin")
    lines.append("        if (sp == 0)")
    lines.append("          underflow <= 1'b1;")
    lines.append("        else begin")
    lines.append("          case (sp - 1)")
    for slot in range(depth):
        lines.append(f"            {ptr_bits}'d{slot}: data_out <= cell{slot};")
    lines.append("          endcase")
    lines.append("          sp <= sp - 1;")
    lines.append("        end")
    lines.append("      end")
    lines.append("    end")
    lines.append("  end")
    lines.append(f"  assign full = (sp == {ptr_bits}'d{depth});")
    lines.append("  assign empty = (sp == 0);")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def register_file(registers: int = 4, width: int = 4) -> str:
    """Register file with one write port and two read ports."""
    addr_bits = max(1, math.ceil(math.log2(registers)))
    lines = [
        "module register_file(clk, rst, write_en, write_addr, write_data, read_addr_a, read_addr_b, read_data_a, read_data_b);",
        "  input clk, rst, write_en;",
        f"  input [{addr_bits - 1}:0] write_addr, read_addr_a, read_addr_b;",
        f"  input [{width - 1}:0] write_data;",
        f"  output reg [{width - 1}:0] read_data_a, read_data_b;",
    ]
    for index in range(registers):
        lines.append(f"  reg [{width - 1}:0] r{index};")
    lines.append("  always @(posedge clk or posedge rst) begin")
    lines.append("    if (rst) begin")
    for index in range(registers):
        lines.append(f"      r{index} <= 0;")
    lines.append("    end else if (write_en) begin")
    lines.append("      case (write_addr)")
    for index in range(registers):
        lines.append(f"        {addr_bits}'d{index}: r{index} <= write_data;")
    lines.append("      endcase")
    lines.append("    end")
    lines.append("  end")
    lines.append("  always @(*) begin")
    lines.append("    case (read_addr_a)")
    for index in range(registers):
        lines.append(f"      {addr_bits}'d{index}: read_data_a = r{index};")
    lines.append("      default: read_data_a = 0;")
    lines.append("    endcase")
    lines.append("    case (read_addr_b)")
    for index in range(registers):
        lines.append(f"      {addr_bits}'d{index}: read_data_b = r{index};")
    lines.append("      default: read_data_b = 0;")
    lines.append("    endcase")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def round_robin_arbiter(ports: int = 4) -> str:
    """Round-robin arbiter with a rotating priority pointer."""
    bits = max(1, math.ceil(math.log2(ports)))
    lines = [
        f"module rr_arbiter{ports}(clk, rst, request, grant, grant_valid, pointer);",
        "  input clk, rst;",
        f"  input [{ports - 1}:0] request;",
        f"  output reg [{ports - 1}:0] grant;",
        "  output grant_valid;",
        f"  output reg [{bits - 1}:0] pointer;",
        f"  reg [{ports - 1}:0] grant_next;",
        f"  reg [{bits - 1}:0] winner;",
        "  reg found;",
        "  always @(*) begin",
        "    grant_next = 0;",
        "    winner = 0;",
        "    found = 1'b0;",
    ]
    # Two sweeps implement the rotating priority: indices >= pointer first.
    for sweep in ("first", "second"):
        for port in range(ports):
            condition = (
                f"!found && request[{port}] && ({port} >= pointer)"
                if sweep == "first"
                else f"!found && request[{port}]"
            )
            lines.append(f"    if ({condition}) begin")
            lines.append(f"      grant_next[{port}] = 1'b1;")
            lines.append(f"      winner = {port};")
            lines.append("      found = 1'b1;")
            lines.append("    end")
    lines.append("  end")
    lines.append("  always @(posedge clk or posedge rst) begin")
    lines.append("    if (rst) begin")
    lines.append("      grant <= 0;")
    lines.append("      pointer <= 0;")
    lines.append("    end else begin")
    lines.append("      grant <= grant_next;")
    lines.append("      if (found) begin")
    lines.append(f"        if (winner == {bits}'d{ports - 1})")
    lines.append("          pointer <= 0;")
    lines.append("        else")
    lines.append("          pointer <= winner + 1;")
    lines.append("      end")
    lines.append("    end")
    lines.append("  end")
    lines.append("  assign grant_valid = |grant;")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def noc_node(width: int = 4) -> str:
    """2D-mesh router node with X-then-Y dimension-ordered routing (node.v analogue)."""
    return f"""\
module node(clk, rst, in_valid, dest_x, dest_y, local_x, local_y, out_north, out_south, out_east, out_west, out_local, routed);
  input clk, rst, in_valid;
  input [{width - 1}:0] dest_x, dest_y, local_x, local_y;
  output reg out_north, out_south, out_east, out_west, out_local;
  output reg routed;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      out_north <= 1'b0;
      out_south <= 1'b0;
      out_east <= 1'b0;
      out_west <= 1'b0;
      out_local <= 1'b0;
      routed <= 1'b0;
    end else begin
      out_north <= 1'b0;
      out_south <= 1'b0;
      out_east <= 1'b0;
      out_west <= 1'b0;
      out_local <= 1'b0;
      routed <= 1'b0;
      if (in_valid) begin
        routed <= 1'b1;
        if (dest_x > local_x)
          out_east <= 1'b1;
        else if (dest_x < local_x)
          out_west <= 1'b1;
        else if (dest_y > local_y)
          out_north <= 1'b1;
        else if (dest_y < local_y)
          out_south <= 1'b1;
        else
          out_local <= 1'b1;
      end
    end
  end
endmodule
"""


def synchronizer(stages: int = 2, width: int = 1) -> str:
    """Multi-stage clock-domain-crossing synchroniser."""
    lines = [
        f"module sync{stages}(clk, rst, async_in, sync_out);",
        "  input clk, rst;",
        f"  input [{width - 1}:0] async_in;",
        f"  output [{width - 1}:0] sync_out;",
    ]
    for stage in range(stages):
        lines.append(f"  reg [{width - 1}:0] stage{stage};")
    lines.append("  always @(posedge clk or posedge rst) begin")
    lines.append("    if (rst) begin")
    for stage in range(stages):
        lines.append(f"      stage{stage} <= 0;")
    lines.append("    end else begin")
    lines.append("      stage0 <= async_in;")
    for stage in range(1, stages):
        lines.append(f"      stage{stage} <= stage{stage - 1};")
    lines.append("    end")
    lines.append("  end")
    lines.append(f"  assign sync_out = stage{stages - 1};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
