"""Sequential building blocks: counters, shift registers, LFSRs, timers.

These cover the "random number generators for security hardware", counters,
and flow-control style designs the paper's test set draws from OpenCores.
"""

from __future__ import annotations

_LFSR_TAPS = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    12: (12, 11, 10, 4),
    16: (16, 15, 13, 4),
}


def up_counter(width: int = 4) -> str:
    """Up counter with enable and synchronous clear."""
    return f"""\
module counter{width}(clk, rst, en, clear, count, overflow);
  input clk, rst, en, clear;
  output reg [{width - 1}:0] count;
  output overflow;
  always @(posedge clk or posedge rst) begin
    if (rst)
      count <= 0;
    else if (clear)
      count <= 0;
    else if (en)
      count <= count + 1;
  end
  assign overflow = (count == {{{width}{{1'b1}}}}) & en;
endmodule
"""


def up_down_counter(width: int = 4) -> str:
    """Up/down counter with load."""
    return f"""\
module updown_counter{width}(clk, rst, load, up, down, load_value, count);
  input clk, rst, load, up, down;
  input [{width - 1}:0] load_value;
  output reg [{width - 1}:0] count;
  always @(posedge clk or posedge rst) begin
    if (rst)
      count <= 0;
    else if (load)
      count <= load_value;
    else if (up && !down)
      count <= count + 1;
    else if (down && !up)
      count <= count - 1;
  end
endmodule
"""


def mod_counter(modulus: int = 10, width: int = 4) -> str:
    """Modulo-N counter with terminal count output."""
    return f"""\
module mod{modulus}_counter(clk, rst, en, count, tc);
  input clk, rst, en;
  output reg [{width - 1}:0] count;
  output tc;
  always @(posedge clk or posedge rst) begin
    if (rst)
      count <= 0;
    else if (en) begin
      if (count == {width}'d{modulus - 1})
        count <= 0;
      else
        count <= count + 1;
    end
  end
  assign tc = (count == {width}'d{modulus - 1});
endmodule
"""


def gray_counter(width: int = 4) -> str:
    """Gray-code counter: binary counter plus registered gray output."""
    lines = [
        f"module gray_counter{width}(clk, rst, en, gray, binary);",
        "  input clk, rst, en;",
        f"  output reg [{width - 1}:0] gray;",
        f"  output reg [{width - 1}:0] binary;",
        "  always @(posedge clk or posedge rst) begin",
        "    if (rst) begin",
        "      binary <= 0;",
        "      gray <= 0;",
        "    end else if (en) begin",
        "      binary <= binary + 1;",
        f"      gray[{width - 1}] <= binary[{width - 1}];" if width == 1 else
        f"      gray[{width - 1}] <= binary[{width - 1}];",
    ]
    for index in range(width - 2, -1, -1):
        lines.append(f"      gray[{index}] <= binary[{index + 1}] ^ binary[{index}];")
    lines.append("    end")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def shift_register(depth: int = 8) -> str:
    """Serial-in serial-out shift register with explicit stages."""
    lines = [
        f"module shift_reg{depth}(clk, rst, shift_en, serial_in, serial_out, parallel_out);",
        "  input clk, rst, shift_en, serial_in;",
        "  output serial_out;",
        f"  output [{depth - 1}:0] parallel_out;",
        f"  reg [{depth - 1}:0] stages;",
        "  always @(posedge clk or posedge rst) begin",
        "    if (rst)",
        "      stages <= 0;",
        "    else if (shift_en) begin",
        "      stages[0] <= serial_in;",
    ]
    for index in range(1, depth):
        lines.append(f"      stages[{index}] <= stages[{index - 1}];")
    lines.append("    end")
    lines.append("  end")
    lines.append(f"  assign serial_out = stages[{depth - 1}];")
    lines.append("  assign parallel_out = stages;")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def lfsr(width: int = 8) -> str:
    """Fibonacci LFSR pseudo-random number generator."""
    taps = _LFSR_TAPS.get(width, (width, width - 1))
    feedback = " ^ ".join(f"state[{tap - 1}]" for tap in taps)
    lines = [
        f"module lfsr{width}(clk, rst, en, random_out, random_bit);",
        "  input clk, rst, en;",
        f"  output [{width - 1}:0] random_out;",
        "  output random_bit;",
        f"  reg [{width - 1}:0] state;",
        "  wire feedback;",
        f"  assign feedback = {feedback};",
        "  always @(posedge clk or posedge rst) begin",
        "    if (rst)",
        f"      state <= {width}'d1;",
        "    else if (en) begin",
        "      state[0] <= feedback;",
    ]
    for index in range(1, width):
        lines.append(f"      state[{index}] <= state[{index - 1}];")
    lines.append("    end")
    lines.append("  end")
    lines.append("  assign random_out = state;")
    lines.append("  assign random_bit = state[0];")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def prng_bank(banks: int = 4, width: int = 8) -> str:
    """A bank of LFSRs combined into a wide pattern generator (ca_prng analogue).

    Each bank has its own explicit per-bit shift logic, so large configurations
    reach the ~1000-line scale of the paper's largest test design.
    """
    lines = [
        f"module ca_prng_x{banks}(clk, rst, en, load, seed, pattern, pattern_valid);",
        "  input clk, rst, en, load;",
        f"  input [{width - 1}:0] seed;",
        f"  output [{banks * width - 1}:0] pattern;",
        "  output reg pattern_valid;",
    ]
    for bank in range(banks):
        lines.append(f"  reg [{width - 1}:0] bank{bank};")
        taps = _LFSR_TAPS.get(width, (width, width - 1))
        feedback = " ^ ".join(f"bank{bank}[{tap - 1}]" for tap in taps)
        extra = f" ^ bank{bank}[{bank % width}]" if bank else ""
        lines.append(f"  wire fb{bank};")
        lines.append(f"  assign fb{bank} = {feedback}{extra};")
    lines.append("  always @(posedge clk or posedge rst) begin")
    lines.append("    if (rst) begin")
    for bank in range(banks):
        lines.append(f"      bank{bank} <= {width}'d{bank + 1};")
    lines.append("      pattern_valid <= 1'b0;")
    lines.append("    end else if (load) begin")
    for bank in range(banks):
        lines.append(f"      bank{bank} <= seed + {width}'d{bank};")
    lines.append("      pattern_valid <= 1'b0;")
    lines.append("    end else if (en) begin")
    for bank in range(banks):
        lines.append(f"      bank{bank}[0] <= fb{bank};")
        for index in range(1, width):
            lines.append(f"      bank{bank}[{index}] <= bank{bank}[{index - 1}];")
    lines.append("      pattern_valid <= 1'b1;")
    lines.append("    end else begin")
    lines.append("      pattern_valid <= 1'b0;")
    lines.append("    end")
    lines.append("  end")
    for bank in range(banks):
        low = bank * width
        lines.append(f"  assign pattern[{low + width - 1}:{low}] = bank{bank};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def clock_divider(ratio_bits: int = 3) -> str:
    """Programmable clock divider (eth_clockgen analogue)."""
    return f"""\
module eth_clockgen(clk, rst, divider, enable, clk_en, clk_out);
  input clk, rst, enable;
  input [{ratio_bits - 1}:0] divider;
  output reg clk_en;
  output reg clk_out;
  reg [{ratio_bits - 1}:0] count;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count <= 0;
      clk_en <= 1'b0;
      clk_out <= 1'b0;
    end else if (enable) begin
      if (count >= divider) begin
        count <= 0;
        clk_en <= 1'b1;
        clk_out <= ~clk_out;
      end else begin
        count <= count + 1;
        clk_en <= 1'b0;
      end
    end else begin
      clk_en <= 1'b0;
    end
  end
endmodule
"""


def pwm_generator(width: int = 4) -> str:
    """Pulse-width modulator with programmable duty cycle."""
    return f"""\
module pwm{width}(clk, rst, en, duty, pwm_out, period_start);
  input clk, rst, en;
  input [{width - 1}:0] duty;
  output pwm_out;
  output period_start;
  reg [{width - 1}:0] count;
  always @(posedge clk or posedge rst) begin
    if (rst)
      count <= 0;
    else if (en)
      count <= count + 1;
  end
  assign pwm_out = en & (count < duty);
  assign period_start = (count == 0);
endmodule
"""


def watchdog_timer(width: int = 4) -> str:
    """Watchdog timer: bites when not kicked before the timeout."""
    return f"""\
module watchdog{width}(clk, rst, kick, timeout, count, bite);
  input clk, rst, kick;
  input [{width - 1}:0] timeout;
  output reg [{width - 1}:0] count;
  output reg bite;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count <= 0;
      bite <= 1'b0;
    end else if (kick) begin
      count <= 0;
      bite <= 1'b0;
    end else if (count >= timeout) begin
      bite <= 1'b1;
    end else begin
      count <= count + 1;
    end
  end
endmodule
"""


def debouncer(width: int = 3) -> str:
    """Switch debouncer: output follows input only after it is stable."""
    stable_count = (1 << width) - 1
    return f"""\
module debouncer{width}(clk, rst, noisy_in, clean_out, stable);
  input clk, rst, noisy_in;
  output reg clean_out;
  output stable;
  reg [{width - 1}:0] count;
  reg last_sample;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count <= 0;
      last_sample <= 1'b0;
      clean_out <= 1'b0;
    end else begin
      last_sample <= noisy_in;
      if (noisy_in != last_sample)
        count <= 0;
      else if (count != {width}'d{stable_count})
        count <= count + 1;
      if (count == {width}'d{stable_count})
        clean_out <= last_sample;
    end
  end
  assign stable = (count == {width}'d{stable_count});
endmodule
"""


def register_with_interrupt(width: int = 8) -> str:
    """Status register with interrupt masking (reg_int_sim / can_register analogue)."""
    lines = [
        "module reg_int(clk, rst, write_en, clear_en, mask_en, data_in, mask_in, status, irq);",
        "  input clk, rst, write_en, clear_en, mask_en;",
        f"  input [{width - 1}:0] data_in, mask_in;",
        f"  output reg [{width - 1}:0] status;",
        "  output irq;",
        f"  reg [{width - 1}:0] mask;",
        "  always @(posedge clk or posedge rst) begin",
        "    if (rst) begin",
        "      status <= 0;",
        "      mask <= 0;",
        "    end else begin",
        "      if (write_en)",
        "        status <= status | data_in;",
        "      if (clear_en)",
        "        status <= status & ~data_in;",
        "      if (mask_en)",
        "        mask <= mask_in;",
        "    end",
        "  end",
        "  assign irq = |(status & mask);",
        "endmodule",
    ]
    return "\n".join(lines) + "\n"


def phase_comparator() -> str:
    """Phase/frequency comparator (phasecomparator.v analogue)."""
    return """\
module phasecomparator(clk, rst, ref_edge, fb_edge, up, down, locked);
  input clk, rst, ref_edge, fb_edge;
  output reg up, down;
  output locked;
  reg [2:0] lock_count;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      up <= 1'b0;
      down <= 1'b0;
      lock_count <= 0;
    end else begin
      if (ref_edge & ~fb_edge) begin
        up <= 1'b1;
        down <= 1'b0;
        lock_count <= 0;
      end else if (fb_edge & ~ref_edge) begin
        up <= 1'b0;
        down <= 1'b1;
        lock_count <= 0;
      end else begin
        up <= 1'b0;
        down <= 1'b0;
        if (ref_edge & fb_edge) begin
          if (lock_count != 3'd7)
            lock_count <= lock_count + 1;
        end
      end
    end
  end
  assign locked = (lock_count == 3'd7);
endmodule
"""
