"""Wide-datapath designs: operands past the 64-bit packing ceiling.

Every builder here is seeded and parameterized: constants (increments,
thresholds, polynomial masks, mux banks) are drawn from ``random.Random(seed)``
so two corpus instances always synthesize identical source, while different
seeds give structurally-identical designs with unrelated constants.

The family exists to exercise the multi-limb and bit-sliced lowering paths of
:mod:`repro.sim.vector`: 100-bit counters and accumulators, wide compares and
checksums, a 40x40 multiplier, dynamic wide shifts, and a ``**``-using
polynomial generator.  None of these fit the packed int64 SoA representation,
and all of them must still lower without scalar fallback.
"""

from __future__ import annotations

import random


def _const(rng: random.Random, bits: int) -> int:
    """A non-zero ``bits``-wide constant with both halves populated."""
    value = rng.getrandbits(bits) | 1 | (1 << (bits - 1))
    return value


def wide_counter(width: int = 100, seed: int = 1) -> str:
    """Wide up counter with a seeded stride and threshold flag."""
    rng = random.Random(seed)
    stride = _const(rng, width // 2)
    limit = _const(rng, width)
    return f"""\
module wide_counter{width}(clk, rst, en, load, preset, count, gray, wrapped);
  input clk, rst, en, load;
  input [15:0] preset;
  output reg [{width - 1}:0] count;
  output [{width - 1}:0] gray;
  output wrapped;
  always @(posedge clk or posedge rst) begin
    if (rst)
      count <= {width}'d0;
    else if (load)
      count <= preset;
    else if (en)
      count <= count + {width}'d{stride};
  end
  assign gray = count ^ (count >> 1);
  assign wrapped = count >= {width}'d{limit};
endmodule
"""


def wide_accumulator(width: int = 100, din_width: int = 16, seed: int = 3) -> str:
    """Wide accumulator with add/subtract modes and a seeded overflow line."""
    rng = random.Random(seed)
    thresh = _const(rng, width)
    return f"""\
module wide_accum{width}(clk, rst, clear, sub, din, acc, over, msb);
  input clk, rst, clear, sub;
  input [{din_width - 1}:0] din;
  output reg [{width - 1}:0] acc;
  output over, msb;
  always @(posedge clk or posedge rst) begin
    if (rst)
      acc <= {width}'d0;
    else if (clear)
      acc <= {width}'d0;
    else if (sub)
      acc <= acc - din;
    else
      acc <= acc + din;
  end
  assign over = acc > {width}'d{thresh};
  assign msb = acc[{width - 1}];
endmodule
"""


def wide_compare(width: int = 100, seed: int = 5) -> str:
    """Combinational wide comparator against seeded bounds."""
    rng = random.Random(seed)
    low = _const(rng, width - 2)
    high = low + _const(rng, width - 4)
    return f"""\
module wide_cmp{width}(a, b, lt, ge, eq, inrange, maxv);
  input [{width - 1}:0] a, b;
  output lt, ge, eq, inrange;
  output [{width - 1}:0] maxv;
  assign lt = a < b;
  assign ge = a >= b;
  assign eq = a == b;
  assign inrange = (a >= {width}'d{low}) && (a <= {width}'d{high});
  assign maxv = (a < b) ? b : a;
endmodule
"""


def wide_checksum(width: int = 96, chunk: int = 16, seed: int = 7) -> str:
    """Adler-style running checksum folding a wide bus chunk by chunk."""
    count = width // chunk
    parts = " + ".join(
        f"data[{(i + 1) * chunk - 1}:{i * chunk}]" for i in range(count)
    )
    return f"""\
module wide_checksum{width}(clk, rst, en, data, folded, checksum, nonzero);
  input clk, rst, en;
  input [{width - 1}:0] data;
  output [{chunk + 7}:0] folded;
  output reg [15:0] checksum;
  output nonzero;
  assign folded = {parts};
  always @(posedge clk or posedge rst) begin
    if (rst)
      checksum <= 16'd1;
    else if (en)
      checksum <= (checksum + folded) % 16'd65521;
  end
  assign nonzero = data != {width}'d0;
endmodule
"""


def wide_multiplier(width: int = 40) -> str:
    """Full-precision wide multiplier with a registered product."""
    return f"""\
module wide_mul{width}x{width}(clk, rst, en, a, b, product, prod_r, hi, zero);
  input clk, rst, en;
  input [{width - 1}:0] a, b;
  output [{2 * width - 1}:0] product;
  output reg [{2 * width - 1}:0] prod_r;
  output [{width - 1}:0] hi;
  output zero;
  assign product = a * b;
  assign hi = product[{2 * width - 1}:{width}];
  assign zero = product == {2 * width}'d0;
  always @(posedge clk or posedge rst) begin
    if (rst)
      prod_r <= {2 * width}'d0;
    else if (en)
      prod_r <= a * b;
  end
endmodule
"""


def pow_lfsr(width: int = 72, seed: int = 9) -> str:
    """Polynomial pattern generator stepping ``state ** e`` each clock.

    The ``**`` operator (modular square-and-multiply in the limb kernel) is
    the point: the state register is wider than 64 bits and the exponent is a
    live 3-bit input, so the design cannot lower without dynamic wide power.
    """
    rng = random.Random(seed)
    poly = _const(rng, width)
    init = _const(rng, width // 2)
    return f"""\
module pow_lfsr{width}(clk, rst, e, reseed, state, tap, sig);
  input clk, rst, reseed;
  input [2:0] e;
  output reg [{width - 1}:0] state;
  output tap;
  output [15:0] sig;
  always @(posedge clk or posedge rst) begin
    if (rst)
      state <= {width}'d{init};
    else if (reseed)
      state <= (state ^ {width}'d{poly}) | {width}'d1;
    else
      state <= (state ** e) ^ {width}'d{poly};
  end
  assign tap = state[{width - 1}];
  assign sig = state[15:0] ^ state[{width - 1}:{width - 16}];
endmodule
"""


def wide_shifter(width: int = 80) -> str:
    """Dynamic wide barrel shifter: left, right, and rotate composites."""
    amt_bits = max(1, (width - 1).bit_length())
    return f"""\
module wide_shift{width}(din, amt, sl, sr, rot, sticky);
  input [{width - 1}:0] din;
  input [{amt_bits - 1}:0] amt;
  output [{width - 1}:0] sl, sr, rot;
  output sticky;
  assign sl = din << amt;
  assign sr = din >> amt;
  assign rot = (din << amt) | (din >> ({width}'d{width} - amt));
  assign sticky = (din >> amt) != {width}'d0;
endmodule
"""


def wide_mux_bank(width: int = 96, banks: int = 4, seed: int = 11) -> str:
    """Registered wide constant bank selected by a narrow index."""
    rng = random.Random(seed)
    consts = [_const(rng, width) for _ in range(banks)]
    sel_bits = max(1, (banks - 1).bit_length())
    lines = [
        f"module wide_mux{width}(clk, rst, sel, mask, pattern, parity);",
        "  input clk, rst;",
        f"  input [{sel_bits - 1}:0] sel;",
        f"  input [{width - 1}:0] mask;",
        f"  output reg [{width - 1}:0] pattern;",
        "  output parity;",
        "  always @(posedge clk or posedge rst) begin",
        "    if (rst)",
        f"      pattern <= {width}'d0;",
        "    else begin",
        "      case (sel)",
    ]
    for index, value in enumerate(consts):
        lines.append(f"        {sel_bits}'d{index}: pattern <= {width}'d{value} & mask;")
    lines.append(f"        default: pattern <= pattern ^ {width}'d{consts[0]};")
    lines.extend(
        [
            "      endcase",
            "    end",
            "  end",
            "  assign parity = ^pattern;",
            "endmodule",
        ]
    )
    return "\n".join(lines) + "\n"
