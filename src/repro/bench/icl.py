"""In-context-example (ICE) construction for k-shot learning (Section III).

Each ICE is a tuple ⟨D, A⟩ of a training design and its formally verified
assertions (minimum 2, maximum 10, average ≈4.8 per design in the paper).
The five training designs are the corpus' ``train`` split; their assertions
come from the miners and are discharged on the FPV engine before use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..hdl.design import Design
from ..llm.prompt import InContextExample
from ..sva.model import Assertion
from .corpus import AssertionBenchCorpus
from .knowledge import DesignKnowledgeBase


@dataclass
class IclExampleSet:
    """The pool of in-context examples available to the evaluation."""

    examples: List[InContextExample] = field(default_factory=list)

    def for_k(self, k: int) -> List[InContextExample]:
        """Return the first ``k`` examples (1-shot uses the arbiter example)."""
        if k <= 0:
            return []
        if k > len(self.examples):
            raise ValueError(
                f"requested {k}-shot but only {len(self.examples)} examples exist"
            )
        return self.examples[:k]

    @property
    def average_assertions(self) -> float:
        if not self.examples:
            return 0.0
        return sum(len(example.assertions) for example in self.examples) / len(self.examples)

    def assertion_counts(self) -> List[int]:
        return [len(example.assertions) for example in self.examples]


def build_icl_examples(
    corpus: Optional[AssertionBenchCorpus] = None,
    knowledge: Optional[DesignKnowledgeBase] = None,
    min_assertions: int = 2,
    max_assertions: int = 10,
) -> IclExampleSet:
    """Build the ICE pool from the corpus' training designs."""
    corpus = corpus or AssertionBenchCorpus()
    knowledge = knowledge or DesignKnowledgeBase()
    examples: List[InContextExample] = []
    for design in corpus.training_designs():
        assertions = knowledge.verified_assertions(design)[:max_assertions]
        if len(assertions) < min_assertions:
            assertions = _pad_with_trivial(design, assertions, min_assertions)
        examples.append(InContextExample(design=design, assertions=assertions))
    return IclExampleSet(examples=examples)


def _pad_with_trivial(
    design: Design, assertions: Sequence[Assertion], minimum: int
) -> List[Assertion]:
    """Pad an example with tautological invariants when mining found too few.

    The paper guarantees at least two assertions per ICE; for tiny designs
    where the miners find fewer proven candidates we add range invariants
    (always true by construction) so the prompt format stays faithful.
    """
    from ..hdl import ast
    from ..sva.model import OVERLAPPED, SequenceTerm

    padded = list(assertions)
    clock = design.model.clocks[0] if design.model.clocks else None
    for name in design.model.outputs + design.model.state_regs:
        if len(padded) >= minimum:
            break
        signal = design.model.signals[name]
        invariant = Assertion(
            antecedent=[SequenceTerm(0, ast.Number(1))],
            consequent=[
                SequenceTerm(
                    0,
                    ast.Binary(
                        "<=", ast.Identifier(name), ast.Number(signal.max_value)
                    ),
                )
            ],
            implication=OVERLAPPED,
            clock=clock,
        )
        padded.append(invariant)
    return padded
