"""Per-design knowledge base: formally verified assertions with caching.

Several consumers need "a small set of assertions known to hold on design D":
the ICE construction for k-shot prompts (Section III), the fine-tuning
dataset (Section VI), and the simulated LLMs' generation of semantically
valid candidates.  Mining and formally verifying assertions is the expensive
part, so this module computes the pool once per design and caches it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..fpv.engine import EngineConfig
from ..hdl.design import Design
from ..mining.goldmine import GoldMineConfig
from ..mining.harm import HarmConfig
from ..mining.miner import AssertionMiner, MinerConfig, MiningReport
from ..sva.model import Assertion


def _fast_miner_config() -> MinerConfig:
    """A mining configuration tuned for corpus-scale use.

    Shorter traces, smaller candidate fan-out, and a lighter FPV fallback keep
    per-design pool construction cheap even for the thousand-line designs.
    """
    return MinerConfig(
        trace_cycles=192,
        goldmine=GoldMineConfig(max_depth=2, max_assertions_per_target=3, max_targets=8),
        harm=HarmConfig(
            min_support=3,
            max_antecedent_signals=1,
            max_feature_atoms=10,
            max_assertions_per_target=4,
            mine_sequences=False,
            max_targets=8,
        ),
        engine=EngineConfig(
            max_states=2048,
            max_transitions=120_000,
            max_input_bits=10,
            max_path_evaluations=120_000,
            fallback_cycles=256,
            fallback_seeds=2,
        ),
        max_assertions=10,
    )


@dataclass
class DesignKnowledge:
    """Verified assertions and basic structural facts for one design."""

    design: Design
    verified_assertions: List[Assertion] = field(default_factory=list)
    mining_report: Optional[MiningReport] = None

    @property
    def has_assertions(self) -> bool:
        return bool(self.verified_assertions)


class DesignKnowledgeBase:
    """Lazily mine and cache verified assertions for corpus designs."""

    def __init__(self, miner_config: Optional[MinerConfig] = None):
        self._config = miner_config or _fast_miner_config()
        self._cache: Dict[str, DesignKnowledge] = {}

    def knowledge(self, design: Design) -> DesignKnowledge:
        """Return (building if necessary) the knowledge entry for ``design``."""
        if design.name in self._cache:
            return self._cache[design.name]
        report = AssertionMiner(design, self._config).mine()
        entry = DesignKnowledge(
            design=design,
            verified_assertions=list(report.selected),
            mining_report=report,
        )
        self._cache[design.name] = entry
        return entry

    def verified_assertions(self, design: Design) -> List[Assertion]:
        """Verified assertions for ``design`` (possibly empty)."""
        return list(self.knowledge(design).verified_assertions)

    def preload(self, designs) -> None:
        """Eagerly build knowledge for a collection of designs."""
        for design in designs:
            self.knowledge(design)

    def cached_names(self) -> List[str]:
        return sorted(self._cache)

    def __contains__(self, design_name: str) -> bool:
        return design_name in self._cache
