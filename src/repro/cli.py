"""Command-line driver for durable evaluation campaigns.

``python -m repro`` exposes five verbs:

``run``
    Start (or idempotently continue) a campaign in ``--run-dir``: pick a
    registered corpus, the COTS models, and the k-shot settings, then stream
    generate → correct → verify with per-design checkpointing.  Re-invoking
    ``run`` on the same directory with the same configuration resumes it;
    a different configuration is rejected via the manifest's config hash.

``resume``
    Strict resume: requires an existing manifest (refuses to start fresh)
    and continues exactly where the previous process stopped — committed
    cells load from the outcome shards, and regenerated assertions of
    interrupted cells replay their verdicts from the persistent cache.

``mutate``
    Everything ``run`` does, followed by the mutation-analysis stage: every
    FPV-passing assertion is re-verified against systematically corrupted
    variants of its design (see :mod:`repro.mutate`) and scored by kill
    rate.  Verdicts stream into the run directory's ``mutations.jsonl`` and
    reruns resume.

``report``
    Rebuild the :class:`~repro.core.metrics.EvaluationMatrix` from a run
    directory and render the paper's accuracy tables (no FPV work); with
    ``--mutation``, render the kill-rate tables from ``mutations.jsonl``.

``list-corpora``
    Show every corpus registered in :mod:`repro.bench.corpus`.

Example::

    python -m repro run --run-dir runs/nightly --corpus assertionbench \
        --designs 32 --k 1,5 --workers 4
    python -m repro mutate --run-dir runs/nightly --max-mutants 32
    python -m repro resume --run-dir runs/nightly
    python -m repro report --run-dir runs/nightly --mutation
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence, Tuple

from .bench.corpus import DEFAULT_CORPUS, SMOKE_CORPUS, get_corpus, list_corpora
from .bench.icl import build_icl_examples
from .bench.knowledge import DesignKnowledgeBase
from .core.pipeline import PipelineConfig
from .core.reports import (
    accuracy_matrix_report,
    figure7_model_comparison,
    mutation_category_report,
    mutation_generation_report,
    mutation_kill_report,
    weak_assertion_report,
)
from .core.runtime import CampaignRuntime, campaign_config
from .core.store import ResumeMismatchError, RunStore
from .llm.cots import SimulatedCotsLLM
from .llm.profiles import COTS_PROFILES
from .mutate import MutationCampaign, MutationConfig, MutationSummary, operator_names
from .sim.compile import BACKENDS, VECTORIZED

__all__ = ["main", "build_parser"]


def _parse_k_values(text: str) -> Tuple[int, ...]:
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid k list {text!r}; expected e.g. '1,5'")
    if not values:
        raise argparse.ArgumentTypeError("at least one k value is required")
    return values


def _parse_shard(text: str) -> Tuple[int, int]:
    try:
        index_text, count_text = text.split("/", 1)
        return int(index_text), int(count_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid shard {text!r}; expected 'index/count' like '0/4'"
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Durable LLM-assertion evaluation campaigns over AssertionBench.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_campaign_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--run-dir", default="runs/campaign", help="run directory (created if missing)")
        p.add_argument("--corpus", default=DEFAULT_CORPUS, help="registered corpus name")
        p.add_argument("--designs", type=int, default=None, metavar="N",
                       help="evaluate only the first N test designs")
        p.add_argument("--k", type=_parse_k_values, default=(1, 5), metavar="K1,K2",
                       help="comma-separated k-shot settings (default 1,5)")
        p.add_argument("--models", nargs="*", default=None, metavar="NAME",
                       help="COTS model names to run (default: all four)")
        p.add_argument("--workers", type=int, default=None, metavar="N",
                       help="FPV worker processes (default REPRO_FPV_WORKERS)")
        p.add_argument("--shard", type=_parse_shard, default=None, metavar="I/N",
                       help="evaluate test-design shard I of N (multi-machine runs)")
        p.add_argument("--no-corrector", action="store_true",
                       help="disable the syntax corrector stage")

    run_parser = sub.add_parser("run", help="start or continue a campaign")
    add_campaign_arguments(run_parser)
    run_parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke mode: tiny corpus, two models, k=1",
    )

    mutate_parser = sub.add_parser(
        "mutate",
        help="run (or resume) a campaign, then score passing assertions by kill rate",
    )
    add_campaign_arguments(mutate_parser)
    mutate_parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke mode: tiny corpus, two models, k=1",
    )
    mutate_parser.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="force one FPV evaluation backend (default: REPRO_EVAL_BACKEND, "
             "else vectorized-first with transparent compiled fallback)",
    )
    mutate_parser.add_argument(
        "--operators", nargs="*", default=None, metavar="NAME",
        help=f"mutation operators to apply (default: {' '.join(operator_names())})",
    )
    mutate_parser.add_argument(
        "--max-mutants", type=int, default=None, metavar="N",
        help="cap viable mutants per design, round-robin across operators "
             "(default 64; 16 in --smoke)",
    )
    mutate_parser.add_argument(
        "--no-semantic-filter", action="store_true",
        help="keep mutants with no detectable difference from the golden design",
    )
    mutate_parser.add_argument(
        "--no-family", action="store_true",
        help="disable family-batched verification (reference per-mutant path; "
             "verdict outcomes are identical, only slower)",
    )
    mutate_parser.add_argument(
        "--no-witness-screen", action="store_true",
        help="disable the difference-witness kill pre-screen",
    )

    resume_parser = sub.add_parser(
        "resume",
        help="strictly resume an interrupted campaign from its manifest",
    )
    resume_parser.add_argument("--run-dir", required=True)
    resume_parser.add_argument("--workers", type=int, default=None, metavar="N",
                               help="override FPV worker processes for this resume")

    report_parser = sub.add_parser("report", help="render tables from a run directory")
    report_parser.add_argument("--run-dir", required=True)
    report_parser.add_argument(
        "--mutation", action="store_true",
        help="render the mutation kill-rate tables from mutations.jsonl",
    )

    sub.add_parser("list-corpora", help="list registered corpora")
    return parser


# ---------------------------------------------------------------------------
# Verbs
# ---------------------------------------------------------------------------


def _campaign(
    args: argparse.Namespace,
    resume_only: bool,
    corpus_name: Optional[str] = None,
    k_values: Optional[Sequence[int]] = None,
    num_designs: Optional[int] = "unset",  # type: ignore[assignment]
    model_names: Optional[List[str]] = None,
    shard: Optional[Tuple[int, int]] = None,
    use_corrector: Optional[bool] = None,
    mutation: Optional[MutationConfig] = None,
) -> int:
    corpus_name = corpus_name if corpus_name is not None else args.corpus
    k_values = k_values if k_values is not None else args.k
    num_designs = args.designs if num_designs == "unset" else num_designs
    model_names = model_names if model_names is not None else args.models
    shard = shard if shard is not None else getattr(args, "shard", None)
    if getattr(args, "smoke", False):
        corpus_name = SMOKE_CORPUS
        k_values = (1,)
        num_designs = None
        if model_names is None:
            model_names = [COTS_PROFILES[0].name, COTS_PROFILES[1].name]

    try:
        corpus = get_corpus(corpus_name, shard=shard)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    profiles = COTS_PROFILES
    if model_names is not None:
        known = {profile.name: profile for profile in COTS_PROFILES}
        missing = [name for name in model_names if name not in known]
        if missing:
            print(
                f"error: unknown model(s) {missing}; available: {sorted(known)}",
                file=sys.stderr,
            )
            return 2
        profiles = [known[name] for name in model_names]

    pipeline_config = PipelineConfig()
    if use_corrector is None:
        use_corrector = not getattr(args, "no_corrector", False)
    pipeline_config.use_syntax_corrector = use_corrector
    if args.workers is not None:
        pipeline_config.workers = max(1, args.workers)
    if getattr(args, "backend", None):
        pipeline_config.engine.backend = args.backend

    knowledge = DesignKnowledgeBase()
    examples = build_icl_examples(corpus, knowledge)
    generators = [SimulatedCotsLLM(profile, knowledge) for profile in profiles]
    designs = corpus.test_designs(limit=num_designs)

    store = RunStore(args.run_dir)
    manifest_payload = campaign_config(
        generators,
        k_values,
        designs,
        pipeline_config,
        extra={
            "corpus": corpus_name,
            "shard": list(shard) if shard else None,
            "num_designs": num_designs,
        },
    )
    try:
        store.begin_run(manifest_payload, resume_only=resume_only)
    except ResumeMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3

    already_done = len(store.completed_cells())
    total_cells = len(generators) * len(k_values) * len(designs)
    verb = "Resuming" if (resume_only or already_done) else "Running"
    print(
        f"{verb} campaign in {store.root}: {len(generators)} models x "
        f"{len(k_values)} k x {len(designs)} designs = {total_cells} cells "
        f"({already_done} already committed)"
    )

    summary: Optional[MutationSummary] = None
    with CampaignRuntime(config=pipeline_config, store=store) as runtime:
        matrix = runtime.run_campaign(generators, k_values, designs, examples)
        if mutation is not None:
            campaign = MutationCampaign(runtime.service, store, mutation)
            summary = campaign.run(
                designs,
                campaign.passed_assertions(store),
                progress=lambda message: print(message),
            )
        run_stats = runtime.service.run_stats()
    store.finish_run(stats=run_stats)
    store.close()

    print(accuracy_matrix_report(matrix, "Accuracy matrix").text)
    if summary is not None:
        _print_mutation_summary(summary)
    _print_run_stats(run_stats)
    print(f"run directory: {store.root} (status: complete)")
    return 0


def _print_run_stats(run_stats: dict) -> None:
    """Render the per-run cache counters (also shown by ``repro report``)."""
    verdicts = run_stats.get("verdict_cache", {})
    print(
        f"\nverdict cache: {verdicts.get('entries', 0)} entries, "
        f"{verdicts.get('hits', 0)} hits, {verdicts.get('misses', 0)} misses"
    )
    reachability = run_stats.get("reachability_cache", {})
    print(
        f"reachability cache: {reachability.get('entries', 0)} entries, "
        f"{reachability.get('hits', 0)} hits, {reachability.get('misses', 0)} misses"
    )
    step = run_stats.get("step_cache", {})
    print(
        f"step cache: {step.get('hits', 0)} hits, {step.get('misses', 0)} misses"
    )
    family = run_stats.get("family", {})
    if family.get("members"):
        print(
            f"family sweep: {family.get('members', 0)} mutants "
            f"({family.get('family_members', 0)} family-batched "
            f"[{family.get('family_soa_members', 0)} soa, "
            f"{family.get('family_multilimb_members', 0)} multilimb], "
            f"{family.get('fallback_members', 0)} fallback), "
            f"{family.get('memo_reused', 0)} memo-reused verdicts, "
            f"{family.get('screen_kills', 0)} witness-screen kills, "
            f"{family.get('delta_escape_states', 0)} delta escape states"
        )
    lowering = run_stats.get("lowering", {})
    plans = lowering.get("plans") or {}
    if plans:
        breakdown = ", ".join(
            f"{count} {plan}" for plan, count in sorted(plans.items())
        )
        print(
            f"vector lowering: {breakdown} "
            f"({lowering.get('fallback_designs', 0)} scalar fallbacks)"
        )
        for name, reason in sorted((lowering.get("fallback_reasons") or {}).items()):
            print(f"  fallback {name}: {reason}")


def _print_mutation_summary(summary: MutationSummary) -> None:
    counts = summary.outcome_counts()
    print()
    print(mutation_kill_report(summary).text)
    print()
    print(mutation_category_report(summary).text)
    print()
    print(weak_assertion_report(summary).text)
    if summary.design_stats:
        print()
        print(mutation_generation_report(summary).text)
    print(
        f"\nmutation outcomes: {len(summary)} verdicts — "
        f"{counts['killed']} killed, {counts['survived']} survived, "
        f"{counts['timeout']} timeout, {counts['error']} error"
    )


def _resume(args: argparse.Namespace) -> int:
    """Rebuild the campaign from the run directory's manifest and continue."""
    store = RunStore(args.run_dir)
    manifest = store.read_manifest()
    if manifest is None:
        print(f"error: run directory {store.root} has no manifest to resume", file=sys.stderr)
        return 3
    config = manifest.get("config", {})
    if not config.get("models"):
        # e.g. a run directory written by ExperimentSuite — its manifest
        # identifies a suite, not a CLI campaign, so there is nothing the
        # CLI can faithfully reconstruct.
        print(
            f"error: {store.root} was not written by `repro run`; "
            "resume it with the tool that created it",
            file=sys.stderr,
        )
        return 3
    return _campaign(
        args,
        resume_only=True,
        corpus_name=config.get("corpus", DEFAULT_CORPUS),
        k_values=tuple(config.get("k_values", (1, 5))),
        num_designs=config.get("num_designs"),
        model_names=list(config["models"]),
        shard=tuple(config["shard"]) if config.get("shard") else None,
        use_corrector=config.get("use_syntax_corrector", True),
    )


def _mutate(args: argparse.Namespace) -> int:
    limit = args.max_mutants
    if limit is None:
        limit = 16 if args.smoke else MutationConfig().limit_per_design
    mutation = MutationConfig(
        operators=list(args.operators) if args.operators is not None else None,
        limit_per_design=max(1, limit) if limit is not None else None,
        semantic_filter=not args.no_semantic_filter,
        family_batching=not args.no_family,
        witness_screen=not args.no_witness_screen,
    )
    try:
        # Fail fast on unknown operator names (the library is the single
        # validator) before the generate/verify campaign spends any work.
        mutation.identity()
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.backend is None and not os.environ.get("REPRO_EVAL_BACKEND"):
        # The issue-scale workload (mutants x assertions) is what the array
        # kernel was built for; designs it cannot lower fall back to the
        # compiled sweep transparently, and verdicts are backend-identical,
        # so this never changes results or breaks resume.
        args.backend = VECTORIZED
    return _campaign(args, resume_only=False, mutation=mutation)


def _report(args: argparse.Namespace) -> int:
    store = RunStore(args.run_dir)
    manifest = store.read_manifest()
    if manifest is None:
        print(f"error: {store.root} has no manifest", file=sys.stderr)
        return 2
    summary = store.describe()
    print(
        f"run {summary['root']}: status={summary['status']} "
        f"config={summary['config_hash']} cells={summary['completed_cells']} "
        f"verdicts={summary['persistent_verdicts']} resumes={summary['resumes']}"
    )
    recorded_stats = manifest.get("stats")
    if recorded_stats:
        _print_run_stats(recorded_stats)
    if args.mutation:
        records, markers = store.load_mutation_log()
        if not records:
            print("no mutation verdicts recorded yet (run `python -m repro mutate`)")
            return 0
        _print_mutation_summary(
            MutationSummary.from_records(
                records,
                {name: marker.get("stats", {}) for name, marker in markers.items()},
            )
        )
        return 0
    matrix = store.load_matrix()
    if not matrix.model_names:
        print("no committed cells yet")
        return 0
    print(accuracy_matrix_report(matrix, "Accuracy matrix").text)
    for k in matrix.k_values:
        print()
        print(figure7_model_comparison(matrix, k).text)
    return 0


def _list_corpora() -> int:
    rows = []
    for entry in list_corpora():
        corpus = get_corpus(entry.name)
        rows.append(
            f"{entry.name:28s} {len(corpus.names('train')):2d} train "
            f"+ {len(corpus.names('test')):3d} test  {entry.description}"
        )
    print("\n".join(rows))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _campaign(args, resume_only=False)
        if args.command == "mutate":
            return _mutate(args)
        if args.command == "resume":
            return _resume(args)
        if args.command == "report":
            return _report(args)
        if args.command == "list-corpora":
            return _list_corpora()
    except BrokenPipeError:
        # Output was piped into a closed reader (e.g. `| head`); not an error.
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")
