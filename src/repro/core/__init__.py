"""Core contribution: AssertionBench evaluation framework + AssertionLLM flow."""

from .experiments import ExperimentSuite, SuiteConfig, SuiteResults, run_reproduction
from .finetune_eval import (
    FinetuneCampaignResult,
    FinetuneEvaluationConfig,
    FinetuneEvaluator,
    evaluate_finetuned_models,
)
from .icl_eval import IclEvaluationConfig, IclEvaluator, evaluate_cots_models
from .metrics import (
    CEX,
    ERROR,
    PASS,
    AssertionOutcome,
    DesignEvaluation,
    EvaluationMatrix,
    MetricCounts,
    ModelKshotResult,
    categorize,
)
from .observations import ObservationCheck, all_observations
from .pipeline import EvaluationPipeline, PipelineConfig
from .runtime import CampaignRuntime, campaign_config
from .scheduler import (
    SchedulerConfig,
    VerdictCache,
    VerificationService,
    default_workers,
)
from .store import (
    PersistentReachabilityCache,
    PersistentVerdictCache,
    ResumeMismatchError,
    RunStore,
    config_hash,
)
from .reports import (
    FigureSeries,
    TableReport,
    accuracy_matrix_report,
    corpus_summary,
    figure3_design_sizes,
    figure6_accuracy,
    figure7_model_comparison,
    figure9_finetuned,
    ice_statistics,
    table1_design_details,
)

__all__ = [
    "AssertionOutcome",
    "CampaignRuntime",
    "CEX",
    "DesignEvaluation",
    "ERROR",
    "EvaluationMatrix",
    "EvaluationPipeline",
    "ExperimentSuite",
    "FigureSeries",
    "FinetuneCampaignResult",
    "FinetuneEvaluationConfig",
    "FinetuneEvaluator",
    "IclEvaluationConfig",
    "IclEvaluator",
    "MetricCounts",
    "ModelKshotResult",
    "ObservationCheck",
    "PASS",
    "PersistentReachabilityCache",
    "PersistentVerdictCache",
    "PipelineConfig",
    "ResumeMismatchError",
    "RunStore",
    "SchedulerConfig",
    "SuiteConfig",
    "SuiteResults",
    "TableReport",
    "VerdictCache",
    "VerificationService",
    "default_workers",
    "accuracy_matrix_report",
    "all_observations",
    "campaign_config",
    "categorize",
    "config_hash",
    "corpus_summary",
    "evaluate_cots_models",
    "evaluate_finetuned_models",
    "figure3_design_sizes",
    "figure6_accuracy",
    "figure7_model_comparison",
    "figure9_finetuned",
    "ice_statistics",
    "run_reproduction",
    "table1_design_details",
]
