"""Experiment registry and one-call reproduction entry point.

``ExperimentSuite`` wires the corpus, knowledge base, ICE pool, and both
evaluation campaigns together behind a single object so that the examples,
the benchmark harness, and EXPERIMENTS.md regeneration all share one cached
set of expensive artefacts (mined assertions, FPV verdicts).

The experiment identifiers match DESIGN.md's per-experiment index
(E1 = Figure 3, E2 = Table I, E3-E6 = Figure 6, E7-E8 = Figure 7,
E9-E10 = Figure 9, E11 = Observations, E13 = ICE construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..bench.corpus import AssertionBenchCorpus
from ..bench.icl import IclExampleSet, build_icl_examples
from ..bench.knowledge import DesignKnowledgeBase
from ..llm.profiles import CODELLAMA_2, COTS_PROFILES, LLAMA3_70B
from .finetune_eval import FinetuneCampaignResult, FinetuneEvaluationConfig, FinetuneEvaluator
from .icl_eval import IclEvaluationConfig, IclEvaluator
from .metrics import EvaluationMatrix
from .observations import ObservationCheck, all_observations
from .reports import (
    FigureSeries,
    TableReport,
    accuracy_matrix_report,
    corpus_summary,
    figure3_design_sizes,
    figure6_accuracy,
    figure7_model_comparison,
    figure9_finetuned,
    ice_statistics,
    table1_design_details,
)


@dataclass
class SuiteConfig:
    """How much of the benchmark to run.

    The full paper-scale campaign uses all 100 test designs; the default here
    uses a representative subset so the whole suite regenerates in minutes on
    a laptop.  Set ``num_cots_designs=None`` for the full run.
    """

    num_cots_designs: Optional[int] = 16
    num_finetune_designs: Optional[int] = 24
    k_values: Sequence[int] = (1, 5)


@dataclass
class SuiteResults:
    """Everything the suite produced, keyed for report generation."""

    cots_matrix: Optional[EvaluationMatrix] = None
    finetune_campaign: Optional[FinetuneCampaignResult] = None
    figures: Dict[str, FigureSeries] = field(default_factory=dict)
    tables: Dict[str, TableReport] = field(default_factory=dict)
    observations: List[ObservationCheck] = field(default_factory=list)


class ExperimentSuite:
    """Run and cache every experiment of the reproduction."""

    def __init__(self, config: Optional[SuiteConfig] = None):
        self.config = config or SuiteConfig()
        self.corpus = AssertionBenchCorpus()
        self.knowledge = DesignKnowledgeBase()
        self._examples: Optional[IclExampleSet] = None
        self._cots_matrix: Optional[EvaluationMatrix] = None
        self._finetune_campaign: Optional[FinetuneCampaignResult] = None

    # -- shared artefacts -------------------------------------------------------------

    @property
    def examples(self) -> IclExampleSet:
        if self._examples is None:
            self._examples = build_icl_examples(self.corpus, self.knowledge)
        return self._examples

    # -- corpus experiments (E1, E2, E13) --------------------------------------------------

    def experiment_figure3(self) -> TableReport:
        """E1: design-size characterisation."""
        return figure3_design_sizes(self.corpus)

    def experiment_table1(self) -> TableReport:
        """E2: representative design details."""
        return table1_design_details(self.corpus)

    def experiment_corpus_summary(self) -> TableReport:
        return corpus_summary(self.corpus)

    def experiment_ice(self) -> TableReport:
        """E13: in-context example construction statistics."""
        return ice_statistics(self.examples)

    # -- COTS campaign (E3-E8) ----------------------------------------------------------------

    def cots_matrix(self) -> EvaluationMatrix:
        if self._cots_matrix is None:
            evaluator = IclEvaluator(
                corpus=self.corpus,
                knowledge=self.knowledge,
                examples=self.examples,
                config=IclEvaluationConfig(
                    k_values=tuple(self.config.k_values),
                    num_test_designs=self.config.num_cots_designs,
                ),
            )
            self._cots_matrix = evaluator.evaluate()
        return self._cots_matrix

    def experiment_figure6(self) -> Dict[str, FigureSeries]:
        """E3-E6: per-model accuracy at each k."""
        matrix = self.cots_matrix()
        return {
            profile.name: figure6_accuracy(matrix, profile.name)
            for profile in COTS_PROFILES
        }

    def experiment_figure7(self) -> Dict[int, FigureSeries]:
        """E7-E8: cross-model comparison per k."""
        matrix = self.cots_matrix()
        return {k: figure7_model_comparison(matrix, k) for k in self.config.k_values}

    # -- fine-tuned campaign (E9, E10) ------------------------------------------------------------

    def finetune_campaign(self) -> FinetuneCampaignResult:
        if self._finetune_campaign is None:
            evaluator = FinetuneEvaluator(
                corpus=self.corpus,
                knowledge=self.knowledge,
                examples=self.examples,
                config=FinetuneEvaluationConfig(
                    k_values=tuple(self.config.k_values),
                    num_designs=self.config.num_finetune_designs,
                ),
            )
            self._finetune_campaign = evaluator.evaluate([CODELLAMA_2, LLAMA3_70B])
        return self._finetune_campaign

    def experiment_figure9(self) -> Dict[str, FigureSeries]:
        """E9-E10: fine-tuned AssertionLLM accuracy."""
        return figure9_finetuned(self.finetune_campaign().matrix)

    # -- observations (E11) -------------------------------------------------------------------------

    def experiment_observations(self) -> List[ObservationCheck]:
        finetuned = self.finetune_campaign().matrix if self._finetune_campaign else None
        return all_observations(self.cots_matrix(), finetuned)

    # -- one-call reproduction -------------------------------------------------------------------------

    def run_all(self, include_finetune: bool = True) -> SuiteResults:
        """Run every experiment and collect reports."""
        results = SuiteResults()
        results.tables["figure3"] = self.experiment_figure3()
        results.tables["table1"] = self.experiment_table1()
        results.tables["corpus_summary"] = self.experiment_corpus_summary()
        results.tables["ice"] = self.experiment_ice()
        results.cots_matrix = self.cots_matrix()
        for name, figure in self.experiment_figure6().items():
            results.figures[f"figure6:{name}"] = figure
        for k, figure in self.experiment_figure7().items():
            results.figures[f"figure7:{k}-shot"] = figure
        results.tables["cots_accuracy"] = accuracy_matrix_report(
            results.cots_matrix, "COTS accuracy matrix (Figures 6 and 7)"
        )
        if include_finetune:
            campaign = self.finetune_campaign()
            results.finetune_campaign = campaign
            for name, figure in self.experiment_figure9().items():
                results.figures[f"figure9:{name}"] = figure
            results.tables["finetuned_accuracy"] = accuracy_matrix_report(
                campaign.matrix, "Fine-tuned AssertionLLM accuracy matrix (Figure 9)"
            )
            results.observations = all_observations(results.cots_matrix, campaign.matrix)
        else:
            results.observations = all_observations(results.cots_matrix, None)
        return results


def run_reproduction(
    num_cots_designs: Optional[int] = 16,
    num_finetune_designs: Optional[int] = 24,
    include_finetune: bool = True,
) -> SuiteResults:
    """Convenience wrapper used by the examples and the benchmark harness."""
    suite = ExperimentSuite(
        SuiteConfig(
            num_cots_designs=num_cots_designs,
            num_finetune_designs=num_finetune_designs,
        )
    )
    return suite.run_all(include_finetune=include_finetune)
