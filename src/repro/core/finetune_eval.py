"""Fine-tuned AssertionLLM evaluation campaign (paper Figures 8 and 9).

Differences from the COTS campaign (Figure 4): the syntax corrector is
removed, the generator is the fine-tuned model, and the evaluation uses the
held-out 25% split of AssertionBench rather than the full test set.

Evaluation rides on the shared :class:`~repro.core.runtime.CampaignRuntime`:
fine-tuning itself is deterministic (seeded split + seeded training), so on
resume the tuner re-runs cheaply while the expensive per-design evaluation
cells are served from the run store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bench.corpus import AssertionBenchCorpus
from ..bench.icl import IclExampleSet, build_icl_examples
from ..bench.knowledge import DesignKnowledgeBase
from ..hdl.design import Design
from ..llm.assertion_llm import AssertionLLM
from ..llm.finetune import FineTuner, FineTuningConfig, FineTuningReport
from ..llm.profiles import CODELLAMA_2, LLAMA3_70B, ModelProfile
from .metrics import EvaluationMatrix, ModelKshotResult
from .pipeline import EvaluationPipeline, PipelineConfig
from .runtime import CampaignRuntime
from .scheduler import VerificationService
from .store import RunStore


@dataclass
class FinetuneEvaluationConfig:
    """Configuration of the AssertionLLM evaluation campaign."""

    k_values: Sequence[int] = (1, 5)
    num_designs: Optional[int] = None
    finetune: FineTuningConfig = field(default_factory=FineTuningConfig)
    pipeline: PipelineConfig = field(
        default_factory=lambda: PipelineConfig(use_syntax_corrector=False)
    )


@dataclass
class FinetuneCampaignResult:
    """Results plus the fine-tuning reports that produced them."""

    matrix: EvaluationMatrix
    reports: Dict[str, FineTuningReport] = field(default_factory=dict)
    models: Dict[str, AssertionLLM] = field(default_factory=dict)


class FinetuneEvaluator:
    """Fine-tune foundation models and evaluate them on the held-out split."""

    def __init__(
        self,
        corpus: Optional[AssertionBenchCorpus] = None,
        knowledge: Optional[DesignKnowledgeBase] = None,
        examples: Optional[IclExampleSet] = None,
        config: Optional[FinetuneEvaluationConfig] = None,
        service: Optional[VerificationService] = None,
        store: Optional[RunStore] = None,
    ):
        self.corpus = corpus or AssertionBenchCorpus()
        self.knowledge = knowledge or DesignKnowledgeBase()
        self.config = config or FinetuneEvaluationConfig()
        self.examples = examples or build_icl_examples(self.corpus, self.knowledge)
        self.runtime = CampaignRuntime(
            config=self.config.pipeline, service=service, store=store
        )
        self.pipeline = EvaluationPipeline(runtime=self.runtime)
        self.tuner = FineTuner(self.knowledge, self.config.finetune)

    # -- dataset -----------------------------------------------------------------------

    def campaign_designs(self) -> List[Design]:
        """The designs used for the 75/25 split."""
        return self.corpus.test_designs(limit=self.config.num_designs)

    # -- evaluation ---------------------------------------------------------------------

    def evaluate_foundation(
        self, foundation: ModelProfile, designs: Optional[Sequence[Design]] = None
    ) -> Tuple[List[ModelKshotResult], AssertionLLM, FineTuningReport]:
        """Fine-tune one foundation model and evaluate it at every k."""
        designs = list(designs) if designs is not None else self.campaign_designs()
        model, report = self.tuner.finetune(foundation, designs)
        held_out = [d for d in designs if d.name in set(report.test_design_names)]
        matrix = self.runtime.run_campaign(
            [model], self.config.k_values, held_out, self.examples, use_corrector=False
        )
        results = [matrix.get(model.name, k) for k in self.config.k_values]
        return results, model, report

    def evaluate(
        self,
        foundations: Optional[Sequence[ModelProfile]] = None,
        designs: Optional[Sequence[Design]] = None,
    ) -> FinetuneCampaignResult:
        """Run the Figure 9 campaign for every foundation model."""
        foundations = list(foundations) if foundations is not None else [CODELLAMA_2, LLAMA3_70B]
        designs = list(designs) if designs is not None else self.campaign_designs()
        campaign = FinetuneCampaignResult(matrix=EvaluationMatrix())
        for foundation in foundations:
            results, model, report = self.evaluate_foundation(foundation, designs)
            for result in results:
                campaign.matrix.add(result)
            campaign.reports[foundation.name] = report
            campaign.models[foundation.name] = model
        return campaign


def evaluate_finetuned_models(
    num_designs: Optional[int] = 24,
    k_values: Sequence[int] = (1, 5),
    knowledge: Optional[DesignKnowledgeBase] = None,
) -> FinetuneCampaignResult:
    """Convenience wrapper: run the Figure 9 campaign on a design subset."""
    evaluator = FinetuneEvaluator(
        knowledge=knowledge,
        config=FinetuneEvaluationConfig(k_values=tuple(k_values), num_designs=num_designs),
    )
    return evaluator.evaluate()
