"""COTS in-context-learning evaluation campaign (paper Figures 4, 6, 7).

Runs every simulated COTS model at every k-shot setting over the test-design
set and aggregates the Pass/CEX/Error accuracy per (model, k).  Execution
goes through the :class:`~repro.core.runtime.CampaignRuntime`: generation
and verification overlap per design, and when a
:class:`~repro.core.store.RunStore` is supplied the campaign checkpoints
after every design and resumes past committed (design, model, k) cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..bench.corpus import AssertionBenchCorpus
from ..bench.icl import IclExampleSet, build_icl_examples
from ..bench.knowledge import DesignKnowledgeBase
from ..hdl.design import Design
from ..llm.cots import AssertionGenerator, SimulatedCotsLLM
from ..llm.profiles import COTS_PROFILES, ModelProfile
from .metrics import EvaluationMatrix, ModelKshotResult
from .pipeline import EvaluationPipeline, PipelineConfig
from .runtime import CampaignRuntime
from .scheduler import VerificationService
from .store import RunStore


@dataclass
class IclEvaluationConfig:
    """Configuration of the COTS evaluation campaign."""

    k_values: Sequence[int] = (1, 5)
    num_test_designs: Optional[int] = None
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)


class IclEvaluator:
    """Evaluate a set of generators on the benchmark (Figure 4 pipeline)."""

    def __init__(
        self,
        corpus: Optional[AssertionBenchCorpus] = None,
        knowledge: Optional[DesignKnowledgeBase] = None,
        examples: Optional[IclExampleSet] = None,
        config: Optional[IclEvaluationConfig] = None,
        service: Optional[VerificationService] = None,
        store: Optional[RunStore] = None,
    ):
        self.corpus = corpus or AssertionBenchCorpus()
        self.knowledge = knowledge or DesignKnowledgeBase()
        self.config = config or IclEvaluationConfig()
        self.examples = examples or build_icl_examples(self.corpus, self.knowledge)
        self.runtime = CampaignRuntime(
            config=self.config.pipeline, service=service, store=store
        )
        self.pipeline = EvaluationPipeline(runtime=self.runtime)

    # -- generators -----------------------------------------------------------------

    def default_generators(self) -> List[SimulatedCotsLLM]:
        """The four COTS models of the paper, sharing this evaluator's knowledge."""
        return [SimulatedCotsLLM(profile, self.knowledge) for profile in COTS_PROFILES]

    # -- evaluation ------------------------------------------------------------------

    def test_designs(self) -> List[Design]:
        return self.corpus.test_designs(limit=self.config.num_test_designs)

    def evaluate_model(
        self,
        generator: AssertionGenerator,
        k: int,
        designs: Optional[Sequence[Design]] = None,
        use_corrector: Optional[bool] = None,
    ) -> ModelKshotResult:
        """Evaluate one generator at one k-shot setting."""
        designs = list(designs) if designs is not None else self.test_designs()
        examples = self.examples.for_k(k)
        result = ModelKshotResult(model_name=generator.name, k=k)
        result.designs.extend(
            self.runtime.evaluate_stream(
                generator, designs, examples, k, use_corrector=use_corrector
            )
        )
        return result

    def evaluate(
        self,
        generators: Optional[Sequence[AssertionGenerator]] = None,
        designs: Optional[Sequence[Design]] = None,
    ) -> EvaluationMatrix:
        """Evaluate all generators at all configured k values (resumable)."""
        generators = list(generators) if generators is not None else self.default_generators()
        designs = list(designs) if designs is not None else self.test_designs()
        return self.runtime.run_campaign(
            generators, self.config.k_values, designs, self.examples
        )


def evaluate_cots_models(
    num_test_designs: Optional[int] = 20,
    k_values: Sequence[int] = (1, 5),
    profiles: Optional[Sequence[ModelProfile]] = None,
    knowledge: Optional[DesignKnowledgeBase] = None,
) -> EvaluationMatrix:
    """Convenience wrapper: run the Figure 6/7 campaign on a design subset."""
    evaluator = IclEvaluator(
        knowledge=knowledge,
        config=IclEvaluationConfig(k_values=tuple(k_values), num_test_designs=num_test_designs),
    )
    generators = None
    if profiles is not None:
        generators = [SimulatedCotsLLM(profile, evaluator.knowledge) for profile in profiles]
    return evaluator.evaluate(generators)
