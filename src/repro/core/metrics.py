"""Evaluation metrics (paper Section IV, "Metrics").

For every generated assertion the pipeline records which of the three
buckets it lands in after syntax correction and formal verification:

* ``Pass``  — the FPV engine attests the assertion (proven or vacuous),
* ``CEX``   — the FPV engine refutes it with a counterexample trace,
* ``Error`` — the assertion is syntactically/semantically un-elaboratable
  even after correction.

Metrics are reported as fractions of all generated assertions, aggregated
per model and per k-shot setting over the whole test-design set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..fpv.result import ProofResult

PASS = "pass"
CEX = "cex"
ERROR = "error"

_CATEGORIES = (PASS, CEX, ERROR)


def categorize(result: ProofResult) -> str:
    """Map a proof verdict onto the paper's three-bucket metric."""
    if result.status.is_error:
        return ERROR
    if result.status.is_fail:
        return CEX
    return PASS


@dataclass
class AssertionOutcome:
    """Everything recorded about one generated assertion."""

    design_name: str
    model_name: str
    k: int
    raw_text: str
    corrected_text: str
    category: str
    proof: Optional[ProofResult] = None
    correction_applied: bool = False

    @property
    def passed(self) -> bool:
        return self.category == PASS

    @property
    def failed(self) -> bool:
        return self.category == CEX

    @property
    def errored(self) -> bool:
        return self.category == ERROR


@dataclass
class MetricCounts:
    """Raw counts of the three buckets."""

    passed: int = 0
    cex: int = 0
    error: int = 0

    @property
    def total(self) -> int:
        return self.passed + self.cex + self.error

    def add(self, category: str, count: int = 1) -> None:
        if category == PASS:
            self.passed += count
        elif category == CEX:
            self.cex += count
        elif category == ERROR:
            self.error += count
        else:
            raise ValueError(f"unknown category {category!r}")

    def merge(self, other: "MetricCounts") -> None:
        self.passed += other.passed
        self.cex += other.cex
        self.error += other.error

    def fractions(self) -> Dict[str, float]:
        total = self.total
        if total == 0:
            return {PASS: 0.0, CEX: 0.0, ERROR: 0.0}
        return {
            PASS: self.passed / total,
            CEX: self.cex / total,
            ERROR: self.error / total,
        }


@dataclass
class DesignEvaluation:
    """Per-design accounting for one (model, k) configuration."""

    design_name: str
    outcomes: List[AssertionOutcome] = field(default_factory=list)

    @property
    def counts(self) -> MetricCounts:
        counts = MetricCounts()
        for outcome in self.outcomes:
            counts.add(outcome.category)
        return counts

    @property
    def num_generated(self) -> int:
        return len(self.outcomes)


@dataclass
class ModelKshotResult:
    """Aggregate result for one model at one k-shot setting (one Figure 6 bar group)."""

    model_name: str
    k: int
    designs: List[DesignEvaluation] = field(default_factory=list)

    @property
    def counts(self) -> MetricCounts:
        counts = MetricCounts()
        for design in self.designs:
            counts.merge(design.counts)
        return counts

    @property
    def accuracy(self) -> Dict[str, float]:
        """The Pass/CEX/Error fractions (the paper's "accuracy" bars)."""
        return self.counts.fractions()

    @property
    def pass_fraction(self) -> float:
        return self.accuracy[PASS]

    @property
    def cex_fraction(self) -> float:
        return self.accuracy[CEX]

    @property
    def error_fraction(self) -> float:
        return self.accuracy[ERROR]

    @property
    def num_assertions(self) -> int:
        return self.counts.total

    def outcomes(self) -> Iterable[AssertionOutcome]:
        for design in self.designs:
            yield from design.outcomes


@dataclass
class EvaluationMatrix:
    """All (model, k) results of one evaluation campaign."""

    results: Dict[str, Dict[int, ModelKshotResult]] = field(default_factory=dict)

    def add(self, result: ModelKshotResult) -> None:
        self.results.setdefault(result.model_name, {})[result.k] = result

    def get(self, model_name: str, k: int) -> ModelKshotResult:
        return self.results[model_name][k]

    @property
    def model_names(self) -> List[str]:
        return list(self.results)

    @property
    def k_values(self) -> List[int]:
        ks = set()
        for per_model in self.results.values():
            ks.update(per_model)
        return sorted(ks)

    def accuracy_table(self) -> Dict[str, Dict[int, Dict[str, float]]]:
        """Nested dict: model -> k -> {pass, cex, error} fractions."""
        return {
            model: {k: result.accuracy for k, result in per_model.items()}
            for model, per_model in self.results.items()
        }
