"""Quantitative checks for the paper's Observations 1-6.

Each function takes the evaluation matrices produced by the campaigns and
computes the quantity the corresponding observation talks about, so the
benchmark harness (and EXPERIMENTS.md) can put the reproduced value next to
the paper's claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..llm.profiles import CODELLAMA_2, FINETUNED_PROFILES, GPT_35, GPT_4O, LLAMA3_70B
from .metrics import EvaluationMatrix


@dataclass
class ObservationCheck:
    """One reproduced quantity next to the paper's reported claim."""

    observation: str
    description: str
    paper_value: str
    measured_value: str
    holds: bool

    def summary(self) -> str:
        status = "OK " if self.holds else "DIFF"
        return (
            f"[{status}] {self.observation}: {self.description} "
            f"(paper: {self.paper_value}, measured: {self.measured_value})"
        )


def _pass(matrix: EvaluationMatrix, model: str, k: int) -> float:
    return matrix.get(model, k).pass_fraction


def _improvement_ratio(matrix: EvaluationMatrix, model: str) -> float:
    one_shot = _pass(matrix, model, 1)
    five_shot = _pass(matrix, model, 5)
    if one_shot == 0:
        return float("inf") if five_shot > 0 else 1.0
    return five_shot / one_shot


def observation1_icl_scaling(matrix: EvaluationMatrix) -> List[ObservationCheck]:
    """Observation 1: more ICL examples help GPT-3.5/4o/CodeLLaMa, hurt LLaMa3."""
    checks = []
    expectations = {
        GPT_35.name: ("~2x more valid assertions at 5-shot", 2.0),
        GPT_4O.name: ("~1.2x more valid assertions at 5-shot", 1.2),
        CODELLAMA_2.name: ("~1.12x more valid assertions at 5-shot", 1.12),
    }
    for model, (claim, _target) in expectations.items():
        if model not in matrix.results:
            continue
        ratio = _improvement_ratio(matrix, model)
        checks.append(
            ObservationCheck(
                observation="Observation 1",
                description=f"{model} 1-shot to 5-shot Pass improvement",
                paper_value=claim,
                measured_value=f"{ratio:.2f}x",
                holds=ratio > 1.0,
            )
        )
    if LLAMA3_70B.name in matrix.results:
        one_shot = _pass(matrix, LLAMA3_70B.name, 1)
        five_shot = _pass(matrix, LLAMA3_70B.name, 5)
        checks.append(
            ObservationCheck(
                observation="Observation 1",
                description="LLaMa3-70B loses Pass accuracy at 5-shot",
                paper_value="31% -> 24%",
                measured_value=f"{one_shot:.1%} -> {five_shot:.1%}",
                holds=five_shot < one_shot,
            )
        )
    return checks


def observation3_gpt4o_consistency(matrix: EvaluationMatrix) -> List[ObservationCheck]:
    """Observation 3: GPT-4o generates the most valid assertions at both k."""
    checks = []
    for k in (1, 5):
        models = [m for m in matrix.model_names if k in matrix.results[m]]
        if GPT_4O.name not in models:
            continue
        best = max(models, key=lambda m: _pass(matrix, m, k))
        others = [m for m in models if m != GPT_4O.name]
        advantage = _pass(matrix, GPT_4O.name, k) - max(
            (_pass(matrix, m, k) for m in others), default=0.0
        )
        checks.append(
            ObservationCheck(
                observation="Observation 3",
                description=f"GPT-4o is the best model at {k}-shot",
                paper_value="GPT-4o superior (up to +15.6% valid)",
                measured_value=f"best={best}, advantage={advantage:+.1%}",
                holds=best == GPT_4O.name,
            )
        )
    return checks


def observation4_improvement_needed(matrix: EvaluationMatrix) -> List[ObservationCheck]:
    """Observation 4: no model exceeds ~44% Pass; large CEX/Error fractions remain."""
    best_pass = 0.0
    worst_cex = 0.0
    worst_error = 0.0
    for model in matrix.model_names:
        for k in matrix.results[model]:
            result = matrix.get(model, k)
            best_pass = max(best_pass, result.pass_fraction)
            worst_cex = max(worst_cex, result.cex_fraction)
            worst_error = max(worst_error, result.error_fraction)
    return [
        ObservationCheck(
            observation="Observation 4",
            description="best Pass fraction across COTS models",
            paper_value="<= ~44% on average",
            measured_value=f"{best_pass:.1%}",
            holds=best_pass <= 0.60,
        ),
        ObservationCheck(
            observation="Observation 4",
            description="worst-case CEX fraction",
            paper_value="up to 63%",
            measured_value=f"{worst_cex:.1%}",
            holds=worst_cex >= 0.30,
        ),
        ObservationCheck(
            observation="Observation 4",
            description="worst-case Error fraction",
            paper_value="up to ~33% on average",
            measured_value=f"{worst_error:.1%}",
            holds=worst_error >= 0.15,
        ),
    ]


def observation5_finetuning_gains(
    cots: EvaluationMatrix, finetuned: EvaluationMatrix
) -> List[ObservationCheck]:
    """Observation 5: fine-tuning shifts Pass up and CEX down (with the LLaMa3 caveat)."""
    checks = []
    pairs = {
        CODELLAMA_2.name: FINETUNED_PROFILES[CODELLAMA_2.name].name,
        LLAMA3_70B.name: FINETUNED_PROFILES[LLAMA3_70B.name].name,
    }
    for foundation, tuned in pairs.items():
        if foundation not in cots.results or tuned not in finetuned.results:
            continue
        for k in (1, 5):
            base = cots.get(foundation, k)
            after = finetuned.get(tuned, k)
            delta_pass = after.pass_fraction - base.pass_fraction
            delta_cex = after.cex_fraction - base.cex_fraction
            if foundation == CODELLAMA_2.name:
                paper = "+29/+38 points Pass, -48/-33 points CEX"
                holds = delta_pass > 0 and delta_cex < 0
            else:
                paper = "-4.7 points Pass at 1-shot, +24% Pass at 5-shot, CEX up"
                holds = (delta_pass < 0.05) if k == 1 else (delta_pass > 0)
            checks.append(
                ObservationCheck(
                    observation="Observation 5",
                    description=f"{foundation} fine-tuning effect at {k}-shot",
                    paper_value=paper,
                    measured_value=f"dPass={delta_pass:+.1%}, dCEX={delta_cex:+.1%}",
                    holds=holds,
                )
            )
    return checks


def observation6_residual_errors(finetuned: EvaluationMatrix) -> List[ObservationCheck]:
    """Observation 6: fine-tuned models still emit a sizeable Error fraction."""
    checks = []
    for model in finetuned.model_names:
        worst = max(
            finetuned.get(model, k).error_fraction for k in finetuned.results[model]
        )
        checks.append(
            ObservationCheck(
                observation="Observation 6",
                description=f"{model} residual syntactic-error fraction",
                paper_value="up to ~38% erroneous assertions remain",
                measured_value=f"{worst:.1%}",
                holds=worst > 0.02,
            )
        )
    return checks


def all_observations(
    cots: EvaluationMatrix, finetuned: Optional[EvaluationMatrix] = None
) -> List[ObservationCheck]:
    """Run every observation check that the available data supports."""
    checks: List[ObservationCheck] = []
    checks.extend(observation1_icl_scaling(cots))
    checks.extend(observation3_gpt4o_consistency(cots))
    checks.extend(observation4_improvement_needed(cots))
    if finetuned is not None:
        checks.extend(observation5_finetuning_gains(cots, finetuned))
        checks.extend(observation6_residual_errors(finetuned))
    return checks
