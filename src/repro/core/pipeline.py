"""The shared generate → correct → verify pipeline (Figure 4 / Figure 8).

Both evaluation campaigns (COTS ICL and fine-tuned AssertionLLM) run the same
per-design loop:

1. build the k-shot prompt for the test design,
2. ask the generator for assertion text,
3. optionally pass each line through the syntax corrector (the COTS flow
   uses it, the fine-tuned flow removes it — compare Figures 4 and 8),
4. discharge the surviving assertions on the verification backend,
5. record the Pass/CEX/Error bucket.

Verification goes through the :class:`~repro.core.scheduler.VerificationService`:
each design's assertions are discharged as one batched FPV call, design-level
batches can fan out across worker processes, and FPV verdicts are cached per
(design, normalised assertion text) so identical assertions emitted by
different models or k-settings are only proved once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..fpv.engine import EngineConfig
from ..fpv.result import ProofResult, error_result
from ..hdl.design import Design
from ..llm.cots import AssertionGenerator
from ..llm.decoding import DecodingConfig
from ..llm.prompt import InContextExample, PromptBuilder
from ..sva.corrector import SyntaxCorrector
from ..sva.errors import SvaError
from ..sva.model import Assertion
from ..sva.parser import parse_assertion, split_assertion_lines
from .metrics import AssertionOutcome, DesignEvaluation, categorize
from .scheduler import (
    SchedulerConfig,
    VerdictCache,
    VerificationService,
    default_workers,
)

__all__ = [
    "EvaluationPipeline",
    "PipelineConfig",
    "VerdictCache",
]


@dataclass
class PipelineConfig:
    """Knobs of the evaluation pipeline."""

    use_syntax_corrector: bool = True
    resolve_signal_names: bool = True
    decoding: DecodingConfig = field(default_factory=DecodingConfig)
    engine: EngineConfig = field(
        default_factory=lambda: EngineConfig(
            max_states=2048,
            max_transitions=120_000,
            max_input_bits=10,
            max_state_bits=14,
            max_path_evaluations=120_000,
            fallback_cycles=256,
            fallback_seeds=2,
        )
    )
    #: FPV worker processes (1 = in-process; defaults to REPRO_FPV_WORKERS,
    #: matching SchedulerConfig.workers and SuiteConfig.fpv_workers).
    workers: int = field(default_factory=default_workers)


@dataclass
class _PreparedLine:
    """One generated line after correction/parsing, awaiting its verdict."""

    raw: str
    corrected: str
    correction_applied: bool
    assertion: Optional[Assertion]


class EvaluationPipeline:
    """Run one generator over test designs and classify its output."""

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        service: Optional[VerificationService] = None,
    ):
        self._config = config or PipelineConfig()
        self._prompt_builder = PromptBuilder()
        self._owns_service = service is None
        self._service = service or VerificationService(
            SchedulerConfig(engine=self._config.engine, workers=self._config.workers)
        )

    def close(self) -> None:
        """Shut down the verification service if this pipeline created it."""
        if self._owns_service:
            self._service.close()

    def __enter__(self) -> "EvaluationPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def config(self) -> PipelineConfig:
        return self._config

    @property
    def service(self) -> VerificationService:
        return self._service

    @property
    def cache(self) -> VerdictCache:
        return self._service.cache

    # -- main entry points -----------------------------------------------------------

    def evaluate_design(
        self,
        generator: AssertionGenerator,
        design: Design,
        examples: Sequence[InContextExample],
        k: int,
        use_corrector: Optional[bool] = None,
    ) -> DesignEvaluation:
        """Generate assertions for ``design`` and bucket every one of them."""
        return self.evaluate_designs(generator, [design], examples, k, use_corrector)[0]

    def evaluate_designs(
        self,
        generator: AssertionGenerator,
        designs: Sequence[Design],
        examples: Sequence[InContextExample],
        k: int,
        use_corrector: Optional[bool] = None,
    ) -> List[DesignEvaluation]:
        """Evaluate one generator over many designs.

        Generation and correction run per design; verification is handed to
        the scheduler as one design-level batch per design, so with multiple
        workers the FPV load fans out across processes.
        """
        prepared: List[Tuple[Design, List[_PreparedLine]]] = [
            (design, self._prepare_lines(generator, design, examples, use_corrector))
            for design in designs
        ]
        jobs = [
            (design, [line.assertion for line in lines if line.assertion is not None])
            for design, lines in prepared
        ]
        verdicts = self._service.check_many(jobs)

        evaluations: List[DesignEvaluation] = []
        for (design, lines), design_verdicts in zip(prepared, verdicts):
            evaluation = DesignEvaluation(design_name=design.name)
            queue = iter(design_verdicts)
            for line in lines:
                if line.assertion is None:
                    proof = error_result(
                        "assertion could not be parsed"
                        + (" after correction" if self._corrector_enabled(use_corrector) else ""),
                        design.name,
                    )
                else:
                    proof = next(queue)
                evaluation.outcomes.append(
                    self._outcome(line, design, generator.name, k, proof)
                )
            evaluations.append(evaluation)
        return evaluations

    # -- generation / correction ----------------------------------------------------

    def _corrector_enabled(self, use_corrector: Optional[bool]) -> bool:
        return (
            self._config.use_syntax_corrector if use_corrector is None else use_corrector
        )

    def _prepare_lines(
        self,
        generator: AssertionGenerator,
        design: Design,
        examples: Sequence[InContextExample],
        use_corrector: Optional[bool],
    ) -> List[_PreparedLine]:
        prompt = self._prompt_builder.build(list(examples), design)
        generation = generator.generate(prompt, self._config.decoding)
        lines = split_assertion_lines(generation.text)

        corrector = (
            SyntaxCorrector(design=design, resolve_signals=self._config.resolve_signal_names)
            if self._corrector_enabled(use_corrector)
            else None
        )

        prepared: List[_PreparedLine] = []
        for raw in lines:
            if corrector is not None:
                correction = corrector.correct(raw)
                prepared.append(
                    _PreparedLine(
                        raw=raw,
                        corrected=correction.corrected,
                        correction_applied=bool(correction.applied_rules),
                        assertion=correction.assertion,
                    )
                )
            else:
                try:
                    assertion = parse_assertion(raw)
                except SvaError:
                    assertion = None
                prepared.append(
                    _PreparedLine(
                        raw=raw,
                        corrected=raw,
                        correction_applied=False,
                        assertion=assertion,
                    )
                )
        return prepared

    def _outcome(
        self,
        line: _PreparedLine,
        design: Design,
        model_name: str,
        k: int,
        proof: ProofResult,
    ) -> AssertionOutcome:
        return AssertionOutcome(
            design_name=design.name,
            model_name=model_name,
            k=k,
            raw_text=line.raw,
            corrected_text=line.corrected,
            category=categorize(proof),
            proof=proof,
            correction_applied=line.correction_applied,
        )
