"""Compatibility facade over the campaign runtime (Figure 4 / Figure 8 loop).

The generate → correct → verify loop itself lives in
:class:`~repro.core.runtime.CampaignRuntime`, which streams the two stages
(generation for design *N+1* overlaps verification of design *N*) and
optionally checkpoints every completed cell into a
:class:`~repro.core.store.RunStore`.  :class:`EvaluationPipeline` keeps the
historical single-shot API — ``evaluate_design`` / ``evaluate_designs`` —
for the examples, benchmarks, and tests that drive one generator over a
handful of designs without campaign bookkeeping; it is a thin wrapper that
delegates straight to the runtime's streaming path (the old synchronous
implementation is gone).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..hdl.design import Design
from ..llm.cots import AssertionGenerator
from ..llm.prompt import InContextExample
from .metrics import DesignEvaluation
from .runtime import CampaignRuntime, PipelineConfig
from .scheduler import VerdictCache, VerificationService

__all__ = [
    "EvaluationPipeline",
    "PipelineConfig",
    "VerdictCache",
]


class EvaluationPipeline:
    """Run one generator over test designs and classify its output."""

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        service: Optional[VerificationService] = None,
        runtime: Optional[CampaignRuntime] = None,
    ):
        if runtime is None:
            runtime = CampaignRuntime(config=config, service=service)
            self._owns_runtime = True
        else:
            self._owns_runtime = False
        self._runtime = runtime

    def close(self) -> None:
        """Shut down the runtime's verification service if we created it."""
        if self._owns_runtime:
            self._runtime.close()

    def __enter__(self) -> "EvaluationPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def runtime(self) -> CampaignRuntime:
        return self._runtime

    @property
    def config(self) -> PipelineConfig:
        return self._runtime.config

    @property
    def service(self) -> VerificationService:
        return self._runtime.service

    @property
    def cache(self) -> VerdictCache:
        return self._runtime.cache

    # -- main entry points -----------------------------------------------------------

    def evaluate_design(
        self,
        generator: AssertionGenerator,
        design: Design,
        examples: Sequence[InContextExample],
        k: int,
        use_corrector: Optional[bool] = None,
    ) -> DesignEvaluation:
        """Generate assertions for ``design`` and bucket every one of them."""
        return self.evaluate_designs(generator, [design], examples, k, use_corrector)[0]

    def evaluate_designs(
        self,
        generator: AssertionGenerator,
        designs: Sequence[Design],
        examples: Sequence[InContextExample],
        k: int,
        use_corrector: Optional[bool] = None,
    ) -> List[DesignEvaluation]:
        """Evaluate one generator over many designs via the streaming runtime."""
        return self._runtime.evaluate_stream(
            generator, designs, examples, k, use_corrector
        )
