"""The shared generate → correct → verify pipeline (Figure 4 / Figure 8).

Both evaluation campaigns (COTS ICL and fine-tuned AssertionLLM) run the same
per-design loop:

1. build the k-shot prompt for the test design,
2. ask the generator for assertion text,
3. optionally pass each line through the syntax corrector (the COTS flow
   uses it, the fine-tuned flow removes it — compare Figures 4 and 8),
4. discharge each surviving assertion on the FPV engine,
5. record the Pass/CEX/Error bucket.

FPV verdicts are cached per (design, normalised assertion text) so identical
assertions emitted by different models or k-settings are only proved once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..fpv.engine import EngineConfig, FormalEngine
from ..fpv.result import ProofResult, ProofStatus, error_result
from ..hdl.design import Design
from ..llm.cots import AssertionGenerator
from ..llm.decoding import DecodingConfig
from ..llm.prompt import InContextExample, PromptBuilder
from ..sva.corrector import SyntaxCorrector
from ..sva.errors import SvaError
from ..sva.parser import parse_assertion, split_assertion_lines
from .metrics import AssertionOutcome, DesignEvaluation, categorize


@dataclass
class PipelineConfig:
    """Knobs of the evaluation pipeline."""

    use_syntax_corrector: bool = True
    resolve_signal_names: bool = True
    decoding: DecodingConfig = field(default_factory=DecodingConfig)
    engine: EngineConfig = field(
        default_factory=lambda: EngineConfig(
            max_states=2048,
            max_transitions=120_000,
            max_input_bits=10,
            max_state_bits=14,
            max_path_evaluations=120_000,
            fallback_cycles=256,
            fallback_seeds=2,
        )
    )


class VerdictCache:
    """Cache of FPV verdicts keyed by (design name, assertion text)."""

    def __init__(self):
        self._verdicts: Dict[tuple, ProofResult] = {}
        self.hits = 0
        self.misses = 0

    def get(self, design_name: str, text: str) -> Optional[ProofResult]:
        key = (design_name, " ".join(text.split()))
        result = self._verdicts.get(key)
        if result is not None:
            self.hits += 1
        return result

    def put(self, design_name: str, text: str, result: ProofResult) -> None:
        key = (design_name, " ".join(text.split()))
        self.misses += 1
        self._verdicts[key] = result

    def __len__(self) -> int:
        return len(self._verdicts)


class EvaluationPipeline:
    """Run one generator over one test design and classify its output."""

    def __init__(self, config: Optional[PipelineConfig] = None):
        self._config = config or PipelineConfig()
        self._prompt_builder = PromptBuilder()
        self._engines: Dict[str, FormalEngine] = {}
        self._cache = VerdictCache()

    @property
    def config(self) -> PipelineConfig:
        return self._config

    @property
    def cache(self) -> VerdictCache:
        return self._cache

    # -- engine/corrector management ---------------------------------------------------

    def _engine_for(self, design: Design) -> FormalEngine:
        if design.name not in self._engines:
            self._engines[design.name] = FormalEngine(design, self._config.engine)
        return self._engines[design.name]

    # -- main entry point -----------------------------------------------------------------

    def evaluate_design(
        self,
        generator: AssertionGenerator,
        design: Design,
        examples: Sequence[InContextExample],
        k: int,
        use_corrector: Optional[bool] = None,
    ) -> DesignEvaluation:
        """Generate assertions for ``design`` and bucket every one of them."""
        prompt = self._prompt_builder.build(list(examples), design)
        generation = generator.generate(prompt, self._config.decoding)
        lines = split_assertion_lines(generation.text)

        corrector_enabled = (
            self._config.use_syntax_corrector if use_corrector is None else use_corrector
        )
        corrector = (
            SyntaxCorrector(design=design, resolve_signals=self._config.resolve_signal_names)
            if corrector_enabled
            else None
        )

        evaluation = DesignEvaluation(design_name=design.name)
        for raw in lines:
            outcome = self._classify_line(
                raw, design, generator.name, k, corrector
            )
            evaluation.outcomes.append(outcome)
        return evaluation

    # -- per-assertion classification ----------------------------------------------------------

    def _classify_line(
        self,
        raw: str,
        design: Design,
        model_name: str,
        k: int,
        corrector: Optional[SyntaxCorrector],
    ) -> AssertionOutcome:
        corrected_text = raw
        correction_applied = False
        assertion = None

        if corrector is not None:
            correction = corrector.correct(raw)
            corrected_text = correction.corrected
            correction_applied = bool(correction.applied_rules)
            assertion = correction.assertion
        else:
            try:
                assertion = parse_assertion(raw)
            except SvaError:
                assertion = None

        if assertion is None:
            proof = error_result(
                "assertion could not be parsed" + (" after correction" if corrector else ""),
                design.name,
            )
            return AssertionOutcome(
                design_name=design.name,
                model_name=model_name,
                k=k,
                raw_text=raw,
                corrected_text=corrected_text,
                category=categorize(proof),
                proof=proof,
                correction_applied=correction_applied,
            )

        proof = self._check_cached(design, assertion.to_sva(include_assert=False), assertion)
        return AssertionOutcome(
            design_name=design.name,
            model_name=model_name,
            k=k,
            raw_text=raw,
            corrected_text=corrected_text,
            category=categorize(proof),
            proof=proof,
            correction_applied=correction_applied,
        )

    def _check_cached(self, design: Design, text: str, assertion) -> ProofResult:
        cached = self._cache.get(design.name, text)
        if cached is not None:
            return cached
        result = self._engine_for(design).check(assertion)
        self._cache.put(design.name, text, result)
        return result
