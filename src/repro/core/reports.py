"""Renderers for every table and figure of the paper's evaluation.

Each function returns both the structured data (for tests and EXPERIMENTS.md)
and a plain-text rendering (what the benchmark harness prints), covering:

* Figure 3  — test-set design sizes (LoC),
* Table I   — representative design details,
* Figure 6  — per-model accuracy at 1-shot vs 5-shot,
* Figure 7  — cross-model comparison per k,
* Figure 9  — fine-tuned model accuracy,
* the ICE statistics quoted in Section III/IV (2-10 assertions, avg 4.8),
* the mutation-analysis tables (kill rate per assertion, score distribution
  per corpus category, and the ranked weak-assertion list).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..bench.corpus import AssertionBenchCorpus
from ..bench.icl import IclExampleSet
from .metrics import CEX, ERROR, PASS, EvaluationMatrix


@dataclass
class FigureSeries:
    """One rendered figure: named series of (label, value) points."""

    title: str
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    text: str = ""

    def values(self, series_name: str) -> Dict[str, float]:
        return self.series[series_name]


@dataclass
class TableReport:
    """One rendered table: column headers plus rows."""

    title: str
    headers: List[str] = field(default_factory=list)
    rows: List[List[str]] = field(default_factory=list)
    text: str = ""


def _format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    lines = [title]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 3 and Table I — corpus characterisation
# ---------------------------------------------------------------------------


def figure3_design_sizes(corpus: AssertionBenchCorpus) -> TableReport:
    """Lines of code per test design (Figure 3)."""
    loc = corpus.loc_by_design("test")
    ordered = sorted(loc.items(), key=lambda item: -item[1])
    rows = [[name, str(count)] for name, count in ordered]
    table = TableReport(
        title="Figure 3: test-set design sizes (LoC, excluding comments and blanks)",
        headers=["design", "loc"],
        rows=rows,
    )
    table.text = _format_table(table.title, table.headers, rows)
    return table


def table1_design_details(corpus: AssertionBenchCorpus, count: int = 5) -> TableReport:
    """Representative design details (Table I)."""
    rows = []
    for design in corpus.representative_designs(count):
        rows.append(
            [
                design.name,
                str(design.loc),
                design.design_type.capitalize(),
                design.functionality,
            ]
        )
    table = TableReport(
        title="Table I: representative designs in the AssertionBench test set",
        headers=["Verilog Design", "# of Lines", "Design Type", "Design Functionality"],
        rows=rows,
    )
    table.text = _format_table(table.title, table.headers, rows)
    return table


# ---------------------------------------------------------------------------
# Figures 6, 7, 9 — accuracy figures
# ---------------------------------------------------------------------------


def figure6_accuracy(matrix: EvaluationMatrix, model_name: str) -> FigureSeries:
    """Pass/CEX/Error per k for one model (one sub-figure of Figure 6 or 9)."""
    figure = FigureSeries(title=f"Accuracy of generated assertions for {model_name}")
    rows = []
    for k in sorted(matrix.results.get(model_name, {})):
        accuracy = matrix.get(model_name, k).accuracy
        figure.series[f"{k}-shot"] = {
            "Pass": accuracy[PASS],
            "CEX": accuracy[CEX],
            "Error": accuracy[ERROR],
        }
        rows.append(
            [
                f"{k}-shot",
                f"{accuracy[PASS]:.3f}",
                f"{accuracy[CEX]:.3f}",
                f"{accuracy[ERROR]:.3f}",
            ]
        )
    figure.text = _format_table(
        figure.title, ["k", "Pass", "CEX", "Error"], rows
    )
    return figure


def figure7_model_comparison(matrix: EvaluationMatrix, k: int) -> FigureSeries:
    """Cross-model comparison at one k (Figure 7a for k=1, 7b for k=5)."""
    figure = FigureSeries(
        title=f"Comparison of generated-assertion accuracy across models ({k}-shot)"
    )
    rows = []
    for model_name in matrix.model_names:
        if k not in matrix.results[model_name]:
            continue
        accuracy = matrix.get(model_name, k).accuracy
        figure.series[model_name] = {
            "Pass": accuracy[PASS],
            "CEX": accuracy[CEX],
            "Error": accuracy[ERROR],
        }
        rows.append(
            [
                model_name,
                f"{accuracy[PASS]:.3f}",
                f"{accuracy[CEX]:.3f}",
                f"{accuracy[ERROR]:.3f}",
            ]
        )
    figure.text = _format_table(figure.title, ["model", "Pass", "CEX", "Error"], rows)
    return figure


def figure9_finetuned(matrix: EvaluationMatrix) -> Dict[str, FigureSeries]:
    """Per-model accuracy of the fine-tuned AssertionLLM variants (Figure 9)."""
    return {
        model_name: figure6_accuracy(matrix, model_name)
        for model_name in matrix.model_names
    }


# ---------------------------------------------------------------------------
# Section III/IV statistics
# ---------------------------------------------------------------------------


def ice_statistics(examples: IclExampleSet) -> TableReport:
    """ICE construction statistics (2-10 assertions per design, avg ~4.8)."""
    rows = []
    for example in examples.examples:
        rows.append(
            [
                example.design.name,
                str(example.design.loc),
                example.design.design_type,
                str(len(example.assertions)),
            ]
        )
    rows.append(["average", "", "", f"{examples.average_assertions:.2f}"])
    table = TableReport(
        title="In-context example construction (training designs and verified assertions)",
        headers=["design", "loc", "type", "# assertions"],
        rows=rows,
    )
    table.text = _format_table(table.title, table.headers, rows)
    return table


def corpus_summary(corpus: AssertionBenchCorpus) -> TableReport:
    """Overall corpus statistics used throughout Section III."""
    loc = corpus.loc_by_design("test")
    counts = corpus.split_counts()
    rows = [
        ["test designs", str(len(loc))],
        ["training designs", str(len(corpus.names("train")))],
        ["combinational", str(counts["combinational"])],
        ["sequential", str(counts["sequential"])],
        ["min LoC", str(min(loc.values()))],
        ["max LoC", str(max(loc.values()))],
        ["mean LoC", f"{sum(loc.values()) / len(loc):.1f}"],
    ]
    table = TableReport(
        title="AssertionBench corpus summary", headers=["metric", "value"], rows=rows
    )
    table.text = _format_table(table.title, table.headers, rows)
    return table


# ---------------------------------------------------------------------------
# Mutation analysis — assertion quality by kill rate
# ---------------------------------------------------------------------------


def _rate(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:.3f}"


def mutation_kill_report(summary, title: str = "Mutation kill rate per assertion") -> TableReport:
    """Per-assertion mutation outcomes (``summary`` is a MutationSummary)."""
    rows = []
    for score in summary.scores():
        rows.append(
            [
                score.design_name,
                _clip(score.assertion, 48),
                str(score.killed),
                str(score.survived),
                str(score.timeout),
                str(score.error),
                _rate(score.kill_rate),
            ]
        )
    table = TableReport(
        title=title,
        headers=["design", "assertion", "killed", "survived", "timeout", "error", "kill rate"],
        rows=rows,
    )
    table.text = _format_table(table.title, table.headers, rows)
    return table


def mutation_category_report(
    summary, title: str = "Mutation score distribution per corpus category"
) -> TableReport:
    """Kill-rate distribution per design category."""
    rows = []
    for category, entry in summary.category_distribution().items():
        rows.append(
            [
                category,
                str(int(entry["assertions"])),
                str(int(entry["undecided"])),
                _rate(entry.get("mean")),
                _rate(entry.get("min")),
                _rate(entry.get("median")),
                _rate(entry.get("max")),
            ]
        )
    table = TableReport(
        title=title,
        headers=["category", "# assertions", "undecided", "mean", "min", "median", "max"],
        rows=rows,
    )
    table.text = _format_table(table.title, table.headers, rows)
    return table


def mutation_generation_report(
    summary, title: str = "Mutant generation per design"
) -> TableReport:
    """Where the mutant budget went: sites found vs dropped vs scored."""
    rows = []
    for design_name, stats in sorted(summary.design_stats.items()):
        if not stats:
            continue
        rows.append(
            [
                design_name,
                str(stats.get("sites", 0)),
                str(stats.get("viable", 0)),
                str(stats.get("stillborn", 0)),
                str(stats.get("equivalent", 0)),
                str(stats.get("truncated", 0)),
            ]
        )
    table = TableReport(
        title=title,
        headers=["design", "sites", "viable", "stillborn", "equivalent", "truncated"],
        rows=rows,
    )
    table.text = _format_table(table.title, table.headers, rows)
    return table


def weak_assertion_report(
    summary,
    limit: int = 10,
    min_mutants: int = 3,
    title: str = "Weakest assertions by kill rate",
) -> TableReport:
    """Ranked list of the assertions that let the most mutants escape."""
    rows = []
    for rank, score in enumerate(summary.weak_assertions(limit, min_mutants), start=1):
        rows.append(
            [
                str(rank),
                score.design_name,
                _clip(score.assertion, 48),
                f"{score.killed}/{score.decided}",
                _rate(score.kill_rate),
            ]
        )
    table = TableReport(
        title=title,
        headers=["rank", "design", "assertion", "killed/decided", "kill rate"],
        rows=rows,
    )
    table.text = _format_table(table.title, table.headers, rows)
    return table


def _clip(text: str, width: int) -> str:
    return text if len(text) <= width else text[: width - 1] + "…"


def accuracy_matrix_report(matrix: EvaluationMatrix, title: str) -> TableReport:
    """Flat table of every (model, k) accuracy triple."""
    rows = []
    for model_name in matrix.model_names:
        for k in sorted(matrix.results[model_name]):
            result = matrix.get(model_name, k)
            accuracy = result.accuracy
            rows.append(
                [
                    model_name,
                    str(k),
                    str(result.num_assertions),
                    f"{accuracy[PASS]:.3f}",
                    f"{accuracy[CEX]:.3f}",
                    f"{accuracy[ERROR]:.3f}",
                ]
            )
    table = TableReport(
        title=title,
        headers=["model", "k", "# assertions", "Pass", "CEX", "Error"],
        rows=rows,
    )
    table.text = _format_table(table.title, table.headers, rows)
    return table
