"""The durable campaign runtime: streaming generate → verify over a run store.

:class:`CampaignRuntime` is the single execution engine behind every
evaluation campaign (COTS ICL, fine-tuned AssertionLLM, the experiment
suite, and the ``python -m repro`` CLI).  It executes the paper's
generate → correct → verify loop (Figures 4/8) as *overlapping stages*:

* **Stage 1 (caller thread)** — build the k-shot prompt, run the generator,
  and pass each emitted line through the syntax corrector.
* **Stage 2 (verifier thread)** — discharge the design's surviving
  assertions as one batched call on the
  :class:`~repro.core.scheduler.VerificationService` (which itself fans
  design batches across FPV worker processes).

While design *N*'s batch is in flight on the verifier, generation for design
*N+1* proceeds — the LLM and the FPV engine are never idle waiting on each
other, and results are still assembled in deterministic design order.

When the runtime is given a :class:`~repro.core.store.RunStore` it becomes
*durable*: every completed cell — one (model, k, design) evaluation — is
committed to the store's outcome shards before the next design finishes, FPV
verdicts persist in the store's content-addressed verdict cache, and a rerun
over the same store **resumes**: committed cells are loaded instead of
re-evaluated, and re-generated assertions of uncommitted cells replay their
verdicts from the persistent cache instead of re-proving them.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..fpv.engine import EngineConfig
from ..fpv.result import ProofResult, error_result
from ..hdl.design import Design
from ..llm.cots import AssertionGenerator
from ..llm.decoding import DecodingConfig
from ..llm.prompt import InContextExample, PromptBuilder
from ..sva.corrector import SyntaxCorrector
from ..sva.errors import SvaError
from ..sva.model import Assertion
from ..sva.parser import parse_assertion, split_assertion_lines
from .metrics import (
    AssertionOutcome,
    DesignEvaluation,
    EvaluationMatrix,
    ModelKshotResult,
    categorize,
)
from .scheduler import (
    SchedulerConfig,
    VerificationService,
    default_workers,
)
from .store import RunStore

__all__ = [
    "CampaignRuntime",
    "PipelineConfig",
    "campaign_config",
]


@dataclass
class PipelineConfig:
    """Knobs of the generate → correct → verify loop."""

    use_syntax_corrector: bool = True
    resolve_signal_names: bool = True
    decoding: DecodingConfig = field(default_factory=DecodingConfig)
    engine: EngineConfig = field(
        default_factory=lambda: EngineConfig(
            max_states=2048,
            max_transitions=120_000,
            max_input_bits=10,
            max_state_bits=14,
            max_path_evaluations=120_000,
            fallback_cycles=256,
            fallback_seeds=2,
        )
    )
    #: FPV worker processes (1 = in-process; defaults to REPRO_FPV_WORKERS,
    #: matching SchedulerConfig.workers and SuiteConfig.fpv_workers).
    workers: int = field(default_factory=default_workers)


@dataclass
class _PreparedLine:
    """One generated line after correction/parsing, awaiting its verdict."""

    raw: str
    corrected: str
    correction_applied: bool
    assertion: Optional[Assertion]


def campaign_config(
    generators: Sequence[AssertionGenerator],
    k_values: Sequence[int],
    designs: Sequence[Design],
    config: PipelineConfig,
    use_corrector: Optional[bool] = None,
    extra: Optional[Dict] = None,
) -> Dict:
    """The manifest payload identifying a campaign for exact-resume checks.

    Everything that changes campaign *results* is included — models, k
    values, design sources, engine budgets, decoding, corrector — while
    throughput-only knobs (worker counts) are deliberately left out so a
    resume on different hardware still matches.  The evaluation backend is
    excluded for the same reason: backends are bit-identical by contract
    (enforced by the backend-equivalence suite), so e.g. ``repro mutate
    --backend vectorized`` may resume a campaign that ran compiled.
    """
    from ..bench.corpus import source_fingerprint

    engine = dataclasses.asdict(config.engine)
    engine.pop("backend", None)
    payload: Dict = {
        "models": [generator.name for generator in generators],
        "k_values": list(k_values),
        "designs": [
            {"name": design.name, "source": source_fingerprint(design.source)}
            for design in designs
        ],
        "engine": engine,
        "decoding": dataclasses.asdict(config.decoding),
        "use_syntax_corrector": (
            config.use_syntax_corrector if use_corrector is None else use_corrector
        ),
        "resolve_signal_names": config.resolve_signal_names,
    }
    if extra:
        payload.update(extra)
    return payload


class CampaignRuntime:
    """Execute evaluation campaigns as a streaming, durable dataflow."""

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        service: Optional[VerificationService] = None,
        store: Optional[RunStore] = None,
        max_inflight: Optional[int] = None,
    ):
        self._config = config or PipelineConfig()
        self._store = store
        self._prompt_builder = PromptBuilder()
        self._max_inflight = max_inflight
        self._owns_service = service is None
        if service is None:
            cache = store.verdict_cache() if store is not None else None
            reachability = store.reachability_cache() if store is not None else None
            service = VerificationService(
                SchedulerConfig(
                    engine=self._config.engine, workers=self._config.workers
                ),
                cache=cache,
                reachability_cache=reachability,
            )
        elif store is not None:
            if service.cache is not store.verdict_cache():
                # Silently accepting this pair would break the durability
                # contract: verdicts would never reach the store's persistent
                # cache, so an interrupted cell would re-prove everything.
                raise ValueError(
                    "explicit service must be fronted by the store's verdict "
                    "cache: construct it with "
                    "VerificationService(..., cache=store.verdict_cache())"
                )
            if service.reachability_cache is not store.reachability_cache():
                # Reachability is a semantics-neutral cache, so a mismatch is
                # repaired rather than rejected: adopt the store's persistent
                # one so warm reruns still skip the BFS.
                service.use_reachability_cache(store.reachability_cache())
        self._service = service

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut down the verification service if this runtime created it."""
        if self._owns_service:
            self._service.close()

    def __enter__(self) -> "CampaignRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- accessors ---------------------------------------------------------------

    @property
    def config(self) -> PipelineConfig:
        return self._config

    @property
    def service(self) -> VerificationService:
        return self._service

    @property
    def cache(self):
        return self._service.cache

    @property
    def store(self) -> Optional[RunStore]:
        return self._store

    # -- campaign entry points ----------------------------------------------------

    def run_campaign(
        self,
        generators: Sequence[AssertionGenerator],
        k_values: Sequence[int],
        designs: Sequence[Design],
        examples,
        use_corrector: Optional[bool] = None,
    ) -> EvaluationMatrix:
        """Evaluate every (model, k) sweep; resume skips committed cells.

        ``examples`` is an :class:`~repro.bench.icl.IclExampleSet` (anything
        with ``for_k``).  Manifest bookkeeping is the campaign driver's job
        (CLI / suite) — this method only streams cells and checkpoints them.
        """
        designs = list(designs)
        matrix = EvaluationMatrix()
        for generator in generators:
            for k in k_values:
                result = ModelKshotResult(model_name=generator.name, k=k)
                result.designs.extend(
                    self.evaluate_stream(
                        generator, designs, examples.for_k(k), k, use_corrector
                    )
                )
                matrix.add(result)
        return matrix

    def evaluate_stream(
        self,
        generator: AssertionGenerator,
        designs: Sequence[Design],
        examples: Sequence[InContextExample],
        k: int,
        use_corrector: Optional[bool] = None,
    ) -> List[DesignEvaluation]:
        """One (model, k) sweep over ``designs`` with overlapped stages.

        Committed cells are served from the run store without generation or
        verification; fresh cells are checkpointed the moment their verdicts
        land.  Results are in input design order regardless of overlap.
        """
        designs = list(designs)
        completed = self._store.completed_cells() if self._store is not None else {}
        evaluations: List[Optional[DesignEvaluation]] = [None] * len(designs)

        def replay(index: int, design: Design, marker) -> bool:
            if marker is None:
                return False
            evaluation = DesignEvaluation(design_name=design.name)
            evaluation.outcomes.extend(self._store.load_marked(marker))
            evaluations[index] = evaluation
            return True

        def commit(index: int, design: Design, lines, verdicts) -> None:
            evaluation = self._assemble(
                generator.name, k, design, lines, verdicts, use_corrector
            )
            if self._store is not None:
                self._store.record_cell(
                    generator.name, k, design.name, evaluation.outcomes
                )
            evaluations[index] = evaluation

        # Overlap only pays when verification leaves this interpreter: with
        # in-process FPV (one worker) both stages are GIL-bound, so a second
        # thread just adds switching overhead — run the loop inline instead.
        stage_width = self._service.effective_workers()
        if stage_width <= 1:
            for index, design in enumerate(designs):
                if replay(index, design, completed.get((generator.name, k, design.name))):
                    continue
                lines = self._prepare_lines(generator, design, examples, use_corrector)
                assertions = [
                    line.assertion for line in lines if line.assertion is not None
                ]
                commit(index, design, lines, self._service.check_design(design, assertions))
            return evaluations  # type: ignore[return-value]

        # One verifier thread per FPV worker: each thread's design batch
        # lands on its own pool process, so streaming keeps the same fan-out
        # the old whole-sweep check_many had while generation for design N+1
        # overlaps verification of design N.
        inflight: Deque[Tuple[int, Design, List[_PreparedLine], Future]] = deque()

        def drain_one() -> None:
            index, design, lines, future = inflight.popleft()
            commit(index, design, lines, future.result())

        window = self._max_inflight if self._max_inflight is not None else max(
            4, 2 * stage_width
        )
        window = max(1, window)
        verifier = ThreadPoolExecutor(
            max_workers=stage_width, thread_name_prefix="repro-verify"
        )
        try:
            for index, design in enumerate(designs):
                if replay(index, design, completed.get((generator.name, k, design.name))):
                    continue
                lines = self._prepare_lines(generator, design, examples, use_corrector)
                assertions = [
                    line.assertion for line in lines if line.assertion is not None
                ]
                future = verifier.submit(
                    self._service.check_design, design, assertions
                )
                inflight.append((index, design, lines, future))
                # Keep the window bounded and commit cells promptly: drain
                # everything already verified, then block only when the
                # verifier is more than the window behind.
                while inflight and (
                    len(inflight) > window or inflight[0][3].done()
                ):
                    drain_one()
            while inflight:
                drain_one()
        finally:
            verifier.shutdown(wait=False, cancel_futures=True)
        return evaluations  # type: ignore[return-value]

    # -- generation / correction ----------------------------------------------------

    def _corrector_enabled(self, use_corrector: Optional[bool]) -> bool:
        return (
            self._config.use_syntax_corrector if use_corrector is None else use_corrector
        )

    def _prepare_lines(
        self,
        generator: AssertionGenerator,
        design: Design,
        examples: Sequence[InContextExample],
        use_corrector: Optional[bool],
    ) -> List[_PreparedLine]:
        prompt = self._prompt_builder.build(list(examples), design)
        generation = generator.generate(prompt, self._config.decoding)
        lines = split_assertion_lines(generation.text)

        corrector = (
            SyntaxCorrector(design=design, resolve_signals=self._config.resolve_signal_names)
            if self._corrector_enabled(use_corrector)
            else None
        )

        prepared: List[_PreparedLine] = []
        for raw in lines:
            if corrector is not None:
                correction = corrector.correct(raw)
                prepared.append(
                    _PreparedLine(
                        raw=raw,
                        corrected=correction.corrected,
                        correction_applied=bool(correction.applied_rules),
                        assertion=correction.assertion,
                    )
                )
            else:
                try:
                    assertion = parse_assertion(raw)
                except SvaError:
                    assertion = None
                prepared.append(
                    _PreparedLine(
                        raw=raw,
                        corrected=raw,
                        correction_applied=False,
                        assertion=assertion,
                    )
                )
        return prepared

    # -- verdict assembly -----------------------------------------------------------

    def _assemble(
        self,
        model_name: str,
        k: int,
        design: Design,
        lines: List[_PreparedLine],
        verdicts: List[ProofResult],
        use_corrector: Optional[bool],
    ) -> DesignEvaluation:
        evaluation = DesignEvaluation(design_name=design.name)
        queue = iter(verdicts)
        for line in lines:
            if line.assertion is None:
                proof = error_result(
                    "assertion could not be parsed"
                    + (" after correction" if self._corrector_enabled(use_corrector) else ""),
                    design.name,
                )
            else:
                proof = next(queue)
            evaluation.outcomes.append(
                AssertionOutcome(
                    design_name=design.name,
                    model_name=model_name,
                    k=k,
                    raw_text=line.raw,
                    corrected_text=line.corrected,
                    category=categorize(proof),
                    proof=proof,
                    correction_applied=line.correction_applied,
                )
            )
        return evaluation
