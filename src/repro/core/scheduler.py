"""Parallel evaluation scheduler: the third layer of the verification backend.

The :class:`VerificationService` is the single entry point through which the
evaluation pipeline, the experiment suite, and the benchmark harness
discharge generated assertions:

1. queued assertions are grouped by design,
2. each design's batch is checked with one call to
   :meth:`~repro.fpv.engine.FormalEngine.check_batch` (one shared state-space
   sweep / one shared trace set per design),
3. design-level batches are dispatched across a ``ProcessPoolExecutor`` when
   more than one worker is configured, with deterministic result ordering,
4. a verdict cache keyed by (design name, normalised assertion text) fronts
   the whole flow.

The cache is process-safe by construction: worker processes never see it —
lookups happen before dispatch and verdicts are stored after collection, all
in the parent process, under a lock so concurrent submitting threads cannot
corrupt the accounting.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..fpv.engine import (
    EngineConfig,
    FormalEngine,
    ReachabilityCache,
    reachability_key,
)
from ..fpv.transition import ReachabilityResult
from ..hdl.design import Design
from ..fpv.result import ProofResult
from ..sva.model import Assertion

AssertionLike = Union[str, Assertion]
#: One unit of schedulable work: a design plus the assertions queued for it.
VerificationJob = Tuple[Design, Sequence[AssertionLike]]
#: One family unit: the golden design, its mutants (anything exposing
#: ``.design`` and ``.witness``, e.g. :class:`repro.mutate.operators.Mutant`),
#: and the assertions to score every mutant against.
FamilyJob = Tuple[Design, Sequence, Sequence[AssertionLike]]

_WORKERS_ENV_VAR = "REPRO_FPV_WORKERS"


def default_workers() -> int:
    """Worker count from ``REPRO_FPV_WORKERS`` (default 1 = in-process)."""
    try:
        return max(1, int(os.environ.get(_WORKERS_ENV_VAR, "1")))
    except ValueError:
        return 1


@dataclass
class SchedulerConfig:
    """Knobs of the verification scheduler."""

    engine: EngineConfig = field(default_factory=EngineConfig)
    #: Number of worker processes; 1 runs everything in-process.
    workers: int = field(default_factory=default_workers)


class VerdictCache:
    """Cache of FPV verdicts keyed by (design name, assertion text).

    Thread-safe: lookups, stores, and the hit/miss accounting are guarded by
    one lock.  A lookup that misses counts as a miss immediately (whether or
    not a verdict is later stored), so ``hits + misses`` equals the number of
    ``get`` calls.
    """

    def __init__(self):
        self._verdicts: Dict[tuple, ProofResult] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(design_name: str, text: str) -> tuple:
        return (design_name, " ".join(text.split()))

    def get(self, design_name: str, text: str) -> Optional[ProofResult]:
        with self._lock:
            result = self._verdicts.get(self._key(design_name, text))
            if result is not None:
                self.hits += 1
            else:
                self.misses += 1
        return result

    def put(self, design_name: str, text: str, result: ProofResult) -> None:
        with self._lock:
            self._verdicts[self._key(design_name, text)] = result

    def put_many(self, items: Sequence[Tuple[str, str, ProofResult]]) -> None:
        """Store a batch of verdicts under one lock acquisition.

        Persistent subclasses override this to amortise their write+flush
        over the whole batch — the streaming runtime commits one design's
        verdicts at a time, and a flush per verdict is measurable against
        the per-cell budget.
        """
        with self._lock:
            for design_name, text, result in items:
                self._verdicts[self._key(design_name, text)] = result

    def stats(self) -> Dict[str, int]:
        """Snapshot of the cache accounting."""
        with self._lock:
            return {
                "entries": len(self._verdicts),
                "hits": self.hits,
                "misses": self.misses,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._verdicts)


# -- worker-side entry point ---------------------------------------------------

def _design_key(design: Design) -> str:
    """Identify a design by name *and* source fingerprint.

    Keying on the name alone would hand back verdicts (or worker-side
    engines) from a different design that happens to share it.
    """
    return f"{design.name}:{zlib.crc32(design.source.encode()):08x}"


#: Engines are cached per worker process so repeated batches against the same
#: design reuse its reachability set and fallback traces.
_WORKER_ENGINES: Dict[tuple, FormalEngine] = {}
_WORKER_ENGINE_LIMIT = 64


def _engine_for(design: Design, config: EngineConfig) -> FormalEngine:
    key = (_design_key(design), dataclasses.astuple(config))
    engine = _WORKER_ENGINES.get(key)
    if engine is None:
        if len(_WORKER_ENGINES) >= _WORKER_ENGINE_LIMIT:
            _WORKER_ENGINES.clear()
        engine = FormalEngine(design, config)
        _WORKER_ENGINES[key] = engine
    return engine


def _check_design_batch(
    design: Design,
    assertions: Sequence[AssertionLike],
    config: EngineConfig,
    reachability: Optional[ReachabilityResult] = None,
) -> Tuple[List[ProofResult], Optional[ReachabilityResult], Dict[str, int], Optional[Dict[str, str]]]:
    """Check one design-level batch (runs in a worker process or inline).

    ``reachability`` warm-starts the engine from a cached reachable-state
    set; the second return slot carries back a freshly computed one (None
    when it was preloaded or never needed), so the parent process can
    persist it regardless of which worker explored the design.  The fourth
    slot reports which vector lowering the design got (None on scalar
    backends), so the parent can aggregate per-plan and fallback stats.
    """
    engine = _engine_for(design, config)
    if reachability is not None:
        engine.preload_reachability(reachability)
    before = engine.step_cache_stats()
    results = engine.check_batch(assertions)
    after = engine.step_cache_stats()
    step_stats = {
        "hits": after["hits"] - before["hits"],
        "misses": after["misses"] - before["misses"],
    }
    snapshot = None if reachability is not None else engine.reachability_snapshot()
    return results, snapshot, step_stats, engine.lowering_info()


def _check_family_job(
    golden: Design,
    mutant_designs: Sequence[Design],
    witnesses: Sequence,
    assertions: Sequence[AssertionLike],
    config: EngineConfig,
    preloads: Dict,
    witness_screen: bool,
) -> Tuple[List[List[ProofResult]], Dict, Dict[str, int]]:
    """Check one whole mutant family (runs in a worker process or inline).

    ``preloads`` seeds a worker-local reachability cache with the parent's
    cached sets (golden and mutants alike); every set the family sweep
    computes fresh rides back in the second slot so the parent can persist
    it.  The third slot carries the family sweep's counters.
    """
    from ..fpv.incremental import FamilyStats, check_family

    cache = ReachabilityCache()
    for key, result in preloads.items():
        cache.put(key, result)
    stats = FamilyStats()
    verdicts = check_family(
        golden,
        mutant_designs,
        assertions,
        config,
        cache,
        witnesses=witnesses,
        witness_screen=witness_screen,
        stats=stats,
    )
    fresh = {
        key: result
        for key, result in cache.entries().items()
        if key not in preloads
    }
    return verdicts, fresh, stats.as_dict()


# -- the service ----------------------------------------------------------------


class VerificationService:
    """Schedule assertion batches over designs, workers, and the cache."""

    def __init__(
        self,
        config: Optional[SchedulerConfig] = None,
        cache: Optional[VerdictCache] = None,
        reachability_cache: Optional[ReachabilityCache] = None,
    ):
        self._config = config or SchedulerConfig()
        # `cache or ...` would drop a supplied-but-empty cache: VerdictCache
        # defines __len__, so a fresh (persistent) cache is falsy.
        self._cache = cache if cache is not None else VerdictCache()
        #: Reachable-state sets keyed by design fingerprint + engine caps.
        #: Lives in the parent process: preloads ride along with dispatched
        #: batches, freshly computed sets ride back with the results, so the
        #: cache warms up regardless of worker count.
        self._reachability_cache = (
            reachability_cache if reachability_cache is not None else ReachabilityCache()
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        #: Aggregated counters from family-batched mutation dispatch and the
        #: scalar step caches; guarded by one lock — streaming campaigns
        #: dispatch from several verifier threads concurrently.
        self._stats_lock = threading.Lock()
        self._family_stats: Dict[str, int] = {}
        self._step_stats: Dict[str, int] = {}
        #: Per-design vector-lowering outcomes, keyed by design name:
        #: {"plan": ..., "reason": ...} as reported by the engine's planner.
        self._lowering_stats: Dict[str, Dict[str, str]] = {}

    @property
    def config(self) -> SchedulerConfig:
        return self._config

    @property
    def cache(self) -> VerdictCache:
        return self._cache

    @property
    def reachability_cache(self) -> ReachabilityCache:
        return self._reachability_cache

    def use_reachability_cache(self, cache: ReachabilityCache) -> None:
        """Swap in a (typically persistent) reachability cache.

        Safe at any point: the cache only affects where reachable-state sets
        are remembered, never verdicts.  The campaign runtime calls this so
        a caller-supplied service still persists reachability into the run
        store.
        """
        self._reachability_cache = cache

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "VerificationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _get_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.effective_workers())
            return self._pool

    # -- public API ----------------------------------------------------------------

    def check(self, design: Design, assertion: AssertionLike) -> ProofResult:
        """Check a single assertion against one design (cache-fronted)."""
        return self.check_design(design, [assertion])[0]

    def check_design(
        self, design: Design, assertions: Sequence[AssertionLike]
    ) -> List[ProofResult]:
        """Check one design's batch; results are in input order."""
        return self.check_many([(design, assertions)])[0]

    def check_many(self, jobs: Sequence[VerificationJob]) -> List[List[ProofResult]]:
        """Check many design-level batches, fanning out across workers.

        Returns one verdict list per job, aligned with the input: result
        ordering is deterministic regardless of worker count or completion
        order.  Cached verdicts are reused; each distinct (design, normalised
        text) pair is proved at most once, even when repeated within a batch.
        """
        jobs = [(design, list(assertions)) for design, assertions in jobs]

        # Resolve from the cache and collect the per-design misses.  Designs
        # are grouped by name + source fingerprint so two different designs
        # sharing a name never land in one batch.  The slot table maps every
        # (job, position) to the key that will eventually hold its verdict.
        pending: Dict[str, Dict[tuple, ProofResult]] = {}
        misses: Dict[str, Tuple[Design, List[AssertionLike], List[tuple]]] = {}
        slots: List[List[tuple]] = []
        design_keys: List[str] = []
        for design, assertions in jobs:
            design_key = _design_key(design)
            design_keys.append(design_key)
            job_slots: List[tuple] = []
            design_pending = pending.setdefault(design_key, {})
            for assertion in assertions:
                key = VerdictCache._key(design_key, _assertion_text(assertion))
                job_slots.append(key)
                if key in design_pending:
                    continue
                cached = self._cache.get(*key)
                if cached is not None:
                    design_pending[key] = cached
                    continue
                design_pending[key] = None  # type: ignore[assignment]
                design_jobs = misses.setdefault(design_key, (design, [], []))
                design_jobs[1].append(assertion)
                design_jobs[2].append(key)
            slots.append(job_slots)

        self._dispatch(list(misses.values()), pending)

        return [
            [pending[design_key][key] for key in job_slots]
            for design_key, job_slots in zip(design_keys, slots)
        ]

    def check_families(
        self, jobs: Sequence[FamilyJob], witness_screen: bool = True
    ) -> List[List[List[ProofResult]]]:
        """Check mutant families, one family per worker task.

        Returns, per job, one verdict list per mutant aligned with the job's
        assertion order.  The verdict cache is consulted per (mutant,
        assertion) before dispatch: mutants whose every verdict is cached
        never reach a worker, and every fresh verdict is stored afterwards.
        Reachability sets — the golden design's and every mutant's — ride
        the same parent-process cache as design-level dispatch.
        """
        engine_config = self._config.engine
        results: List[Optional[List[List[ProofResult]]]] = [None] * len(jobs)
        dispatch: List[Tuple[int, Design, List, List[str], Dict]] = []
        cached_layers: List[Dict[Tuple[int, int], ProofResult]] = []
        for job_index, (golden, mutants, assertions) in enumerate(jobs):
            mutants = list(mutants)
            texts = [_assertion_text(assertion) for assertion in assertions]
            cached: Dict[Tuple[int, int], ProofResult] = {}
            pending_mutants: List = []
            for position, mutant in enumerate(mutants):
                design_key = _design_key(mutant.design)
                missing = False
                for text_index, text in enumerate(texts):
                    verdict = self._cache.get(design_key, text)
                    if verdict is None:
                        missing = True
                    else:
                        cached[(position, text_index)] = verdict
                if missing:
                    pending_mutants.append((position, mutant))
            cached_layers.append(cached)
            if not pending_mutants:
                results[job_index] = [
                    [cached[(position, text_index)] for text_index in range(len(texts))]
                    for position in range(len(mutants))
                ]
                continue
            preloads: Dict = {}
            for design in [golden] + [mutant.design for _, mutant in pending_mutants]:
                key = reachability_key(design, engine_config)
                hit = self._reachability_cache.get(key)
                if hit is not None:
                    preloads[key] = hit
            dispatch.append((job_index, golden, pending_mutants, texts, preloads))

        if dispatch:
            workers = self.effective_workers()
            # A family is the semantic unit, but not the scheduling unit:
            # the mutation campaign hands over one family at a time, so a
            # single job is sliced along its mutant axis to keep every
            # worker busy.  Per-mutant verdicts are independent of family
            # composition (the memo always compares against the golden
            # design), so slicing never changes a result.
            shards: List[Tuple[int, List]] = []  # (job index, shard mutants)
            for entry in dispatch:
                job_index, golden, pending_mutants, _, preloads = entry
                count = (
                    min(len(pending_mutants), max(1, workers // len(dispatch)))
                    if workers > 1
                    else 1
                )
                if count > 1:
                    # Pay the golden BFS once in the parent instead of once
                    # per shard; every shard then preloads the same set.
                    key = reachability_key(golden, engine_config)
                    if key not in preloads:
                        engine = FormalEngine(
                            golden, engine_config, self._reachability_cache
                        )
                        explored = engine.explore_reachability()
                        if explored is not None:
                            preloads[key] = explored
                size = (len(pending_mutants) + count - 1) // count
                for start in range(0, len(pending_mutants), size):
                    shards.append((job_index, pending_mutants[start : start + size]))
            by_index = {entry[0]: entry for entry in dispatch}

            def shard_args(job_index: int, shard_mutants: List):
                _, golden, _, texts, preloads = by_index[job_index]
                return (
                    golden,
                    [mutant.design for _, mutant in shard_mutants],
                    [getattr(mutant, "witness", None) for _, mutant in shard_mutants],
                    texts,
                    engine_config,
                    preloads,
                    witness_screen,
                )

            if workers <= 1:
                outcomes = [
                    _check_family_job(*shard_args(job_index, shard_mutants))
                    for job_index, shard_mutants in shards
                ]
            else:
                pool = self._get_pool()
                futures = [
                    pool.submit(_check_family_job, *shard_args(job_index, shard_mutants))
                    for job_index, shard_mutants in shards
                ]
                outcomes = [future.result() for future in futures]
            touched: List[int] = []
            for (job_index, shard_mutants), (verdicts, fresh, family_stats) in zip(
                shards, outcomes
            ):
                _, _, _, texts, _ = by_index[job_index]
                for key, result in fresh.items():
                    self._reachability_cache.put(key, result)
                self._merge_family_stats(family_stats)
                cached = cached_layers[job_index]
                stored: List[Tuple[str, str, ProofResult]] = []
                for (position, mutant), mutant_verdicts in zip(shard_mutants, verdicts):
                    design_key = _design_key(mutant.design)
                    for text_index, (text, verdict) in enumerate(
                        zip(texts, mutant_verdicts)
                    ):
                        cached[(position, text_index)] = verdict
                        stored.append((design_key, text, verdict))
                self._cache.put_many(stored)
                if job_index not in touched:
                    touched.append(job_index)
            for job_index in touched:
                _, _, _, texts, _ = by_index[job_index]
                mutants = list(jobs[job_index][1])
                cached = cached_layers[job_index]
                results[job_index] = [
                    [cached[(position, text_index)] for text_index in range(len(texts))]
                    for position in range(len(mutants))
                ]
        return results  # type: ignore[return-value]

    def _merge_family_stats(self, family_stats: Dict[str, int]) -> None:
        with self._stats_lock:
            for key, value in family_stats.items():
                self._family_stats[key] = self._family_stats.get(key, 0) + value

    def family_stats(self) -> Dict[str, int]:
        """Aggregated family-sweep counters across every dispatched family."""
        with self._stats_lock:
            return dict(self._family_stats)

    def _merge_step_stats(self, step_stats: Dict[str, int]) -> None:
        with self._stats_lock:
            for key, value in step_stats.items():
                self._step_stats[key] = self._step_stats.get(key, 0) + value

    def step_cache_stats(self) -> Dict[str, int]:
        """Scalar step-cache hits/misses aggregated across dispatched batches.

        Covers the memoised :meth:`~repro.fpv.transition.TransitionSystem.step`
        path (scalar sweeps, tiny-frontier BFS slices) regardless of which
        worker process ran the batch.
        """
        with self._stats_lock:
            return dict(self._step_stats)

    def _merge_lowering_info(self, info: Optional[Dict[str, str]]) -> None:
        if not info:
            return
        design = info.get("design", "")
        with self._stats_lock:
            self._lowering_stats[design] = {
                "plan": info.get("plan", ""),
                "reason": info.get("reason", ""),
            }

    def lowering_stats(self) -> Dict[str, object]:
        """Aggregated vector-lowering plan census across dispatched designs.

        Reports how many designs landed on each lowering plan, how many fell
        all the way back to the scalar path, and the per-design fallback
        reasons — the observability face of the per-design planner in
        :func:`repro.sim.vector.plan_model`.
        """
        with self._stats_lock:
            per_design = {name: dict(info) for name, info in self._lowering_stats.items()}
        plans: Dict[str, int] = {}
        fallback_reasons: Dict[str, str] = {}
        for name, info in sorted(per_design.items()):
            plan = info.get("plan", "")
            plans[plan] = plans.get(plan, 0) + 1
            if plan == "fallback":
                fallback_reasons[name] = info.get("reason", "")
        return {
            "plans": plans,
            "fallback_designs": plans.get("fallback", 0),
            "fallback_reasons": fallback_reasons,
        }

    def run_stats(self) -> Dict[str, Dict[str, int]]:
        """Everything observable about this service's caches, in one place."""
        return {
            "verdict_cache": self._cache.stats(),
            "reachability_cache": self._reachability_cache.stats(),
            "step_cache": self.step_cache_stats(),
            "family": self.family_stats(),
            "lowering": self.lowering_stats(),
        }

    # -- dispatch -------------------------------------------------------------------

    def effective_workers(self) -> int:
        """Configured workers clamped to the core count.

        More workers than cores just adds fork/pickle overhead; clamping lets
        a 4-worker config degrade gracefully on small machines.  Streaming
        callers size their verifier stage to this number.
        """
        return min(self._config.workers, os.cpu_count() or 1)

    def _dispatch(
        self,
        batches: List[Tuple[Design, List[AssertionLike], List[tuple]]],
        pending: Dict[str, Dict[tuple, ProofResult]],
    ) -> None:
        if not batches:
            return
        engine_config = self._config.engine
        reach_keys = [
            reachability_key(design, engine_config) for design, _, _ in batches
        ]
        preloads = [self._reachability_cache.get(key) for key in reach_keys]
        # Single-batch calls still go to the pool when workers are configured:
        # the streaming runtime submits one design per call from several
        # threads, and running those inline would serialise them on the GIL.
        if self.effective_workers() <= 1:
            outcomes = [
                _check_design_batch(design, assertions, engine_config, preload)
                for (design, assertions, _), preload in zip(batches, preloads)
            ]
        else:
            pool = self._get_pool()
            futures = [
                pool.submit(
                    _check_design_batch, design, assertions, engine_config, preload
                )
                for (design, assertions, _), preload in zip(batches, preloads)
            ]
            # Collect in submission order: deterministic result assembly.
            outcomes = [future.result() for future in futures]
        stored: List[Tuple[str, str, ProofResult]] = []
        for (design, _, keys), reach_key, preload, (
            results,
            snapshot,
            step_stats,
            lowering,
        ) in zip(batches, reach_keys, preloads, outcomes):
            self._merge_step_stats(step_stats)
            self._merge_lowering_info(lowering)
            if snapshot is not None and preload is None:
                self._reachability_cache.put(reach_key, snapshot)
            design_pending = pending[_design_key(design)]
            for key, result in zip(keys, results):
                design_pending[key] = result
                stored.append((key[0], key[1], result))
        if stored:
            self._cache.put_many(stored)


def _assertion_text(assertion: AssertionLike) -> str:
    if isinstance(assertion, Assertion):
        return assertion.to_sva(include_assert=False)
    return assertion
