"""Parallel evaluation scheduler: the third layer of the verification backend.

The :class:`VerificationService` is the single entry point through which the
evaluation pipeline, the experiment suite, and the benchmark harness
discharge generated assertions:

1. queued assertions are grouped by design,
2. each design's batch is checked with one call to
   :meth:`~repro.fpv.engine.FormalEngine.check_batch` (one shared state-space
   sweep / one shared trace set per design),
3. design-level batches are dispatched across a ``ProcessPoolExecutor`` when
   more than one worker is configured, with deterministic result ordering,
4. a verdict cache keyed by (design name, normalised assertion text) fronts
   the whole flow.

The cache is process-safe by construction: worker processes never see it —
lookups happen before dispatch and verdicts are stored after collection, all
in the parent process, under a lock so concurrent submitting threads cannot
corrupt the accounting.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..fpv.engine import (
    EngineConfig,
    FormalEngine,
    ReachabilityCache,
    reachability_key,
)
from ..fpv.transition import ReachabilityResult
from ..hdl.design import Design
from ..fpv.result import ProofResult
from ..sva.model import Assertion

AssertionLike = Union[str, Assertion]
#: One unit of schedulable work: a design plus the assertions queued for it.
VerificationJob = Tuple[Design, Sequence[AssertionLike]]

_WORKERS_ENV_VAR = "REPRO_FPV_WORKERS"


def default_workers() -> int:
    """Worker count from ``REPRO_FPV_WORKERS`` (default 1 = in-process)."""
    try:
        return max(1, int(os.environ.get(_WORKERS_ENV_VAR, "1")))
    except ValueError:
        return 1


@dataclass
class SchedulerConfig:
    """Knobs of the verification scheduler."""

    engine: EngineConfig = field(default_factory=EngineConfig)
    #: Number of worker processes; 1 runs everything in-process.
    workers: int = field(default_factory=default_workers)


class VerdictCache:
    """Cache of FPV verdicts keyed by (design name, assertion text).

    Thread-safe: lookups, stores, and the hit/miss accounting are guarded by
    one lock.  A lookup that misses counts as a miss immediately (whether or
    not a verdict is later stored), so ``hits + misses`` equals the number of
    ``get`` calls.
    """

    def __init__(self):
        self._verdicts: Dict[tuple, ProofResult] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(design_name: str, text: str) -> tuple:
        return (design_name, " ".join(text.split()))

    def get(self, design_name: str, text: str) -> Optional[ProofResult]:
        with self._lock:
            result = self._verdicts.get(self._key(design_name, text))
            if result is not None:
                self.hits += 1
            else:
                self.misses += 1
        return result

    def put(self, design_name: str, text: str, result: ProofResult) -> None:
        with self._lock:
            self._verdicts[self._key(design_name, text)] = result

    def stats(self) -> Dict[str, int]:
        """Snapshot of the cache accounting."""
        with self._lock:
            return {
                "entries": len(self._verdicts),
                "hits": self.hits,
                "misses": self.misses,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._verdicts)


# -- worker-side entry point ---------------------------------------------------

def _design_key(design: Design) -> str:
    """Identify a design by name *and* source fingerprint.

    Keying on the name alone would hand back verdicts (or worker-side
    engines) from a different design that happens to share it.
    """
    return f"{design.name}:{zlib.crc32(design.source.encode()):08x}"


#: Engines are cached per worker process so repeated batches against the same
#: design reuse its reachability set and fallback traces.
_WORKER_ENGINES: Dict[tuple, FormalEngine] = {}
_WORKER_ENGINE_LIMIT = 64


def _engine_for(design: Design, config: EngineConfig) -> FormalEngine:
    key = (_design_key(design), dataclasses.astuple(config))
    engine = _WORKER_ENGINES.get(key)
    if engine is None:
        if len(_WORKER_ENGINES) >= _WORKER_ENGINE_LIMIT:
            _WORKER_ENGINES.clear()
        engine = FormalEngine(design, config)
        _WORKER_ENGINES[key] = engine
    return engine


def _check_design_batch(
    design: Design,
    assertions: Sequence[AssertionLike],
    config: EngineConfig,
    reachability: Optional[ReachabilityResult] = None,
) -> Tuple[List[ProofResult], Optional[ReachabilityResult]]:
    """Check one design-level batch (runs in a worker process or inline).

    ``reachability`` warm-starts the engine from a cached reachable-state
    set; the second return slot carries back a freshly computed one (None
    when it was preloaded or never needed), so the parent process can
    persist it regardless of which worker explored the design.
    """
    engine = _engine_for(design, config)
    if reachability is not None:
        engine.preload_reachability(reachability)
    results = engine.check_batch(assertions)
    snapshot = None if reachability is not None else engine.reachability_snapshot()
    return results, snapshot


# -- the service ----------------------------------------------------------------


class VerificationService:
    """Schedule assertion batches over designs, workers, and the cache."""

    def __init__(
        self,
        config: Optional[SchedulerConfig] = None,
        cache: Optional[VerdictCache] = None,
        reachability_cache: Optional[ReachabilityCache] = None,
    ):
        self._config = config or SchedulerConfig()
        # `cache or ...` would drop a supplied-but-empty cache: VerdictCache
        # defines __len__, so a fresh (persistent) cache is falsy.
        self._cache = cache if cache is not None else VerdictCache()
        #: Reachable-state sets keyed by design fingerprint + engine caps.
        #: Lives in the parent process: preloads ride along with dispatched
        #: batches, freshly computed sets ride back with the results, so the
        #: cache warms up regardless of worker count.
        self._reachability_cache = (
            reachability_cache if reachability_cache is not None else ReachabilityCache()
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()

    @property
    def config(self) -> SchedulerConfig:
        return self._config

    @property
    def cache(self) -> VerdictCache:
        return self._cache

    @property
    def reachability_cache(self) -> ReachabilityCache:
        return self._reachability_cache

    def use_reachability_cache(self, cache: ReachabilityCache) -> None:
        """Swap in a (typically persistent) reachability cache.

        Safe at any point: the cache only affects where reachable-state sets
        are remembered, never verdicts.  The campaign runtime calls this so
        a caller-supplied service still persists reachability into the run
        store.
        """
        self._reachability_cache = cache

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "VerificationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _get_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.effective_workers())
            return self._pool

    # -- public API ----------------------------------------------------------------

    def check(self, design: Design, assertion: AssertionLike) -> ProofResult:
        """Check a single assertion against one design (cache-fronted)."""
        return self.check_design(design, [assertion])[0]

    def check_design(
        self, design: Design, assertions: Sequence[AssertionLike]
    ) -> List[ProofResult]:
        """Check one design's batch; results are in input order."""
        return self.check_many([(design, assertions)])[0]

    def check_many(self, jobs: Sequence[VerificationJob]) -> List[List[ProofResult]]:
        """Check many design-level batches, fanning out across workers.

        Returns one verdict list per job, aligned with the input: result
        ordering is deterministic regardless of worker count or completion
        order.  Cached verdicts are reused; each distinct (design, normalised
        text) pair is proved at most once, even when repeated within a batch.
        """
        jobs = [(design, list(assertions)) for design, assertions in jobs]

        # Resolve from the cache and collect the per-design misses.  Designs
        # are grouped by name + source fingerprint so two different designs
        # sharing a name never land in one batch.  The slot table maps every
        # (job, position) to the key that will eventually hold its verdict.
        pending: Dict[str, Dict[tuple, ProofResult]] = {}
        misses: Dict[str, Tuple[Design, List[AssertionLike], List[tuple]]] = {}
        slots: List[List[tuple]] = []
        design_keys: List[str] = []
        for design, assertions in jobs:
            design_key = _design_key(design)
            design_keys.append(design_key)
            job_slots: List[tuple] = []
            design_pending = pending.setdefault(design_key, {})
            for assertion in assertions:
                key = VerdictCache._key(design_key, _assertion_text(assertion))
                job_slots.append(key)
                if key in design_pending:
                    continue
                cached = self._cache.get(*key)
                if cached is not None:
                    design_pending[key] = cached
                    continue
                design_pending[key] = None  # type: ignore[assignment]
                design_jobs = misses.setdefault(design_key, (design, [], []))
                design_jobs[1].append(assertion)
                design_jobs[2].append(key)
            slots.append(job_slots)

        self._dispatch(list(misses.values()), pending)

        return [
            [pending[design_key][key] for key in job_slots]
            for design_key, job_slots in zip(design_keys, slots)
        ]

    # -- dispatch -------------------------------------------------------------------

    def effective_workers(self) -> int:
        """Configured workers clamped to the core count.

        More workers than cores just adds fork/pickle overhead; clamping lets
        a 4-worker config degrade gracefully on small machines.  Streaming
        callers size their verifier stage to this number.
        """
        return min(self._config.workers, os.cpu_count() or 1)

    def _dispatch(
        self,
        batches: List[Tuple[Design, List[AssertionLike], List[tuple]]],
        pending: Dict[str, Dict[tuple, ProofResult]],
    ) -> None:
        if not batches:
            return
        engine_config = self._config.engine
        reach_keys = [
            reachability_key(design, engine_config) for design, _, _ in batches
        ]
        preloads = [self._reachability_cache.get(key) for key in reach_keys]
        # Single-batch calls still go to the pool when workers are configured:
        # the streaming runtime submits one design per call from several
        # threads, and running those inline would serialise them on the GIL.
        if self.effective_workers() <= 1:
            outcomes = [
                _check_design_batch(design, assertions, engine_config, preload)
                for (design, assertions, _), preload in zip(batches, preloads)
            ]
        else:
            pool = self._get_pool()
            futures = [
                pool.submit(
                    _check_design_batch, design, assertions, engine_config, preload
                )
                for (design, assertions, _), preload in zip(batches, preloads)
            ]
            # Collect in submission order: deterministic result assembly.
            outcomes = [future.result() for future in futures]
        for (design, _, keys), reach_key, preload, (results, snapshot) in zip(
            batches, reach_keys, preloads, outcomes
        ):
            if snapshot is not None and preload is None:
                self._reachability_cache.put(reach_key, snapshot)
            design_pending = pending[_design_key(design)]
            for key, result in zip(keys, results):
                design_pending[key] = result
                self._cache.put(*key, result)


def _assertion_text(assertion: AssertionLike) -> str:
    if isinstance(assertion, Assertion):
        return assertion.to_sva(include_assert=False)
    return assertion
