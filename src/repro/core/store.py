"""Durable campaign state: run directories, outcome shards, persistent verdicts.

A *run directory* holds everything a campaign produces, laid out so that any
prefix of a run is a valid, resumable state:

``manifest.json``
    Campaign identity — a canonical config hash plus the echoed config — and
    the run status (``running`` / ``complete``).  Resume refuses a run
    directory whose manifest hash does not match the requested campaign.

``verdicts.jsonl``
    The :class:`PersistentVerdictCache`: one appended JSON line per proved
    (design fingerprint, normalised assertion text) pair.  Loaded into the
    in-memory :class:`~repro.core.scheduler.VerdictCache` on open, so FPV
    verdicts survive across processes and runs.

``outcomes/<model>-k<k>.jsonl``
    Per-assertion :class:`~repro.core.metrics.AssertionOutcome` records, one
    shard per (model, k) sweep.  Records carry the cell (design) they belong
    to and an attempt token.

``completed.jsonl``
    The commit log.  A cell — one (model, k, design) evaluation — only
    counts as done once its completion marker (with the attempt token and
    record count) has been appended here, *after* all its outcome records.
    A crash mid-cell therefore leaves only uncommitted records, which the
    loader ignores; resume re-runs the cell and its verdicts replay from the
    persistent cache.

``mutations.jsonl``
    The mutation campaign's verdict stream: one line per
    (design, mutant, assertion) outcome, plus per-design completion markers
    (``kind: "design"``) appended once every mutant of a design has been
    scored.  Keys are content-addressed — golden design fingerprint +
    operator + site + normalised assertion text — so mutation reruns resume
    (see :mod:`repro.mutate.campaign`).

All appends are flushed line-by-line; markers are the atomicity boundary.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..fpv.engine import ReachabilityCache, ReachabilityKey
from ..fpv.result import Counterexample, ProofResult, ProofStatus
from ..fpv.transition import ReachabilityResult
from ..sva.errors import SvaError
from ..sva.parser import parse_assertion
from .metrics import AssertionOutcome, EvaluationMatrix, ModelKshotResult
from .metrics import DesignEvaluation
from .scheduler import VerdictCache

__all__ = [
    "CellKey",
    "PersistentReachabilityCache",
    "PersistentVerdictCache",
    "ResumeMismatchError",
    "RunStore",
    "config_hash",
    "outcome_from_json",
    "outcome_to_json",
    "proof_from_json",
    "proof_to_json",
]

#: One campaign cell: (model name, k, design name).
CellKey = Tuple[str, int, str]

#: Compact separators for the append-only logs: the hot path serializes
#: every outcome/verdict/reachability record per cell, and the default
#: ", " / ": " separators cost measurably more bytes and time.
_COMPACT = (",", ":")

_MANIFEST_NAME = "manifest.json"
_VERDICTS_NAME = "verdicts.jsonl"
_REACHABILITY_NAME = "reachability.jsonl"
_COMPLETED_NAME = "completed.jsonl"
_MUTATIONS_NAME = "mutations.jsonl"
_OUTCOMES_DIR = "outcomes"


class ResumeMismatchError(RuntimeError):
    """The run directory belongs to a differently-configured campaign."""


def config_hash(config: Dict) -> str:
    """Canonical hash of a campaign configuration (exact-resume detection)."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# AssertionOutcome / ProofResult serialization
# ---------------------------------------------------------------------------


def proof_to_json(proof: ProofResult) -> Dict:
    """Serialize a proof verdict, including its counterexample trace."""
    data: Dict = {
        "status": proof.status.value,
        "design_name": proof.design_name,
        "reason": proof.reason,
        "engine": proof.engine,
        "complete": proof.complete,
        "states_explored": proof.states_explored,
        "depth": proof.depth,
    }
    if proof.assertion is not None:
        data["assertion"] = proof.assertion.to_sva(include_assert=True)
    if proof.counterexample is not None:
        cex = proof.counterexample
        data["counterexample"] = {
            "cycles": cex.cycles,
            "trigger_cycle": cex.trigger_cycle,
            "failed_term": cex.failed_term,
        }
    return data


def proof_from_json(data: Dict) -> ProofResult:
    assertion = None
    text = data.get("assertion")
    if text:
        try:
            assertion = parse_assertion(text)
        except SvaError:
            assertion = None
    counterexample = None
    cex = data.get("counterexample")
    if cex is not None:
        counterexample = Counterexample(
            cycles=[{k: int(v) for k, v in cycle.items()} for cycle in cex["cycles"]],
            trigger_cycle=cex.get("trigger_cycle", 0),
            failed_term=cex.get("failed_term", ""),
        )
    return ProofResult(
        status=ProofStatus(data["status"]),
        assertion=assertion,
        design_name=data.get("design_name", ""),
        counterexample=counterexample,
        reason=data.get("reason", ""),
        engine=data.get("engine", ""),
        complete=data.get("complete", True),
        states_explored=data.get("states_explored", 0),
        depth=data.get("depth", 0),
    )


def outcome_to_json(outcome: AssertionOutcome) -> Dict:
    data = {
        "design_name": outcome.design_name,
        "model_name": outcome.model_name,
        "k": outcome.k,
        "raw_text": outcome.raw_text,
        "corrected_text": outcome.corrected_text,
        "category": outcome.category,
        "correction_applied": outcome.correction_applied,
    }
    if outcome.proof is not None:
        data["proof"] = proof_to_json(outcome.proof)
    return data


def outcome_from_json(data: Dict) -> AssertionOutcome:
    proof = data.get("proof")
    return AssertionOutcome(
        design_name=data["design_name"],
        model_name=data["model_name"],
        k=data["k"],
        raw_text=data["raw_text"],
        corrected_text=data["corrected_text"],
        category=data["category"],
        proof=proof_from_json(proof) if proof is not None else None,
        correction_applied=data.get("correction_applied", False),
    )


# ---------------------------------------------------------------------------
# Persistent verdict cache
# ---------------------------------------------------------------------------


class PersistentVerdictCache(VerdictCache):
    """A :class:`VerdictCache` backed by an append-only JSONL file.

    Keys are whatever the scheduler uses — design fingerprint (name + source
    hash) plus normalised assertion text — so the cache is content-addressed:
    a renamed run directory, a new process, or a later campaign all hit as
    long as the design source and assertion text are unchanged.  ``put``
    appends one line and flushes before publishing the entry in memory;
    loading replays the file (last write wins) and counts neither hits nor
    misses.
    """

    def __init__(self, path: Path):
        super().__init__()
        self._path = Path(path)
        self._io_lock = threading.Lock()
        self._handle = None
        self._loaded_entries = 0
        self._load()

    @property
    def path(self) -> Path:
        return self._path

    @property
    def loaded_entries(self) -> int:
        """How many distinct verdicts were replayed from disk on open."""
        return self._loaded_entries

    def _load(self) -> None:
        if not self._path.exists():
            return
        for record in _read_jsonl(self._path):
            key = (record["design"], record["text"])
            self._verdicts[key] = proof_from_json(record["proof"])
        self._loaded_entries = len(self._verdicts)

    def put(self, design_name: str, text: str, result: ProofResult) -> None:
        self._write([(design_name, text, result)])
        super().put(design_name, text, result)

    def put_many(self, items) -> None:
        """Batch store: one write + one flush for a whole design batch."""
        self._write(items)
        super().put_many(items)

    def _write(self, items) -> None:
        lines = []
        for design_name, text, result in items:
            key = self._key(design_name, text)
            lines.append(
                json.dumps(
                    {"design": key[0], "text": key[1], "proof": proof_to_json(result)},
                    separators=_COMPACT,
                )
            )
        with self._io_lock:
            if self._handle is None:
                self._path.parent.mkdir(parents=True, exist_ok=True)
                prefix = "\n" if _missing_trailing_newline(self._path) else ""
                self._handle = self._path.open("a", encoding="utf-8")
                if prefix:
                    self._handle.write(prefix)
            self._handle.write("".join(line + "\n" for line in lines))
            self._handle.flush()

    def close(self) -> None:
        """Close the append handle (reopened automatically on the next put)."""
        with self._io_lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


# ---------------------------------------------------------------------------
# Persistent reachability cache
# ---------------------------------------------------------------------------


class PersistentReachabilityCache(ReachabilityCache):
    """A :class:`~repro.fpv.engine.ReachabilityCache` backed by JSONL.

    One appended line per explored design, keyed by design source
    fingerprint plus the engine caps that shaped the exploration
    (:func:`repro.fpv.engine.reachability_key`).  A warm campaign rerun
    replays the file and skips every reachability BFS whose design source
    and caps are unchanged — including bounded (incomplete) explorations,
    which are just as deterministic as complete ones.
    """

    def __init__(self, path: Path):
        super().__init__()
        self._path = Path(path)
        self._io_lock = threading.Lock()
        self._handle = None
        self._loaded_entries = 0
        self._load()

    @property
    def path(self) -> Path:
        return self._path

    @property
    def loaded_entries(self) -> int:
        """How many reachability results were replayed from disk on open."""
        return self._loaded_entries

    def _load(self) -> None:
        if not self._path.exists():
            return
        for record in _read_jsonl(self._path):
            try:
                key: ReachabilityKey = (
                    record["design"],
                    int(record["max_states"]),
                    int(record["max_transitions"]),
                    int(record["max_input_bits"]),
                )
                result = ReachabilityResult(
                    states=[tuple(int(v) for v in state) for state in record["states"]],
                    complete=bool(record["complete"]),
                    frontier_exhausted=bool(record["frontier_exhausted"]),
                    transitions_explored=int(record["transitions"]),
                )
            except (KeyError, TypeError, ValueError):
                continue  # torn or legacy record; recomputing is always safe
            self._results[key] = result
        self._loaded_entries = len(self._results)

    def put(self, key: ReachabilityKey, result: ReachabilityResult) -> None:
        fingerprint, max_states, max_transitions, max_input_bits = key
        line = json.dumps(
            {
                "design": fingerprint,
                "max_states": max_states,
                "max_transitions": max_transitions,
                "max_input_bits": max_input_bits,
                "complete": result.complete,
                "frontier_exhausted": result.frontier_exhausted,
                "transitions": result.transitions_explored,
                "states": [list(state) for state in result.states],
            },
            separators=_COMPACT,
        )
        with self._io_lock:
            if self._handle is None:
                self._path.parent.mkdir(parents=True, exist_ok=True)
                prefix = "\n" if _missing_trailing_newline(self._path) else ""
                self._handle = self._path.open("a", encoding="utf-8")
                if prefix:
                    self._handle.write(prefix)
            self._handle.write(line + "\n")
            self._handle.flush()
        super().put(key, result)

    def close(self) -> None:
        """Close the append handle (reopened automatically on the next put)."""
        with self._io_lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


# ---------------------------------------------------------------------------
# The run store
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CellMarker:
    """One committed cell: which attempt's records are authoritative."""

    cell: CellKey
    attempt: str
    count: int


class _JsonlTail:
    """Incremental JSONL reader: parses only bytes appended since last read.

    Only complete (newline-terminated) lines are consumed; a torn tail from
    a crash is left un-consumed and retried once more bytes arrive.  If the
    file shrinks (deleted/recreated), ``read_new`` returns ``None`` so the
    caller can rebuild its derived state from scratch.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        self._offset = 0

    def read_new(self) -> Optional[List[Dict]]:
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            if self._offset:
                self._offset = 0
                return None
            return []
        if size < self._offset:
            self._offset = 0
            return None
        if size == self._offset:
            return []
        with self.path.open("rb") as handle:
            handle.seek(self._offset)
            data = handle.read(size - self._offset)
        end = data.rfind(b"\n")
        if end < 0:
            return []
        self._offset += end + 1
        records: List[Dict] = []
        for raw in data[:end].splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                records.append(json.loads(raw.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError):
                # A line torn by a crash that later appends restored; the
                # record it belonged to was never committed.
                continue
        return records


class RunStore:
    """Artifact store for one campaign run directory."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / _OUTCOMES_DIR).mkdir(exist_ok=True)
        self._append_lock = threading.Lock()
        self._cache: Optional[PersistentVerdictCache] = None
        self._reachability: Optional[PersistentReachabilityCache] = None
        #: Open append handles per file, so per-cell commits don't pay two
        #: opens each; every append still flushes before returning.
        self._handles: Dict[Path, object] = {}
        #: Incremental readers + derived state, so resume/report replay is
        #: linear in file size instead of rescanning whole shards per cell.
        self._shard_tails: Dict[Path, _JsonlTail] = {}
        self._shard_groups: Dict[Path, Dict[Tuple[str, str], List[Dict]]] = {}
        self._completed_tail: Optional[_JsonlTail] = None
        self._completed_markers: Dict[CellKey, CellMarker] = {}
        #: Monotonic per-process attempt salt; combined with the PID it makes
        #: attempt tokens unique across interrupted runs appending to one shard.
        self._attempt_counter = 0

    def close(self) -> None:
        """Close cached append handles (reopened lazily on the next write)."""
        with self._append_lock:
            for handle in self._handles.values():
                handle.close()
            self._handles.clear()
        if self._cache is not None:
            self._cache.close()
        if self._reachability is not None:
            self._reachability.close()

    def _append_lines(self, path: Path, lines: List[str]) -> None:
        """Append pre-serialized lines and flush; caller holds no lock."""
        with self._append_lock:
            handle = self._handles.get(path)
            if handle is None:
                prefix = "\n" if _missing_trailing_newline(path) else ""
                handle = path.open("a", encoding="utf-8")
                if prefix:
                    # Restore the line boundary after a torn tail so the
                    # first new record can't merge with the dead partial line.
                    handle.write(prefix)
                self._handles[path] = handle
            handle.write("".join(line + "\n" for line in lines))
            handle.flush()

    # -- manifest ---------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST_NAME

    def read_manifest(self) -> Optional[Dict]:
        if not self.manifest_path.exists():
            return None
        return json.loads(self.manifest_path.read_text(encoding="utf-8"))

    def write_manifest(self, manifest: Dict) -> None:
        """Write the manifest atomically (tmp file + rename)."""
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2, default=str) + "\n", encoding="utf-8")
        os.replace(tmp, self.manifest_path)

    def begin_run(self, config: Dict, resume_only: bool = False) -> Dict:
        """Open (or create) the manifest for a campaign with ``config``.

        Raises :class:`ResumeMismatchError` when the directory already holds
        a differently-configured campaign, or when ``resume_only`` is set and
        there is nothing to resume.
        """
        digest = config_hash(config)
        existing = self.read_manifest()
        if existing is not None:
            if existing.get("config_hash") != digest:
                raise ResumeMismatchError(
                    f"run directory {self.root} holds campaign "
                    f"{existing.get('config_hash')!r}, requested {digest!r}; "
                    "use a fresh --run-dir or matching configuration"
                )
            manifest = dict(existing)
            manifest["status"] = "running"
            manifest["resumes"] = int(existing.get("resumes", 0)) + (1 if resume_only else 0)
        else:
            if resume_only:
                raise ResumeMismatchError(
                    f"run directory {self.root} has no manifest to resume"
                )
            manifest = {
                # Version 2: the engine backend left the config hash (it is
                # semantics-neutral).  Version-1 run directories therefore
                # hash differently and resume only into a fresh --run-dir.
                "version": 2,
                "config_hash": digest,
                "config": config,
                "status": "running",
                "resumes": 0,
            }
        self.write_manifest(manifest)
        return manifest

    def finish_run(self, stats: Optional[Dict] = None) -> None:
        """Mark the run complete, optionally recording the run's cache stats.

        ``stats`` (verdict / reachability / step-cache hit rates, family
        sweep counters — see
        :meth:`repro.core.scheduler.VerificationService.run_stats`) lands in
        the manifest so ``repro report`` can show cache behaviour long after
        the process that ran the campaign is gone.
        """
        manifest = self.read_manifest()
        if manifest is not None:
            manifest["status"] = "complete"
            if stats is not None:
                manifest["stats"] = stats
            self.write_manifest(manifest)

    # -- persistent verdict cache ----------------------------------------------

    def verdict_cache(self) -> PersistentVerdictCache:
        """The run's persistent verdict cache (one instance per store)."""
        if self._cache is None:
            self._cache = PersistentVerdictCache(self.root / _VERDICTS_NAME)
        return self._cache

    def reachability_cache(self) -> PersistentReachabilityCache:
        """The run's persistent reachability cache (one instance per store).

        Keyed by design fingerprint + engine caps, so warm reruns of a
        campaign skip the reachable-state BFS for every unchanged design.
        """
        if self._reachability is None:
            self._reachability = PersistentReachabilityCache(
                self.root / _REACHABILITY_NAME
            )
        return self._reachability

    # -- outcome shards and the commit log ---------------------------------------

    def shard_path(self, model_name: str, k: int) -> Path:
        return self.root / _OUTCOMES_DIR / f"{_slug(model_name)}-k{k}.jsonl"

    @property
    def completed_path(self) -> Path:
        return self.root / _COMPLETED_NAME

    def record_cell(
        self,
        model_name: str,
        k: int,
        design_name: str,
        outcomes: Sequence[AssertionOutcome],
    ) -> None:
        """Durably record one completed cell.

        Outcome records are appended to the (model, k) shard first; the
        completion marker in ``completed.jsonl`` is the commit point.
        """
        with self._append_lock:
            self._attempt_counter += 1
            attempt = f"{os.getpid()}-{self._attempt_counter}"
        cell = {"model": model_name, "k": k, "design": design_name}
        self._append_lines(
            self.shard_path(model_name, k),
            [
                json.dumps(
                    {
                        **cell,
                        "attempt": attempt,
                        "idx": index,
                        "outcome": outcome_to_json(outcome),
                    },
                    separators=_COMPACT,
                )
                for index, outcome in enumerate(outcomes)
            ],
        )
        self._append_lines(
            self.completed_path,
            [json.dumps({**cell, "attempt": attempt, "count": len(outcomes)}, separators=_COMPACT)],
        )

    def completed_cells(self) -> Dict[CellKey, CellMarker]:
        """All committed cells; the last marker per cell wins.

        Incremental: only commit-log bytes appended since the previous call
        are parsed, so polling this during a campaign stays cheap.
        """
        if self._completed_tail is None:
            self._completed_tail = _JsonlTail(self.completed_path)
        new = self._completed_tail.read_new()
        if new is None:  # the log shrank — rebuild from scratch
            self._completed_markers = {}
            new = self._completed_tail.read_new() or []
        for record in new:
            cell: CellKey = (record["model"], record["k"], record["design"])
            self._completed_markers[cell] = CellMarker(
                cell, record["attempt"], record["count"]
            )
        return dict(self._completed_markers)

    def load_cell(
        self, model_name: str, k: int, design_name: str
    ) -> Optional[List[AssertionOutcome]]:
        """Load one committed cell's outcomes, or ``None`` if uncommitted."""
        marker = self.completed_cells().get((model_name, k, design_name))
        if marker is None:
            return None
        return self.load_marked(marker)

    def _shard_records(self, model_name: str, k: int) -> Dict[Tuple[str, str], List[Dict]]:
        """Shard records grouped by (design, attempt), parsed incrementally."""
        path = self.shard_path(model_name, k)
        tail = self._shard_tails.get(path)
        if tail is None:
            tail = _JsonlTail(path)
            self._shard_tails[path] = tail
            self._shard_groups[path] = {}
        new = tail.read_new()
        if new is None:  # the shard shrank — rebuild from scratch
            self._shard_groups[path] = {}
            new = tail.read_new() or []
        groups = self._shard_groups[path]
        for record in new:
            groups.setdefault((record["design"], record["attempt"]), []).append(record)
        return groups

    def load_marked(self, marker: CellMarker) -> List[AssertionOutcome]:
        """Load the outcome records committed by ``marker``, in record order."""
        model_name, k, design_name = marker.cell
        records = list(
            self._shard_records(model_name, k).get((design_name, marker.attempt), [])
        )
        records.sort(key=lambda record: record["idx"])
        if len(records) != marker.count:
            raise RuntimeError(
                f"cell {marker.cell} committed {marker.count} records but "
                f"{len(records)} are present in {self.shard_path(model_name, k)}"
            )
        return [outcome_from_json(record["outcome"]) for record in records]

    def load_matrix(self) -> EvaluationMatrix:
        """Reassemble the :class:`EvaluationMatrix` of every committed cell.

        Designs appear in commit order within each (model, k) result, which
        matches campaign order because cells are committed as they stream.
        """
        matrix = EvaluationMatrix()
        by_sweep: Dict[Tuple[str, int], ModelKshotResult] = {}
        for cell, marker in self.completed_cells().items():
            model_name, k, design_name = cell
            sweep = by_sweep.get((model_name, k))
            if sweep is None:
                sweep = ModelKshotResult(model_name=model_name, k=k)
                by_sweep[(model_name, k)] = sweep
                matrix.add(sweep)
            evaluation = DesignEvaluation(design_name=design_name)
            evaluation.outcomes.extend(self.load_marked(marker))
            sweep.designs.append(evaluation)
        return matrix

    # -- the mutation log ---------------------------------------------------------

    @property
    def mutations_path(self) -> Path:
        return self.root / _MUTATIONS_NAME

    def append_mutation_records(self, records: Sequence) -> None:
        """Append mutation verdict records (``MutationRecord`` instances)."""
        self._append_lines(
            self.mutations_path,
            [json.dumps(record.to_json(), separators=_COMPACT) for record in records],
        )

    def append_mutation_marker(
        self,
        design_name: str,
        fingerprint: str,
        assertions: Sequence[str],
        stats: Dict[str, int],
        config: Optional[Dict] = None,
        mutants: Optional[Sequence[str]] = None,
    ) -> None:
        """Commit one design's mutation sweep (all its records are appended).

        ``config`` is the mutation configuration the sweep ran under and
        ``mutants`` the sweep's mutant addresses (``operator@site``); a
        rerun only honours the marker when its config matches, and rebuilds
        the sweep's summary from exactly those addresses.
        """
        self._append_lines(
            self.mutations_path,
            [
                json.dumps(
                    {
                        "kind": "design",
                        "design": design_name,
                        "fingerprint": fingerprint,
                        "assertions": list(assertions),
                        "stats": dict(stats),
                        "config": config,
                        "mutants": list(mutants) if mutants is not None else None,
                    }
                )
            ],
        )

    def load_mutation_log(self):
        """Replay ``mutations.jsonl``: (verdict records, per-design markers).

        The last marker per design wins; verdict records deduplicate by
        content key with the last write winning, matching every other log in
        the store.
        """
        from ..mutate.campaign import MutationRecord

        records: Dict[tuple, MutationRecord] = {}
        markers: Dict[str, Dict] = {}
        for data in _read_jsonl(self.mutations_path):
            kind = data.get("kind", "verdict")
            try:
                if kind == "design":
                    markers[data["design"]] = data
                else:
                    record = MutationRecord.from_json(data)
                    records[record.key] = record
            except (KeyError, TypeError, ValueError):
                continue  # torn or legacy record; rescoring is always safe
        return list(records.values()), markers

    # -- diagnostics -------------------------------------------------------------

    def describe(self) -> Dict:
        """Run-directory summary used by the CLI ``report`` verb."""
        manifest = self.read_manifest() or {}
        cells = self.completed_cells()
        cache = self.verdict_cache()
        return {
            "root": str(self.root),
            "status": manifest.get("status", "absent"),
            "config_hash": manifest.get("config_hash", ""),
            "resumes": manifest.get("resumes", 0),
            "completed_cells": len(cells),
            "persistent_verdicts": len(cache),
        }


def _slug(name: str) -> str:
    """Filesystem-safe shard name component."""
    return "".join(ch if ch.isalnum() else "_" for ch in name).strip("_") or "model"


def _missing_trailing_newline(path: Path) -> bool:
    """True when the file exists, is non-empty, and has a torn last line."""
    try:
        size = path.stat().st_size
    except FileNotFoundError:
        return False
    if size == 0:
        return False
    with path.open("rb") as handle:
        handle.seek(-1, os.SEEK_END)
        return handle.read(1) != b"\n"


def _read_jsonl(path: Path) -> Iterable[Dict]:
    """Yield parsed records, tolerating a torn final line from a crash."""
    if not path.exists():
        return
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                # A partially-flushed trailing line; everything before the
                # commit marker is still consistent, so skip it.
                continue
