"""Formal property verification: transition systems, proof engine, verdicts."""

from .engine import (
    EngineConfig,
    FormalEngine,
    ReachabilityCache,
    check_assertion,
    design_fingerprint,
    reachability_key,
)
from .result import Counterexample, ProofResult, ProofStatus, error_result
from .trace_check import TraceChecker, TraceCheckResult, check_on_trace
from .transition import (
    ReachabilityResult,
    TransitionStep,
    TransitionSystem,
    enumerate_reachable,
)

__all__ = [
    "Counterexample",
    "EngineConfig",
    "FormalEngine",
    "ProofResult",
    "ProofStatus",
    "ReachabilityCache",
    "ReachabilityResult",
    "TraceCheckResult",
    "TraceChecker",
    "TransitionStep",
    "TransitionSystem",
    "check_assertion",
    "check_on_trace",
    "design_fingerprint",
    "enumerate_reachable",
    "error_result",
    "reachability_key",
]
