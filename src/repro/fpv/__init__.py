"""Formal property verification: transition systems, proof engine, verdicts."""

from .engine import EngineConfig, FormalEngine, check_assertion
from .result import Counterexample, ProofResult, ProofStatus, error_result
from .trace_check import TraceChecker, TraceCheckResult, check_on_trace
from .transition import (
    ReachabilityResult,
    TransitionStep,
    TransitionSystem,
    enumerate_reachable,
)

__all__ = [
    "Counterexample",
    "EngineConfig",
    "FormalEngine",
    "ProofResult",
    "ProofStatus",
    "ReachabilityResult",
    "TraceCheckResult",
    "TraceChecker",
    "TransitionStep",
    "TransitionSystem",
    "check_assertion",
    "check_on_trace",
    "enumerate_reachable",
    "error_result",
]
