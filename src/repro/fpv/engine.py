"""Formal property verification engine.

This is the reproduction's stand-in for Cadence JasperGold (Figure 4, step 4
of the paper): given a design and an assertion it returns one of the four
verdicts of Figure 2 — proven, vacuous, counterexample, or error.

Two proof strategies are used:

* **Exhaustive explicit-state checking** — when the design's free-input space
  is enumerable and the reachable state set fits within the configured caps,
  the engine enumerates every reachable state and every input path of the
  assertion's temporal depth.  The verdict is then *complete*: PROVEN means
  the assertion holds on all reachable behaviour, VACUOUS means its
  antecedent can never match, CEX comes with a concrete witness path.
* **Simulation falsification** — for designs beyond those caps the engine
  runs long constrained-random simulations and checks the assertion on the
  traces.  A violation still yields a genuine CEX; the absence of violations
  yields a *bounded* PROVEN/VACUOUS verdict (``ProofResult.complete`` False),
  mirroring how bounded proofs are reported by commercial tools.

The engine is *batched*: :meth:`FormalEngine.check_batch` is the core
primitive.  It sweeps the reachable state × input space **once** per design
and advances every pending assertion's antecedent/consequent obligations
together, so one :meth:`~repro.fpv.transition.TransitionSystem.step` per
(state, inputs) pair is shared across the whole batch.  Per-assertion
evaluation budgets and verdict semantics are identical to checking each
assertion alone; :meth:`check` and :meth:`check_all` are thin wrappers over a
batch of one / the full batch.

With the ``vectorized`` backend the sweep is *array-oriented*: the design is
lowered to the NumPy kernel of :mod:`repro.sim.vector`, the whole reachable
state × input grid is advanced in a handful of ``step_packed`` calls, every
assertion proposition becomes a boolean truth matrix, and depth-0
obligations are decided by pure array reductions.  Deeper obligations run
the same path search as the scalar sweep but on table lookups.  Budgets,
verdicts, and counterexample trigger cycles are identical to the scalar
backends, which remain the reference oracles (any design or term the
lowering rejects transparently falls back to the scalar sweep).

Reachability results can be shared across engines and processes through a
:class:`ReachabilityCache` keyed by design fingerprint + engine caps — warm
campaign reruns then skip the BFS entirely (see
:meth:`repro.core.store.RunStore.reachability_cache`).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..hdl.design import Design
from ..hdl.errors import HdlError
from ..sim.compile import VECTORIZED, default_backend, make_evaluator
from ..sim.eval import EvalError
from ..sim.simulator import Simulator
from ..sim.stimulus import RandomStimulus, ResetSequenceStimulus
from ..sva.checker import bind
from ..sva.errors import SvaError
from ..sva.model import Assertion, SequenceTerm
from ..sva.parser import parse_assertion
from .result import Counterexample, ProofResult, ProofStatus, error_result
from .trace_check import TraceChecker
from .transition import ReachabilityResult, State, TransitionSystem, enumerate_reachable


@dataclass
class EngineConfig:
    """Resource limits and fallback parameters for the FPV engine."""

    max_states: int = 8192
    max_transitions: int = 400_000
    max_input_bits: int = 12
    #: Designs with more state bits than this go straight to simulation
    #: falsification (explicit-state reachability would not terminate within
    #: the caps anyway, so the attempt is not worth its cost).
    max_state_bits: int = 16
    max_path_evaluations: int = 400_000
    fallback_cycles: int = 1500
    fallback_seeds: int = 3
    reset_cycles: int = 2
    #: Evaluation backend: "vectorized", "compiled", "interpreted", or None
    #: for the process-wide default (see
    #: :func:`repro.sim.compile.default_backend`).
    backend: Optional[str] = None


def design_fingerprint(source: str) -> str:
    """Stable content hash of design source text."""
    return hashlib.sha256(source.encode()).hexdigest()[:16]


def fallback_stimuli(config: EngineConfig) -> List[ResetSequenceStimulus]:
    """The falsification stimuli an engine simulates for one design.

    The single source of truth for the recipe: the family verifier batches
    these exact stimuli through the family kernel and preloads the traces,
    so any change here automatically changes both paths together.
    """
    return [
        ResetSequenceStimulus(
            RandomStimulus(seed=seed), reset_cycles=config.reset_cycles
        )
        for seed in range(config.fallback_seeds)
    ]


#: Cache key for one design's reachability: source fingerprint plus every
#: engine cap that shapes the exploration.  The evaluation backend is
#: deliberately excluded — all backends produce identical reachable sets, so
#: a warm cache serves every backend.
ReachabilityKey = Tuple[str, int, int, int]


def reachability_key(design: Design, config: EngineConfig) -> ReachabilityKey:
    return (
        design_fingerprint(design.source),
        config.max_states,
        config.max_transitions,
        config.max_input_bits,
    )


class ReachabilityCache:
    """Thread-safe in-memory cache of per-design reachability results."""

    def __init__(self):
        self._results: Dict[ReachabilityKey, ReachabilityResult] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: ReachabilityKey) -> Optional[ReachabilityResult]:
        with self._lock:
            result = self._results.get(key)
            if result is not None:
                self.hits += 1
            else:
                self.misses += 1
        return result

    def put(self, key: ReachabilityKey, result: ReachabilityResult) -> None:
        with self._lock:
            self._results[key] = result

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"entries": len(self._results), "hits": self.hits, "misses": self.misses}

    def entries(self) -> Dict[ReachabilityKey, ReachabilityResult]:
        """Snapshot of every cached result (worker round-trip support)."""
        with self._lock:
            return dict(self._results)

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)


class _Pending:
    """A consequent failure observed on the current path, awaiting completion.

    The failure only becomes a counterexample if the remaining antecedent
    terms can still match on some continuation of the path (otherwise the
    evaluation attempt never triggers and the failure is moot).
    """

    __slots__ = ("term", "cycles", "completed")

    def __init__(self, term: str, cycles: List[Dict[str, int]]):
        self.term = term
        self.cycles = cycles
        self.completed = False


class _PendingPairs:
    """Vectorized-sweep pending failure: the path as (state, input) indices.

    Environments are only materialised if the failure survives as a
    counterexample.
    """

    __slots__ = ("term", "pairs", "completed")

    def __init__(self, term: str, pairs: List[Tuple[int, int]]):
        self.term = term
        self.pairs = pairs
        self.completed = False


class _Obligation:
    """Per-assertion state carried through one batched exhaustive sweep.

    The antecedent/consequent/disable propositions are pre-lowered to truth
    kernels at batch start, so the sweep's inner loop is free of evaluator
    dispatch: ``antecedent[offset]`` is a tuple of callables, ``consequent``
    pairs each callable with the term's source text for CEX reporting.  The
    raw expression trees are kept alongside for the vectorized sweep, which
    lowers them to truth *matrices* instead.
    """

    __slots__ = (
        "index",
        "assertion",
        "antecedent",
        "consequent",
        "disable",
        "antecedent_exprs",
        "consequent_exprs",
        "disable_expr",
        "depth",
        "budget_used",
        "budget_exhausted",
        "triggered",
        "decided",
        "witness",
        "witness_pairs",
        "error",
    )

    def __init__(self, index: int, assertion: Assertion, term_fn):
        self.index = index
        self.assertion = assertion
        self.antecedent_exprs = {
            offset: tuple(term.expr for term in terms)
            for offset, terms in _terms_by_offset(assertion.antecedent).items()
        }
        self.consequent_exprs = {
            offset: tuple((term.expr, str(term.expr)) for term in terms)
            for offset, terms in _terms_by_offset(
                assertion.consequent_terms_absolute()
            ).items()
        }
        self.disable_expr = assertion.disable_iff
        self.antecedent = {
            offset: tuple(term_fn(expr) for expr in exprs)
            for offset, exprs in self.antecedent_exprs.items()
        }
        self.consequent = {
            offset: tuple((term_fn(expr), text) for expr, text in pairs)
            for offset, pairs in self.consequent_exprs.items()
        }
        self.disable = (
            term_fn(assertion.disable_iff) if assertion.disable_iff is not None else None
        )
        self.depth = assertion.temporal_depth
        self.budget_used = 0
        self.budget_exhausted = False
        self.triggered = False
        self.decided = False
        self.witness: Optional[Tuple[List[Dict[str, int]], str]] = None
        #: (state index, input index) path of a vectorized-sweep witness —
        #: lets a family memo re-materialise the same refutation on another
        #: family member's table without re-running the path search.
        self.witness_pairs: Optional[List[Tuple[int, int]]] = None
        self.error: Optional[str] = None

    def term_exprs(self):
        """Every proposition the sweep must evaluate for this obligation."""
        for exprs in self.antecedent_exprs.values():
            yield from exprs
        for pairs in self.consequent_exprs.values():
            for expr, _ in pairs:
                yield expr
        if self.disable_expr is not None:
            yield self.disable_expr

    def fail(self, message: str) -> None:
        self.error = message
        self.decided = True

    def refute(self, witness: Tuple[List[Dict[str, int]], str]) -> None:
        self.witness = witness
        self.decided = True


class FormalEngine:
    """Check batches of assertions against one design."""

    def __init__(
        self,
        design: Design,
        config: Optional[EngineConfig] = None,
        reachability_cache: Optional[ReachabilityCache] = None,
    ):
        self._design = design
        self._config = config or EngineConfig()
        self._backend = self._config.backend or default_backend()
        self._system = TransitionSystem(
            design,
            max_input_bits=self._config.max_input_bits,
            backend=self._backend,
        )
        self._evaluator = make_evaluator(design.model, self._backend)
        self._checker = TraceChecker(design.model, backend=self._backend)
        self._reachability: Optional[ReachabilityResult] = None
        self._reachability_cache = reachability_cache
        self._fallback_traces: Optional[List] = None
        self._table = None
        self._table_built = False

    @property
    def design(self) -> Design:
        return self._design

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def backend(self) -> str:
        return self._backend

    def lowering_info(self) -> Optional[Dict[str, str]]:
        """Which vector lowering this design got, and why fallbacks happened.

        ``None`` on scalar backends.  On the vectorized backend returns
        ``{"design", "plan", "reason"}`` where ``plan`` is the representation
        the planner picked (``soa``/``bitsliced``/``multilimb``) or
        ``fallback`` when every strategy refused, with ``reason`` carrying
        the per-strategy refusal messages.
        """
        plan = self._system.lowering_plan()
        if plan is None:
            return None
        return {
            "design": self._design.name,
            "plan": plan.plan,
            "reason": plan.reason,
        }

    # -- public API ----------------------------------------------------------------

    def check(self, assertion_or_text: Union[str, Assertion]) -> ProofResult:
        """Check one assertion (text or parsed) and return its verdict."""
        return self.check_batch([assertion_or_text])[0]

    def check_all(
        self, assertions: Iterable[Union[str, Assertion]]
    ) -> List[ProofResult]:
        """Check a batch of assertions (alias of :meth:`check_batch`)."""
        return self.check_batch(assertions)

    def check_batch(
        self, assertions: Iterable[Union[str, Assertion]]
    ) -> List[ProofResult]:
        """Check a batch of assertions with one shared state-space sweep.

        Returns one :class:`ProofResult` per input, in input order.  Verdicts
        (status, completeness, counterexample trigger cycle) are identical to
        checking each assertion on its own.
        """
        items = list(assertions)
        results: List[Optional[ProofResult]] = [None] * len(items)
        exhaustive: List[_Obligation] = []
        by_simulation: List[Tuple[int, Assertion]] = []

        bound: List[Tuple[int, Assertion]] = []
        observed: set = set()
        for index, item in enumerate(items):
            assertion, parse_error = self._to_assertion(item)
            if parse_error is not None:
                results[index] = error_result(parse_error, self._design.name)
                continue
            report = bind(assertion, self._design)
            if not report.ok:
                results[index] = error_result(
                    "; ".join(report.messages), self._design.name, assertion
                )
                continue
            observed |= assertion.signals()
            bound.append((index, assertion))

        if bound:
            # Project cached step environments onto what this batch reads
            # *before* the first reachability walk: BFS and the scalar sweep
            # then memoise a handful of values per transition instead of a
            # full environment copy.
            self._system.observe(observed)

        for index, assertion in bound:
            try:
                if self._can_check_exhaustively(assertion):
                    exhaustive.append(_Obligation(index, assertion, self._term_fn))
                else:
                    by_simulation.append((index, assertion))
            except EvalError as exc:
                results[index] = error_result(
                    f"evaluation error: {exc}", self._design.name, assertion
                )
            except HdlError as exc:
                results[index] = error_result(
                    f"elaboration error: {exc}", self._design.name, assertion
                )

        if exhaustive:
            by_simulation.extend(self._run_exhaustive_batch(exhaustive, results))

        for index, assertion in by_simulation:
            try:
                results[index] = self._check_by_simulation(assertion)
            except EvalError as exc:
                results[index] = error_result(
                    f"evaluation error: {exc}", self._design.name, assertion
                )
            except HdlError as exc:
                results[index] = error_result(
                    f"elaboration error: {exc}", self._design.name, assertion
                )

        return results  # type: ignore[return-value]

    # -- parsing --------------------------------------------------------------------

    def _to_assertion(
        self, assertion_or_text: Union[str, Assertion]
    ) -> Tuple[Optional[Assertion], Optional[str]]:
        if isinstance(assertion_or_text, Assertion):
            return assertion_or_text, None
        try:
            return parse_assertion(assertion_or_text), None
        except SvaError as exc:
            return None, f"syntax error: {exc}"

    # -- strategy selection ------------------------------------------------------------

    def can_check_exhaustively(self, assertion: Union[str, Assertion]) -> bool:
        """True when ``assertion`` would be proved by explicit-state search."""
        if isinstance(assertion, str):
            assertion = parse_assertion(assertion)
        return self._can_check_exhaustively(assertion)

    def _can_check_exhaustively(self, assertion: Assertion) -> bool:
        if not self._system.can_enumerate_inputs:
            return False
        if self._system.state_bits > self._config.max_state_bits:
            return False
        reachability = self._reachable()
        if not reachability.complete:
            return False
        # Rough cost estimate: every reachable state starts one evaluation
        # attempt that fans out over the input space for each cycle of depth.
        depth = assertion.temporal_depth + 1
        cost = reachability.count * (self._system.input_space_size ** min(depth, 2))
        return cost <= self._config.max_path_evaluations * 4

    # -- reachability ---------------------------------------------------------------

    def preload_reachability(self, result: ReachabilityResult) -> None:
        """Adopt a previously-computed reachability result (cache warm-up)."""
        if self._reachability is None:
            self._reachability = result

    def preload_fallback_traces(self, traces: List) -> None:
        """Adopt pre-simulated falsification traces (family batch warm-up).

        The traces must be exactly what :meth:`_fallback_trace_set` would
        simulate — same stimuli, cycle count, and reset sequence — which the
        family verifier guarantees by batching the family's members through
        the one shared kernel.
        """
        if self._fallback_traces is None:
            self._fallback_traces = traces

    def reachability_snapshot(self) -> Optional[ReachabilityResult]:
        """The reachability result computed (or adopted) so far, if any."""
        return self._reachability

    def step_cache_stats(self) -> Dict[str, int]:
        """Hit/miss snapshot of the transition system's step memo cache."""
        return self._system.step_cache_info()

    def explore_reachability(self) -> Optional[ReachabilityResult]:
        """Compute (and cache) the reachable set, if exhaustive search could use it.

        Returns ``None`` without exploring when the design can never be
        checked exhaustively (input space not enumerable, too many state
        bits) — the same guard :meth:`check_batch` applies before its first
        reachability walk, so this never caches a degenerate result the
        normal path would not produce.  The scheduler calls it in the parent
        process before slicing a family across workers, so the shards all
        preload one BFS instead of each re-running it.
        """
        if not self._system.can_enumerate_inputs:
            return None
        if self._system.state_bits > self._config.max_state_bits:
            return None
        return self._reachable()

    def _reachable(self) -> ReachabilityResult:
        if self._reachability is None:
            key = None
            if self._reachability_cache is not None:
                key = reachability_key(self._design, self._config)
                cached = self._reachability_cache.get(key)
                if cached is not None:
                    self._reachability = cached
                    return cached
            self._reachability = enumerate_reachable(
                self._system,
                max_states=self._config.max_states,
                max_transitions=self._config.max_transitions,
            )
            if key is not None:
                self._reachability_cache.put(key, self._reachability)
        return self._reachability

    # -- batched exhaustive explicit-state checking ------------------------------------

    def _transition_table(self, reachability: ReachabilityResult):
        """The dense (states × inputs) table, or None on the scalar backends."""
        if not self._table_built:
            self._table_built = True
            kernel = self._system.vector_kernel()
            if (
                kernel is not None
                and getattr(kernel, "packable", True)
                and reachability.complete
            ):
                from .table import TransitionTable

                self._table = TransitionTable(self._system, kernel, reachability)
        return self._table

    def _run_exhaustive_batch(
        self,
        obligations: List[_Obligation],
        results: List[Optional[ProofResult]],
    ) -> List[Tuple[int, Assertion]]:
        """Sweep the reachable space once, advancing every obligation together.

        Fills ``results`` for every obligation the sweep decides; returns the
        (index, assertion) pairs whose budget was exhausted and that must fall
        back to bounded simulation checking.
        """
        reachability = self._reachable()

        scalar_obligations = obligations
        table = self._transition_table(reachability)
        if table is not None:
            vectorized = [
                obligation
                for obligation in obligations
                if all(table.can_lower(expr) for expr in obligation.term_exprs())
            ]
            if vectorized:
                self._run_vectorized_obligations(vectorized, table)
                chosen = set(map(id, vectorized))
                scalar_obligations = [
                    obligation
                    for obligation in obligations
                    if id(obligation) not in chosen
                ]

        if scalar_obligations:
            for state in reachability.states:
                carriers = [
                    (obligation, None)
                    for obligation in scalar_obligations
                    if not obligation.decided and not obligation.budget_exhausted
                ]
                if not carriers:
                    break
                self._sweep(state, 0, [], carriers)

        fallback: List[Tuple[int, Assertion]] = []
        for obligation in obligations:
            if obligation.budget_exhausted:
                fallback.append((obligation.index, obligation.assertion))
                continue
            results[obligation.index] = self._exhaustive_result(
                obligation, reachability
            )
        return fallback

    # -- the vectorized sweep ----------------------------------------------------------

    def _run_vectorized_obligations(self, obligations: List[_Obligation], table) -> None:
        """Decide obligations on the dense table (verdicts identical to scalar)."""
        terms: List = []
        for obligation in obligations:
            terms.extend(obligation.term_exprs())
        table.ensure_terms(terms)
        for obligation in obligations:
            if obligation.depth == 0:
                self._vec_depth0(obligation, table)
            else:
                self._vec_deep(obligation, table)

    def _witness_names(self):
        observed = self._system.observed_signals
        return observed if observed is not None else None

    def _vec_depth0(self, obligation: _Obligation, table) -> None:
        """Array-reduction fast path for single-cycle obligations.

        Charging order is identical to the scalar sweep — states in
        reachability order, the full input grid per state — so the budget
        cutoff, the refuting (state, input) pair, and the exhaustion point
        all match exactly.
        """
        import numpy as np

        limit = self._config.max_path_evaluations
        S, I = table.shape
        eligible = np.ones(table.shape, dtype=bool)
        if obligation.disable_expr is not None:
            eligible &= ~table.truth(obligation.disable_expr)
        for expr in obligation.antecedent_exprs.get(0, ()):
            eligible &= table.truth(expr)
        trig = eligible
        cons_pairs = obligation.consequent_exprs.get(0, ())
        viol = np.zeros(table.shape, dtype=bool)
        for expr, _ in cons_pairs:
            viol |= ~table.truth(expr)
        viol &= eligible

        total = S * I
        if obligation.budget_used + total <= limit:
            viol_any = viol.any(axis=1)
            if viol_any.any():
                s_star = int(np.argmax(viol_any))
                obligation.budget_used += (s_star + 1) * I
                i_star = int(np.argmax(viol[s_star]))
                self._vec_refute_at(obligation, table, (s_star, i_star), cons_pairs)
            else:
                obligation.budget_used += total
                obligation.triggered = bool(trig.any())
            return

        # Budget may run out mid-sweep: walk states, charging exactly as the
        # scalar loop does.  Only inputs that fit the remaining budget are
        # alive; a violation at an alive input refutes *before* any further
        # input can trip exhaustion (the scalar sweep decides the obligation
        # at the end of that input's iteration and stops charging), while a
        # violation past the cutoff is never seen.
        for s in range(S):
            if obligation.decided or obligation.budget_exhausted:
                break
            remaining = limit - obligation.budget_used
            alive = min(max(remaining, 0), I)
            row_viol = viol[s, :alive]
            if row_viol.any():
                i_star = int(np.argmax(row_viol))
                obligation.budget_used += i_star + 1
                self._vec_refute_at(obligation, table, (s, i_star), cons_pairs)
                break
            obligation.budget_used += alive
            if alive and trig[s, :alive].any():
                obligation.triggered = True
            if alive < I:
                # The next input's charge pushes past the limit.
                obligation.budget_used = limit + 1
                obligation.budget_exhausted = True

    def _vec_refute_at(
        self, obligation: _Obligation, table, pair: Tuple[int, int], cons_pairs
    ) -> None:
        s, i = pair
        failed = next(
            text for expr, text in cons_pairs if not bool(table.truth(expr)[s, i])
        )
        cycles = table.env_rows([pair], self._witness_names())
        obligation.witness_pairs = [pair]
        obligation.refute((cycles, failed))

    def _vec_deep(self, obligation: _Obligation, table, plan=None) -> None:
        """Table-driven path search for multi-cycle obligations.

        A closed-form array pass over the truth matrices first decides
        whether any refuting path exists and what the full search would
        charge (see :func:`_deep_plan`).  Obligations with no refutation are
        decided (or declared exhausted) straight from that plan; only
        obligations that *do* refute — or whose refutation races the budget
        cutoff — run the recursive sweep, which terminates at the first
        refutation anyway.  Verdicts, witnesses, budget exhaustion, and the
        triggered flag are identical to running the recursion everywhere.
        A caller that already computed the plan (the family verifier's
        witness pre-screen) passes it in to avoid a second pass.
        """
        limit = self._config.max_path_evaluations
        if plan is None:
            plan = _deep_plan(obligation, table, limit)
        if not plan.refutable:
            if plan.charges > limit:
                obligation.budget_used = limit + 1
                obligation.budget_exhausted = True
            else:
                obligation.budget_used = plan.charges
                obligation.triggered = plan.triggered
            return
        self._vec_deep_recursive(obligation, table)

    def _vec_deep_recursive(self, obligation: _Obligation, table) -> None:
        """The reference depth-first sweep (used when a refutation exists).

        Mirrors :meth:`_sweep` exactly (same input order, budget charges,
        pending/completion protocol) with truth-matrix lookups in place of
        expression evaluation and index pairs in place of environments.
        """
        antecedent = {
            offset: tuple(table.truth_rows(expr) for expr in exprs)
            for offset, exprs in obligation.antecedent_exprs.items()
        }
        consequent = {
            offset: tuple((table.truth_rows(expr), text) for expr, text in pairs)
            for offset, pairs in obligation.consequent_exprs.items()
        }
        disable = (
            table.truth_rows(obligation.disable_expr)
            if obligation.disable_expr is not None
            else None
        )
        next_rows = table.next_rows()
        num_inputs = table.num_inputs
        limit = self._config.max_path_evaluations

        for s_index in range(table.num_states):
            if obligation.decided or obligation.budget_exhausted:
                break
            self._vec_sweep(
                obligation,
                s_index,
                0,
                [],
                None,
                antecedent,
                consequent,
                disable,
                next_rows,
                num_inputs,
                limit,
                table,
            )

    def _vec_sweep(
        self,
        obligation: _Obligation,
        s_index: int,
        offset: int,
        path: List[Tuple[int, int]],
        pending: Optional[_PendingPairs],
        antecedent,
        consequent,
        disable,
        next_rows,
        num_inputs: int,
        limit: int,
        table,
    ) -> None:
        depth = obligation.depth
        ant_here = antecedent.get(offset)
        cons_here = consequent.get(offset)
        next_row = next_rows[s_index]
        for i in range(num_inputs):
            if obligation.decided or obligation.budget_exhausted:
                return
            obligation.budget_used += 1
            if obligation.budget_used > limit:
                obligation.budget_exhausted = True
                return
            if offset == 0 and disable is not None and disable[s_index][i]:
                continue
            if ant_here is not None:
                matched = True
                for rows in ant_here:
                    if not rows[s_index][i]:
                        matched = False
                        break
                if not matched:
                    continue
            carried = pending
            born: Optional[_PendingPairs] = None
            if carried is None and cons_here is not None:
                for rows, text in cons_here:
                    if not rows[s_index][i]:
                        carried = _PendingPairs(text, path + [(s_index, i)])
                        born = carried
                        break
            if offset == depth:
                obligation.triggered = True
                if carried is not None:
                    carried.completed = True
            else:
                self._vec_sweep(
                    obligation,
                    next_row[i],
                    offset + 1,
                    path + [(s_index, i)],
                    carried,
                    antecedent,
                    consequent,
                    disable,
                    next_rows,
                    num_inputs,
                    limit,
                    table,
                )
            if (
                born is not None
                and born.completed
                and not obligation.decided
                and not obligation.budget_exhausted
            ):
                cycles = table.env_rows(born.pairs, self._witness_names())
                obligation.witness_pairs = list(born.pairs)
                obligation.refute((cycles, born.term))

    # -- the scalar sweep --------------------------------------------------------------

    def _sweep(
        self,
        state: State,
        offset: int,
        path: List[Dict[str, int]],
        carriers: List[Tuple[_Obligation, Optional[_Pending]]],
    ) -> None:
        """One node of the shared depth-first search over input choices.

        ``carriers`` holds every obligation still exploring this path, paired
        with its pending consequent failure (if any).  Budgets are charged per
        (obligation, input) exactly as a standalone check would, so budget
        exhaustion is assertion-local and order-identical to ``check()``.
        """
        limit = self._config.max_path_evaluations
        for inputs in self._system.enumerate_inputs():
            alive: List[Tuple[_Obligation, Optional[_Pending]]] = []
            for obligation, pending in carriers:
                if obligation.decided or obligation.budget_exhausted:
                    continue
                obligation.budget_used += 1
                if obligation.budget_used > limit:
                    obligation.budget_exhausted = True
                    continue
                alive.append((obligation, pending))
            if not alive:
                return
            try:
                step = self._system.step(state, inputs)
            except (EvalError, HdlError) as exc:
                for obligation, _ in alive:
                    obligation.fail(f"evaluation error: {exc}")
                return
            env = step.env
            next_carriers: List[Tuple[_Obligation, Optional[_Pending]]] = []
            born: List[Tuple[_Obligation, _Pending]] = []
            for obligation, pending in alive:
                try:
                    if offset == 0 and obligation.disable is not None and obligation.disable(env):
                        continue
                    antecedent = obligation.antecedent.get(offset)
                    if antecedent is not None:
                        matched = True
                        for term in antecedent:
                            if not term(env):
                                matched = False
                                break
                        if not matched:
                            continue
                    if pending is None:
                        consequent = obligation.consequent.get(offset)
                        if consequent is not None:
                            for term, text in consequent:
                                if not term(env):
                                    pending = _Pending(text, path + [env])
                                    born.append((obligation, pending))
                                    break
                except EvalError as exc:
                    obligation.fail(f"evaluation error: {exc}")
                    continue
                if offset == obligation.depth:
                    obligation.triggered = True
                    if pending is not None:
                        pending.completed = True
                else:
                    next_carriers.append((obligation, pending))
            if next_carriers:
                self._sweep(step.next_state, offset + 1, path + [env], next_carriers)
            # A failure born at this node becomes a counterexample once some
            # continuation completed the antecedent match (the subtree has now
            # been fully explored, mirroring the standalone search's budget).
            for obligation, pending in born:
                if (
                    pending.completed
                    and not obligation.decided
                    and not obligation.budget_exhausted
                ):
                    obligation.refute((pending.cycles, pending.term))

    def _exhaustive_result(
        self, obligation: _Obligation, reachability: ReachabilityResult
    ) -> ProofResult:
        return assemble_exhaustive_result(
            obligation,
            reachability,
            self._design.name,
            self._system.state_names,
            self._system.input_names,
        )

    def _term_fn(self, expr):
        """Lower a proposition to a truth kernel for the sweep's inner loop."""
        evaluator = self._evaluator
        compile_expr = getattr(evaluator, "compile", None)
        if compile_expr is not None:
            return compile_expr(expr)
        return lambda env, _expr=expr: evaluator.eval(_expr, env)

    # -- simulation falsification -------------------------------------------------------

    def _fallback_trace_set(self) -> List:
        """Build (once) and cache the random traces used for falsification.

        All assertions checked against this design share the same traces, so
        batch verification of a candidate set costs one simulation per seed
        rather than one per assertion.  On the vectorized backend every
        seed's trace is stepped as one lane of a single batch; the traces
        are bit-for-bit identical to the per-seed scalar runs.
        """
        if self._fallback_traces is None:
            stimuli = fallback_stimuli(self._config)
            kernel = self._system.vector_kernel()
            use_batch = False
            if kernel is not None and self._backend == VECTORIZED:
                from ..sim.vector import comb_cycle_independent, simulate_batch

                # Batched stepping wins when the lane count is meaningful:
                # cycle-independent combinational designs settle the whole
                # seeds × cycles grid at once, and wide seed counts amortise
                # the kernel dispatch.  A 2-3 lane sequential batch would pay
                # more per array op than the compiled scalar loop — that
                # holds for every lowering plan, multi-limb included.
                use_batch = (
                    comb_cycle_independent(self._design.model)
                    or self._config.fallback_seeds >= 8
                )
            if use_batch:
                self._fallback_traces = simulate_batch(
                    self._design.model,
                    stimuli,
                    self._config.fallback_cycles,
                    kernel,
                )
            else:
                traces = []
                for stimulus in stimuli:
                    simulator = Simulator(self._design, backend=self._backend)
                    traces.append(
                        simulator.run(
                            cycles=self._config.fallback_cycles, stimulus=stimulus
                        )
                    )
                self._fallback_traces = traces
        return self._fallback_traces

    def _check_by_simulation(self, assertion: Assertion) -> ProofResult:
        checker = self._checker
        triggers = 0
        depth = assertion.temporal_depth
        for seed, trace in enumerate(self._fallback_trace_set()):
            result = checker.check(assertion, trace)
            triggers += result.triggers
            if result.violations:
                start = result.first_violation
                window = trace.window(start, depth + 1)
                cycles = [window.row(i) for i in range(window.num_cycles)]
                return ProofResult(
                    status=ProofStatus.CEX,
                    assertion=assertion,
                    design_name=self._design.name,
                    counterexample=Counterexample(
                        cycles=cycles,
                        trigger_cycle=start,
                        failed_term=result.failed_terms[0],
                    ),
                    reason=f"counterexample found by simulation (seed {seed})",
                    engine="simulation",
                    complete=True,
                    depth=depth,
                )
        status = ProofStatus.PROVEN if triggers else ProofStatus.VACUOUS
        reason = (
            "no violation in bounded random simulation"
            if triggers
            else "antecedent never matched in bounded random simulation"
        )
        return ProofResult(
            status=status,
            assertion=assertion,
            design_name=self._design.name,
            reason=reason,
            engine="simulation",
            complete=False,
            depth=depth,
        )


def assemble_exhaustive_result(
    obligation: _Obligation,
    reachability: ReachabilityResult,
    design_name: str,
    state_names: Sequence[str],
    input_names: Sequence[str],
) -> ProofResult:
    """Turn one decided exhaustive obligation into its :class:`ProofResult`.

    Shared by :class:`FormalEngine` and the family verifier so a mutant's
    result is assembled exactly like a standalone check's.
    """
    assertion = obligation.assertion
    if obligation.error is not None:
        return error_result(obligation.error, design_name, assertion)
    if obligation.witness is not None:
        cycles, failed_term = obligation.witness
        # Canonicalise witness cycles to this assertion's signals (plus
        # state and inputs): identical whether the assertion was checked
        # solo or in a batch, and identical across all three backends.
        keep = set(assertion.signals())
        keep.update(state_names)
        keep.update(input_names)
        return ProofResult(
            status=ProofStatus.CEX,
            assertion=assertion,
            design_name=design_name,
            counterexample=Counterexample(
                cycles=[
                    {name: value for name, value in cycle.items() if name in keep}
                    for cycle in cycles
                ],
                trigger_cycle=0,
                failed_term=failed_term,
            ),
            reason="counterexample found by explicit-state search",
            engine="explicit-state",
            complete=True,
            states_explored=reachability.count,
            depth=obligation.depth,
        )
    status = ProofStatus.PROVEN if obligation.triggered else ProofStatus.VACUOUS
    reason = (
        "holds on all reachable states"
        if obligation.triggered
        else "antecedent unreachable on all reachable states"
    )
    return ProofResult(
        status=status,
        assertion=assertion,
        design_name=design_name,
        reason=reason,
        engine="explicit-state",
        complete=True,
        states_explored=reachability.count,
        depth=obligation.depth,
    )


@dataclass
class _DeepPlan:
    """Closed-form summary of one deep obligation's full path search.

    ``charges`` is exactly what the depth-first sweep would charge if it ran
    to completion without deciding (clamped just past the budget limit, so
    overflow past the cap is indistinguishable from "exhausted" — which is
    all the caller needs).  ``refutable`` is whether *any* completed
    evaluation attempt fails a consequent term somewhere in the path space;
    ``triggered`` whether any attempt completes at all.
    """

    charges: int
    triggered: bool
    refutable: bool


def _deep_plan(obligation: _Obligation, table, limit: int) -> _DeepPlan:
    """Analyse a deep obligation's whole path space with array ops.

    The sweep's DFS explores paths ``state --i0--> state' --i1--> ...`` of
    the assertion's temporal depth, gated per offset by the antecedent truth
    matrices (plus ``disable_iff`` at offset 0).  Three facts about the full
    search are order-independent and therefore computable by forward
    propagation over the dense tables, one level at a time:

    * the number of path nodes per level (every node charges the whole input
      grid), giving the exact budget charge of an undecided sweep;
    * per-state reachability of the path frontier, split by whether some
      consequent term already failed along the way (one "fail" bit);
    * at the final offset: whether any gated attempt completes (triggered)
      and whether any completing attempt carries or incurs a consequent
      failure (a refutation exists).
    """
    import numpy as np

    depth = obligation.depth
    S, I = table.shape
    true_matrix = None

    def gate(offset: int):
        exprs = obligation.antecedent_exprs.get(offset, ())
        matrix = None
        for expr in exprs:
            truth = table.truth(expr)
            matrix = truth if matrix is None else (matrix & truth)
        if offset == 0 and obligation.disable_expr is not None:
            disabled = table.truth(obligation.disable_expr)
            matrix = ~disabled if matrix is None else (matrix & ~disabled)
        if matrix is None:
            nonlocal true_matrix
            if true_matrix is None:
                true_matrix = np.ones((S, I), dtype=bool)
            return true_matrix
        return matrix

    def cons_fail(offset: int):
        pairs = obligation.consequent_exprs.get(offset, ())
        matrix = None
        for expr, _ in pairs:
            failed = ~table.truth(expr)
            matrix = failed if matrix is None else (matrix | failed)
        return matrix  # None means "no consequent terms at this offset"

    next_index = None
    clamp = limit + 1
    counts = np.ones(S, dtype=np.int64)  # paths per state at this level
    reach_ok = np.ones(S, dtype=bool)  # frontier with no failure yet
    reach_fail = np.zeros(S, dtype=bool)  # frontier carrying a failure
    charges = 0

    for offset in range(depth + 1):
        charges = min(charges + int(counts.sum()) * I, clamp)
        gate_matrix = gate(offset)
        fail_matrix = cons_fail(offset)
        if offset == depth:
            ok_attempts = gate_matrix & reach_ok[:, None]
            fail_attempts = gate_matrix & reach_fail[:, None]
            triggered = bool(ok_attempts.any() or fail_attempts.any())
            refutable = bool(fail_attempts.any()) or (
                fail_matrix is not None and bool((ok_attempts & fail_matrix).any())
            )
            return _DeepPlan(charges=charges, triggered=triggered, refutable=refutable)

        if next_index is None:
            next_index = np.asarray(table.next_rows(), dtype=np.int64)

        # Path counts: every gated (node, input) pair spawns one child node.
        spawned = np.bincount(
            next_index.ravel(),
            weights=(counts[:, None] * gate_matrix).ravel(),
            minlength=S,
        )
        counts = np.minimum(spawned, clamp).astype(np.int64)

        # Frontier reachability with the one-bit failure flag.
        ok_pairs = gate_matrix & reach_ok[:, None]
        fail_pairs = gate_matrix & reach_fail[:, None]
        if fail_matrix is not None:
            fail_pairs = fail_pairs | (ok_pairs & fail_matrix)
            ok_pairs = ok_pairs & ~fail_matrix
        next_ok = np.zeros(S, dtype=bool)
        next_fail = np.zeros(S, dtype=bool)
        next_ok[next_index[ok_pairs]] = True
        next_fail[next_index[fail_pairs]] = True
        reach_ok, reach_fail = next_ok, next_fail
        if not reach_ok.any() and not reach_fail.any() and not counts.any():
            # Every path is gated out before reaching the final offset.
            return _DeepPlan(charges=charges, triggered=False, refutable=False)

    raise AssertionError("unreachable: the final offset always returns")


def _terms_by_offset(terms: Sequence[SequenceTerm]) -> Dict[int, List[SequenceTerm]]:
    by_offset: Dict[int, List[SequenceTerm]] = {}
    for term in terms:
        by_offset.setdefault(term.offset, []).append(term)
    return by_offset


def check_assertion(
    design: Design,
    assertion_or_text: Union[str, Assertion],
    config: Optional[EngineConfig] = None,
) -> ProofResult:
    """Convenience wrapper: check one assertion against one design."""
    return FormalEngine(design, config).check(assertion_or_text)
