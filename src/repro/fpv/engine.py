"""Formal property verification engine.

This is the reproduction's stand-in for Cadence JasperGold (Figure 4, step 4
of the paper): given a design and an assertion it returns one of the four
verdicts of Figure 2 — proven, vacuous, counterexample, or error.

Two proof strategies are used:

* **Exhaustive explicit-state checking** — when the design's free-input space
  is enumerable and the reachable state set fits within the configured caps,
  the engine enumerates every reachable state and every input path of the
  assertion's temporal depth.  The verdict is then *complete*: PROVEN means
  the assertion holds on all reachable behaviour, VACUOUS means its
  antecedent can never match, CEX comes with a concrete witness path.
* **Simulation falsification** — for designs beyond those caps the engine
  runs long constrained-random simulations and checks the assertion on the
  traces.  A violation still yields a genuine CEX; the absence of violations
  yields a *bounded* PROVEN/VACUOUS verdict (``ProofResult.complete`` False),
  mirroring how bounded proofs are reported by commercial tools.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..hdl.design import Design
from ..hdl.errors import HdlError
from ..sim.eval import EvalError, ExprEvaluator
from ..sim.simulator import Simulator
from ..sim.stimulus import RandomStimulus, ResetSequenceStimulus
from ..sva.checker import bind
from ..sva.errors import SvaError
from ..sva.model import Assertion, SequenceTerm
from ..sva.parser import parse_assertion
from .result import Counterexample, ProofResult, ProofStatus, error_result
from .trace_check import TraceChecker
from .transition import ReachabilityResult, State, TransitionSystem, enumerate_reachable


@dataclass
class EngineConfig:
    """Resource limits and fallback parameters for the FPV engine."""

    max_states: int = 8192
    max_transitions: int = 400_000
    max_input_bits: int = 12
    #: Designs with more state bits than this go straight to simulation
    #: falsification (explicit-state reachability would not terminate within
    #: the caps anyway, so the attempt is not worth its cost).
    max_state_bits: int = 16
    max_path_evaluations: int = 400_000
    fallback_cycles: int = 1500
    fallback_seeds: int = 3
    reset_cycles: int = 2


class _Budget:
    """Mutable evaluation budget shared by one exhaustive check."""

    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def spend(self, amount: int = 1) -> bool:
        self.used += amount
        return self.used <= self.limit


class FormalEngine:
    """Check assertions against one design."""

    def __init__(self, design: Design, config: Optional[EngineConfig] = None):
        self._design = design
        self._config = config or EngineConfig()
        self._system = TransitionSystem(
            design, max_input_bits=self._config.max_input_bits
        )
        self._evaluator = ExprEvaluator(design.model)
        self._reachability: Optional[ReachabilityResult] = None
        self._fallback_traces: Optional[List] = None

    @property
    def design(self) -> Design:
        return self._design

    @property
    def config(self) -> EngineConfig:
        return self._config

    # -- public API ----------------------------------------------------------------

    def check(self, assertion_or_text: Union[str, Assertion]) -> ProofResult:
        """Check one assertion (text or parsed) and return its verdict."""
        assertion, parse_error = self._to_assertion(assertion_or_text)
        if parse_error is not None:
            return error_result(parse_error, self._design.name)

        report = bind(assertion, self._design)
        if not report.ok:
            return error_result(
                "; ".join(report.messages), self._design.name, assertion
            )

        try:
            if self._can_check_exhaustively(assertion):
                return self._check_exhaustive(assertion)
            return self._check_by_simulation(assertion)
        except EvalError as exc:
            return error_result(f"evaluation error: {exc}", self._design.name, assertion)
        except HdlError as exc:
            return error_result(f"elaboration error: {exc}", self._design.name, assertion)

    def check_all(
        self, assertions: Iterable[Union[str, Assertion]]
    ) -> List[ProofResult]:
        """Check a batch of assertions."""
        return [self.check(item) for item in assertions]

    # -- parsing --------------------------------------------------------------------

    def _to_assertion(
        self, assertion_or_text: Union[str, Assertion]
    ) -> Tuple[Optional[Assertion], Optional[str]]:
        if isinstance(assertion_or_text, Assertion):
            return assertion_or_text, None
        try:
            return parse_assertion(assertion_or_text), None
        except SvaError as exc:
            return None, f"syntax error: {exc}"

    # -- strategy selection ------------------------------------------------------------

    def _can_check_exhaustively(self, assertion: Assertion) -> bool:
        if not self._system.can_enumerate_inputs:
            return False
        if self._system.state_bits > self._config.max_state_bits:
            return False
        reachability = self._reachable()
        if not reachability.complete:
            return False
        # Rough cost estimate: every reachable state starts one evaluation
        # attempt that fans out over the input space for each cycle of depth.
        depth = assertion.temporal_depth + 1
        cost = reachability.count * (self._system.input_space_size ** min(depth, 2))
        return cost <= self._config.max_path_evaluations * 4

    def _reachable(self) -> ReachabilityResult:
        if self._reachability is None:
            self._reachability = enumerate_reachable(
                self._system,
                max_states=self._config.max_states,
                max_transitions=self._config.max_transitions,
            )
        return self._reachability

    # -- exhaustive explicit-state checking ----------------------------------------------

    def _check_exhaustive(self, assertion: Assertion) -> ProofResult:
        reachability = self._reachable()
        depth = assertion.temporal_depth
        antecedent = _terms_by_offset(assertion.antecedent)
        consequent = _terms_by_offset(assertion.consequent_terms_absolute())
        budget = _Budget(self._config.max_path_evaluations)

        triggered = False
        for state in reachability.states:
            outcome = self._explore(
                assertion, state, 0, depth, antecedent, consequent, [], budget
            )
            if outcome is None:
                # Budget exhausted: drop to bounded simulation checking.
                return self._check_by_simulation(assertion)
            path_triggered, witness = outcome
            triggered = triggered or path_triggered
            if witness is not None:
                cycles, failed_term = witness
                return ProofResult(
                    status=ProofStatus.CEX,
                    assertion=assertion,
                    design_name=self._design.name,
                    counterexample=Counterexample(
                        cycles=cycles, trigger_cycle=0, failed_term=failed_term
                    ),
                    reason="counterexample found by explicit-state search",
                    engine="explicit-state",
                    complete=True,
                    states_explored=reachability.count,
                    depth=depth,
                )

        status = ProofStatus.PROVEN if triggered else ProofStatus.VACUOUS
        reason = (
            "holds on all reachable states"
            if triggered
            else "antecedent unreachable on all reachable states"
        )
        return ProofResult(
            status=status,
            assertion=assertion,
            design_name=self._design.name,
            reason=reason,
            engine="explicit-state",
            complete=True,
            states_explored=reachability.count,
            depth=depth,
        )

    def _explore(
        self,
        assertion: Assertion,
        state: State,
        offset: int,
        depth: int,
        antecedent: Dict[int, List[SequenceTerm]],
        consequent: Dict[int, List[SequenceTerm]],
        path: List[Dict[str, int]],
        budget: _Budget,
    ) -> Optional[Tuple[bool, Optional[Tuple[List[Dict[str, int]], str]]]]:
        """Depth-first search over input choices for one evaluation attempt.

        Returns ``(antecedent_can_match, witness)`` where ``witness`` is a
        (cycles, failed term) pair if a violating path exists, or ``None`` for
        the whole tuple when the evaluation budget is exhausted.
        """
        triggered_any = False
        for inputs in self._system.enumerate_inputs():
            if not budget.spend():
                return None
            step = self._system.step(state, inputs)
            env = step.env
            if offset == 0 and assertion.disable_iff is not None:
                if self._truth(assertion.disable_iff, env):
                    continue
            if not self._terms_hold(antecedent.get(offset, ()), env):
                continue
            failed_term = self._first_failed(consequent.get(offset, ()), env)
            new_path = path + [env]
            if offset == depth:
                triggered_any = True
                if failed_term is not None:
                    return True, (new_path, failed_term)
                continue
            if failed_term is not None:
                # A consequent term already failed; the attempt is violated as
                # soon as the remaining antecedent terms can still match.
                outcome = self._explore(
                    assertion,
                    step.next_state,
                    offset + 1,
                    depth,
                    antecedent,
                    {},
                    new_path,
                    budget,
                )
                if outcome is None:
                    return None
                deeper_triggered, _ = outcome
                if deeper_triggered:
                    return True, (new_path, failed_term)
                continue
            outcome = self._explore(
                assertion,
                step.next_state,
                offset + 1,
                depth,
                antecedent,
                consequent,
                new_path,
                budget,
            )
            if outcome is None:
                return None
            deeper_triggered, witness = outcome
            triggered_any = triggered_any or deeper_triggered
            if witness is not None:
                return True, witness
        return triggered_any, None

    def _terms_hold(self, terms: Sequence[SequenceTerm], env: Dict[str, int]) -> bool:
        return all(self._truth(term.expr, env) for term in terms)

    def _first_failed(
        self, terms: Sequence[SequenceTerm], env: Dict[str, int]
    ) -> Optional[str]:
        for term in terms:
            if not self._truth(term.expr, env):
                return str(term.expr)
        return None

    def _truth(self, expr, env: Dict[str, int]) -> bool:
        return bool(self._evaluator.eval(expr, env))

    # -- simulation falsification -------------------------------------------------------

    def _fallback_trace_set(self) -> List:
        """Build (once) and cache the random traces used for falsification.

        All assertions checked against this design share the same traces, so
        batch verification of a candidate set costs one simulation per seed
        rather than one per assertion.
        """
        if self._fallback_traces is None:
            traces = []
            for seed in range(self._config.fallback_seeds):
                simulator = Simulator(self._design)
                stimulus = ResetSequenceStimulus(
                    RandomStimulus(seed=seed), reset_cycles=self._config.reset_cycles
                )
                traces.append(
                    simulator.run(cycles=self._config.fallback_cycles, stimulus=stimulus)
                )
            self._fallback_traces = traces
        return self._fallback_traces

    def _check_by_simulation(self, assertion: Assertion) -> ProofResult:
        checker = TraceChecker(self._design.model)
        triggers = 0
        depth = assertion.temporal_depth
        for seed, trace in enumerate(self._fallback_trace_set()):
            result = checker.check(assertion, trace)
            triggers += result.triggers
            if result.violations:
                start = result.first_violation
                window = trace.window(start, depth + 1)
                cycles = [window.row(i) for i in range(window.num_cycles)]
                return ProofResult(
                    status=ProofStatus.CEX,
                    assertion=assertion,
                    design_name=self._design.name,
                    counterexample=Counterexample(
                        cycles=cycles,
                        trigger_cycle=start,
                        failed_term=result.failed_terms[0],
                    ),
                    reason=f"counterexample found by simulation (seed {seed})",
                    engine="simulation",
                    complete=True,
                    depth=depth,
                )
        status = ProofStatus.PROVEN if triggers else ProofStatus.VACUOUS
        reason = (
            "no violation in bounded random simulation"
            if triggers
            else "antecedent never matched in bounded random simulation"
        )
        return ProofResult(
            status=status,
            assertion=assertion,
            design_name=self._design.name,
            reason=reason,
            engine="simulation",
            complete=False,
            depth=depth,
        )


def _terms_by_offset(terms: Sequence[SequenceTerm]) -> Dict[int, List[SequenceTerm]]:
    by_offset: Dict[int, List[SequenceTerm]] = {}
    for term in terms:
        by_offset.setdefault(term.offset, []).append(term)
    return by_offset


def check_assertion(
    design: Design,
    assertion_or_text: Union[str, Assertion],
    config: Optional[EngineConfig] = None,
) -> ProofResult:
    """Convenience wrapper: check one assertion against one design."""
    return FormalEngine(design, config).check(assertion_or_text)
