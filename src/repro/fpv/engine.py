"""Formal property verification engine.

This is the reproduction's stand-in for Cadence JasperGold (Figure 4, step 4
of the paper): given a design and an assertion it returns one of the four
verdicts of Figure 2 — proven, vacuous, counterexample, or error.

Two proof strategies are used:

* **Exhaustive explicit-state checking** — when the design's free-input space
  is enumerable and the reachable state set fits within the configured caps,
  the engine enumerates every reachable state and every input path of the
  assertion's temporal depth.  The verdict is then *complete*: PROVEN means
  the assertion holds on all reachable behaviour, VACUOUS means its
  antecedent can never match, CEX comes with a concrete witness path.
* **Simulation falsification** — for designs beyond those caps the engine
  runs long constrained-random simulations and checks the assertion on the
  traces.  A violation still yields a genuine CEX; the absence of violations
  yields a *bounded* PROVEN/VACUOUS verdict (``ProofResult.complete`` False),
  mirroring how bounded proofs are reported by commercial tools.

The engine is *batched*: :meth:`FormalEngine.check_batch` is the core
primitive.  It sweeps the reachable state × input space **once** per design
and advances every pending assertion's antecedent/consequent obligations
together, so one :meth:`~repro.fpv.transition.TransitionSystem.step` per
(state, inputs) pair is shared across the whole batch.  Per-assertion
evaluation budgets and verdict semantics are identical to checking each
assertion alone; :meth:`check` and :meth:`check_all` are thin wrappers over a
batch of one / the full batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..hdl.design import Design
from ..hdl.errors import HdlError
from ..sim.compile import default_backend, make_evaluator
from ..sim.eval import EvalError
from ..sim.simulator import Simulator
from ..sim.stimulus import RandomStimulus, ResetSequenceStimulus
from ..sva.checker import bind
from ..sva.errors import SvaError
from ..sva.model import Assertion, SequenceTerm
from ..sva.parser import parse_assertion
from .result import Counterexample, ProofResult, ProofStatus, error_result
from .trace_check import TraceChecker
from .transition import ReachabilityResult, State, TransitionSystem, enumerate_reachable


@dataclass
class EngineConfig:
    """Resource limits and fallback parameters for the FPV engine."""

    max_states: int = 8192
    max_transitions: int = 400_000
    max_input_bits: int = 12
    #: Designs with more state bits than this go straight to simulation
    #: falsification (explicit-state reachability would not terminate within
    #: the caps anyway, so the attempt is not worth its cost).
    max_state_bits: int = 16
    max_path_evaluations: int = 400_000
    fallback_cycles: int = 1500
    fallback_seeds: int = 3
    reset_cycles: int = 2
    #: Evaluation backend: "compiled", "interpreted", or None for the
    #: process-wide default (see :func:`repro.sim.compile.default_backend`).
    backend: Optional[str] = None


class _Pending:
    """A consequent failure observed on the current path, awaiting completion.

    The failure only becomes a counterexample if the remaining antecedent
    terms can still match on some continuation of the path (otherwise the
    evaluation attempt never triggers and the failure is moot).
    """

    __slots__ = ("term", "cycles", "completed")

    def __init__(self, term: str, cycles: List[Dict[str, int]]):
        self.term = term
        self.cycles = cycles
        self.completed = False


class _Obligation:
    """Per-assertion state carried through one batched exhaustive sweep.

    The antecedent/consequent/disable propositions are pre-lowered to truth
    kernels at batch start, so the sweep's inner loop is free of evaluator
    dispatch: ``antecedent[offset]`` is a tuple of callables, ``consequent``
    pairs each callable with the term's source text for CEX reporting.
    """

    __slots__ = (
        "index",
        "assertion",
        "antecedent",
        "consequent",
        "disable",
        "depth",
        "budget_used",
        "budget_exhausted",
        "triggered",
        "decided",
        "witness",
        "error",
    )

    def __init__(self, index: int, assertion: Assertion, term_fn):
        self.index = index
        self.assertion = assertion
        self.antecedent = {
            offset: tuple(term_fn(term.expr) for term in terms)
            for offset, terms in _terms_by_offset(assertion.antecedent).items()
        }
        self.consequent = {
            offset: tuple((term_fn(term.expr), str(term.expr)) for term in terms)
            for offset, terms in _terms_by_offset(
                assertion.consequent_terms_absolute()
            ).items()
        }
        self.disable = (
            term_fn(assertion.disable_iff) if assertion.disable_iff is not None else None
        )
        self.depth = assertion.temporal_depth
        self.budget_used = 0
        self.budget_exhausted = False
        self.triggered = False
        self.decided = False
        self.witness: Optional[Tuple[List[Dict[str, int]], str]] = None
        self.error: Optional[str] = None

    def fail(self, message: str) -> None:
        self.error = message
        self.decided = True

    def refute(self, witness: Tuple[List[Dict[str, int]], str]) -> None:
        self.witness = witness
        self.decided = True


class FormalEngine:
    """Check batches of assertions against one design."""

    def __init__(self, design: Design, config: Optional[EngineConfig] = None):
        self._design = design
        self._config = config or EngineConfig()
        self._backend = self._config.backend or default_backend()
        self._system = TransitionSystem(
            design,
            max_input_bits=self._config.max_input_bits,
            backend=self._backend,
        )
        self._evaluator = make_evaluator(design.model, self._backend)
        self._checker = TraceChecker(design.model, backend=self._backend)
        self._reachability: Optional[ReachabilityResult] = None
        self._fallback_traces: Optional[List] = None

    @property
    def design(self) -> Design:
        return self._design

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def backend(self) -> str:
        return self._backend

    # -- public API ----------------------------------------------------------------

    def check(self, assertion_or_text: Union[str, Assertion]) -> ProofResult:
        """Check one assertion (text or parsed) and return its verdict."""
        return self.check_batch([assertion_or_text])[0]

    def check_all(
        self, assertions: Iterable[Union[str, Assertion]]
    ) -> List[ProofResult]:
        """Check a batch of assertions (alias of :meth:`check_batch`)."""
        return self.check_batch(assertions)

    def check_batch(
        self, assertions: Iterable[Union[str, Assertion]]
    ) -> List[ProofResult]:
        """Check a batch of assertions with one shared state-space sweep.

        Returns one :class:`ProofResult` per input, in input order.  Verdicts
        (status, completeness, counterexample trigger cycle) are identical to
        checking each assertion on its own.
        """
        items = list(assertions)
        results: List[Optional[ProofResult]] = [None] * len(items)
        exhaustive: List[_Obligation] = []
        by_simulation: List[Tuple[int, Assertion]] = []

        for index, item in enumerate(items):
            assertion, parse_error = self._to_assertion(item)
            if parse_error is not None:
                results[index] = error_result(parse_error, self._design.name)
                continue
            report = bind(assertion, self._design)
            if not report.ok:
                results[index] = error_result(
                    "; ".join(report.messages), self._design.name, assertion
                )
                continue
            try:
                if self._can_check_exhaustively(assertion):
                    exhaustive.append(_Obligation(index, assertion, self._term_fn))
                else:
                    by_simulation.append((index, assertion))
            except EvalError as exc:
                results[index] = error_result(
                    f"evaluation error: {exc}", self._design.name, assertion
                )
            except HdlError as exc:
                results[index] = error_result(
                    f"elaboration error: {exc}", self._design.name, assertion
                )

        if exhaustive:
            by_simulation.extend(self._run_exhaustive_batch(exhaustive, results))

        for index, assertion in by_simulation:
            try:
                results[index] = self._check_by_simulation(assertion)
            except EvalError as exc:
                results[index] = error_result(
                    f"evaluation error: {exc}", self._design.name, assertion
                )
            except HdlError as exc:
                results[index] = error_result(
                    f"elaboration error: {exc}", self._design.name, assertion
                )

        return results  # type: ignore[return-value]

    # -- parsing --------------------------------------------------------------------

    def _to_assertion(
        self, assertion_or_text: Union[str, Assertion]
    ) -> Tuple[Optional[Assertion], Optional[str]]:
        if isinstance(assertion_or_text, Assertion):
            return assertion_or_text, None
        try:
            return parse_assertion(assertion_or_text), None
        except SvaError as exc:
            return None, f"syntax error: {exc}"

    # -- strategy selection ------------------------------------------------------------

    def _can_check_exhaustively(self, assertion: Assertion) -> bool:
        if not self._system.can_enumerate_inputs:
            return False
        if self._system.state_bits > self._config.max_state_bits:
            return False
        reachability = self._reachable()
        if not reachability.complete:
            return False
        # Rough cost estimate: every reachable state starts one evaluation
        # attempt that fans out over the input space for each cycle of depth.
        depth = assertion.temporal_depth + 1
        cost = reachability.count * (self._system.input_space_size ** min(depth, 2))
        return cost <= self._config.max_path_evaluations * 4

    def _reachable(self) -> ReachabilityResult:
        if self._reachability is None:
            self._reachability = enumerate_reachable(
                self._system,
                max_states=self._config.max_states,
                max_transitions=self._config.max_transitions,
            )
        return self._reachability

    # -- batched exhaustive explicit-state checking ------------------------------------

    def _run_exhaustive_batch(
        self,
        obligations: List[_Obligation],
        results: List[Optional[ProofResult]],
    ) -> List[Tuple[int, Assertion]]:
        """Sweep the reachable space once, advancing every obligation together.

        Fills ``results`` for every obligation the sweep decides; returns the
        (index, assertion) pairs whose budget was exhausted and that must fall
        back to bounded simulation checking.
        """
        reachability = self._reachable()
        for state in reachability.states:
            carriers = [
                (obligation, None)
                for obligation in obligations
                if not obligation.decided and not obligation.budget_exhausted
            ]
            if not carriers:
                break
            self._sweep(state, 0, [], carriers)

        fallback: List[Tuple[int, Assertion]] = []
        for obligation in obligations:
            if obligation.budget_exhausted:
                fallback.append((obligation.index, obligation.assertion))
                continue
            results[obligation.index] = self._exhaustive_result(
                obligation, reachability
            )
        return fallback

    def _sweep(
        self,
        state: State,
        offset: int,
        path: List[Dict[str, int]],
        carriers: List[Tuple[_Obligation, Optional[_Pending]]],
    ) -> None:
        """One node of the shared depth-first search over input choices.

        ``carriers`` holds every obligation still exploring this path, paired
        with its pending consequent failure (if any).  Budgets are charged per
        (obligation, input) exactly as a standalone check would, so budget
        exhaustion is assertion-local and order-identical to ``check()``.
        """
        limit = self._config.max_path_evaluations
        for inputs in self._system.enumerate_inputs():
            alive: List[Tuple[_Obligation, Optional[_Pending]]] = []
            for obligation, pending in carriers:
                if obligation.decided or obligation.budget_exhausted:
                    continue
                obligation.budget_used += 1
                if obligation.budget_used > limit:
                    obligation.budget_exhausted = True
                    continue
                alive.append((obligation, pending))
            if not alive:
                return
            try:
                step = self._system.step(state, inputs)
            except (EvalError, HdlError) as exc:
                for obligation, _ in alive:
                    obligation.fail(f"evaluation error: {exc}")
                return
            env = step.env
            next_carriers: List[Tuple[_Obligation, Optional[_Pending]]] = []
            born: List[Tuple[_Obligation, _Pending]] = []
            for obligation, pending in alive:
                try:
                    if offset == 0 and obligation.disable is not None and obligation.disable(env):
                        continue
                    antecedent = obligation.antecedent.get(offset)
                    if antecedent is not None:
                        matched = True
                        for term in antecedent:
                            if not term(env):
                                matched = False
                                break
                        if not matched:
                            continue
                    if pending is None:
                        consequent = obligation.consequent.get(offset)
                        if consequent is not None:
                            for term, text in consequent:
                                if not term(env):
                                    pending = _Pending(text, path + [env])
                                    born.append((obligation, pending))
                                    break
                except EvalError as exc:
                    obligation.fail(f"evaluation error: {exc}")
                    continue
                if offset == obligation.depth:
                    obligation.triggered = True
                    if pending is not None:
                        pending.completed = True
                else:
                    next_carriers.append((obligation, pending))
            if next_carriers:
                self._sweep(step.next_state, offset + 1, path + [env], next_carriers)
            # A failure born at this node becomes a counterexample once some
            # continuation completed the antecedent match (the subtree has now
            # been fully explored, mirroring the standalone search's budget).
            for obligation, pending in born:
                if (
                    pending.completed
                    and not obligation.decided
                    and not obligation.budget_exhausted
                ):
                    obligation.refute((pending.cycles, pending.term))

    def _exhaustive_result(
        self, obligation: _Obligation, reachability: ReachabilityResult
    ) -> ProofResult:
        assertion = obligation.assertion
        if obligation.error is not None:
            return error_result(obligation.error, self._design.name, assertion)
        if obligation.witness is not None:
            cycles, failed_term = obligation.witness
            return ProofResult(
                status=ProofStatus.CEX,
                assertion=assertion,
                design_name=self._design.name,
                counterexample=Counterexample(
                    cycles=[dict(cycle) for cycle in cycles],
                    trigger_cycle=0,
                    failed_term=failed_term,
                ),
                reason="counterexample found by explicit-state search",
                engine="explicit-state",
                complete=True,
                states_explored=reachability.count,
                depth=obligation.depth,
            )
        status = ProofStatus.PROVEN if obligation.triggered else ProofStatus.VACUOUS
        reason = (
            "holds on all reachable states"
            if obligation.triggered
            else "antecedent unreachable on all reachable states"
        )
        return ProofResult(
            status=status,
            assertion=assertion,
            design_name=self._design.name,
            reason=reason,
            engine="explicit-state",
            complete=True,
            states_explored=reachability.count,
            depth=obligation.depth,
        )

    def _term_fn(self, expr):
        """Lower a proposition to a truth kernel for the sweep's inner loop."""
        evaluator = self._evaluator
        compile_expr = getattr(evaluator, "compile", None)
        if compile_expr is not None:
            return compile_expr(expr)
        return lambda env, _expr=expr: evaluator.eval(_expr, env)

    # -- simulation falsification -------------------------------------------------------

    def _fallback_trace_set(self) -> List:
        """Build (once) and cache the random traces used for falsification.

        All assertions checked against this design share the same traces, so
        batch verification of a candidate set costs one simulation per seed
        rather than one per assertion.
        """
        if self._fallback_traces is None:
            traces = []
            for seed in range(self._config.fallback_seeds):
                simulator = Simulator(self._design, backend=self._backend)
                stimulus = ResetSequenceStimulus(
                    RandomStimulus(seed=seed), reset_cycles=self._config.reset_cycles
                )
                traces.append(
                    simulator.run(cycles=self._config.fallback_cycles, stimulus=stimulus)
                )
            self._fallback_traces = traces
        return self._fallback_traces

    def _check_by_simulation(self, assertion: Assertion) -> ProofResult:
        checker = self._checker
        triggers = 0
        depth = assertion.temporal_depth
        for seed, trace in enumerate(self._fallback_trace_set()):
            result = checker.check(assertion, trace)
            triggers += result.triggers
            if result.violations:
                start = result.first_violation
                window = trace.window(start, depth + 1)
                cycles = [window.row(i) for i in range(window.num_cycles)]
                return ProofResult(
                    status=ProofStatus.CEX,
                    assertion=assertion,
                    design_name=self._design.name,
                    counterexample=Counterexample(
                        cycles=cycles,
                        trigger_cycle=start,
                        failed_term=result.failed_terms[0],
                    ),
                    reason=f"counterexample found by simulation (seed {seed})",
                    engine="simulation",
                    complete=True,
                    depth=depth,
                )
        status = ProofStatus.PROVEN if triggers else ProofStatus.VACUOUS
        reason = (
            "no violation in bounded random simulation"
            if triggers
            else "antecedent never matched in bounded random simulation"
        )
        return ProofResult(
            status=status,
            assertion=assertion,
            design_name=self._design.name,
            reason=reason,
            engine="simulation",
            complete=False,
            depth=depth,
        )


def _terms_by_offset(terms: Sequence[SequenceTerm]) -> Dict[int, List[SequenceTerm]]:
    by_offset: Dict[int, List[SequenceTerm]] = {}
    for term in terms:
        by_offset.setdefault(term.offset, []).append(term)
    return by_offset


def check_assertion(
    design: Design,
    assertion_or_text: Union[str, Assertion],
    config: Optional[EngineConfig] = None,
) -> ProofResult:
    """Convenience wrapper: check one assertion against one design."""
    return FormalEngine(design, config).check(assertion_or_text)
