"""Family-batched formal verification: one vectorized pass for a mutant family.

The mutation stage multiplies the FPV workload by the mutant count, yet each
mutant differs from its golden design at exactly one ``(operator, site)``.
:func:`check_family` exploits that: the golden design and all of its mutants
are lowered into one :class:`~repro.sim.vector.FamilyKernel`, and the whole
``(mutants × reachable states × input grid)`` space is advanced in a handful
of batched kernel calls instead of one full engine run per mutant.

On top of the shared sweep:

* **Delta reachability** — each mutant's breadth-first reachable-state walk
  is replayed over the family's precomputed next-state tables, seeded from
  the golden reachable set: only states whose outgoing transitions actually
  changed (or that escape the golden set entirely) cost new kernel work.
  Order, transition counts, and truncation points are identical to the
  mutant's own scalar BFS, and results land in the shared
  :class:`~repro.fpv.engine.ReachabilityCache` under each member's own key.
* **Obligation memoisation** — the proposition truth matrices are built once
  per family; a mutant whose matrices (and next-state table) are identical
  to the golden design's inherits the golden obligation verdict outright,
  re-materialising only the witness environments.
* **Witness pre-screen** — a mutant carrying a simulation-method
  :class:`~repro.mutate.semantic.DifferenceWitness` replays that witness
  trace once (batched through the family kernel) and harvests cheap kills:
  a trace violation on a mutant whose proof would be complete is a genuine
  counterexample, so the canonical path search can be skipped.  Outcomes
  (killed/survived/timeout/error), statuses, and completeness are identical
  to the per-mutant path; only the CEX representation and the ``engine``
  field reveal the shortcut.  Pass ``witness_screen=False`` for bit-identity
  of the full :class:`~repro.fpv.result.ProofResult` including CEX cycles.

Mutants that cannot ride the family kernel — structure mismatches,
un-lowerable variant expressions, a non-vectorized backend, or an incomplete
golden reachable set — transparently fall back to the ordinary per-mutant
:class:`~repro.fpv.engine.FormalEngine`, whose verdicts are the reference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..hdl.design import Design
from ..hdl.errors import HdlError
from ..sim.compile import VECTORIZED, default_backend
from ..sim.eval import EvalError
from ..sim.vector import PLAN_MULTILIMB, FamilyKernel, FamilyLowering, lower_family
from ..sva.checker import bind
from ..sva.model import Assertion
from .engine import (
    EngineConfig,
    FormalEngine,
    ReachabilityCache,
    _deep_plan,
    _Obligation,
    assemble_exhaustive_result,
    error_result,
    fallback_stimuli,
    reachability_key,
)
from .result import Counterexample, ProofResult, ProofStatus
from .table import ObligationTable, PackedStateIndex
from .trace_check import TraceChecker
from .transition import ReachabilityResult, TransitionSystem

__all__ = ["FamilyStats", "check_family"]

#: Upper bound on family-kernel lanes per call (members × states × inputs).
_SWEEP_CHUNK_LANES = 1 << 18

#: Retained per-member table bytes before the member axis is chunked.
_MEMBER_CHUNK_BYTES = 64 << 20


def _null_term_fn(expr):
    """Obligation term hook for table-only sweeps (kernels never called)."""
    return None


class FamilyStats:
    """Counters describing how one family sweep discharged its work."""

    def __init__(self) -> None:
        self.members = 0
        self.family_members = 0
        self.family_soa_members = 0
        self.family_multilimb_members = 0
        self.fallback_members = 0
        self.memo_reused = 0
        self.screen_kills = 0
        self.delta_escape_states = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "members": self.members,
            "family_members": self.family_members,
            "family_soa_members": self.family_soa_members,
            "family_multilimb_members": self.family_multilimb_members,
            "fallback_members": self.fallback_members,
            "memo_reused": self.memo_reused,
            "screen_kills": self.screen_kills,
            "delta_escape_states": self.delta_escape_states,
        }


# ---------------------------------------------------------------------------
# The family sweep: shared truth matrices + per-member next tables
# ---------------------------------------------------------------------------


class _FamilySweep:
    """Chunked family-kernel sweep over golden reachable states × inputs."""

    def __init__(
        self,
        system: TransitionSystem,
        kernel: FamilyKernel,
        reachability: ReachabilityResult,
    ):
        self.system = system
        self.kernel = kernel
        self.states = list(reachability.states)
        self.num_states = len(self.states)
        grid = system.input_grid
        self.num_inputs = len(grid)
        self.packed_states = np.asarray(
            [kernel.pack_state(state) for state in self.states], dtype=np.int64
        )
        self.packed_grid = kernel.pack_input_grid(grid)
        self._index = PackedStateIndex(
            self.packed_states, sum(kernel.state_widths)
        )

    def golden_index(self, packed: int) -> int:
        """Golden reachable index of a packed state, or -1."""
        return self._index.index(packed)

    def sweep(
        self, members: Sequence[int], exprs: Sequence
    ) -> Tuple[Dict[int, np.ndarray], Dict[Tuple[int, object], np.ndarray]]:
        """One chunked pass serving several members at once.

        Returns ``(next_packed, truths)`` where ``next_packed[member]`` is the
        (states × inputs) packed next-state table and
        ``truths[(member, expr)]`` the boolean truth matrix.
        """
        S, I = self.num_states, self.num_inputs
        members = list(members)
        kernels = [(expr, self.kernel.exprs.compile(expr)) for expr in exprs]
        next_packed = {member: np.empty((S, I), dtype=np.int64) for member in members}
        truths = {
            (member, expr): np.empty((S, I), dtype=bool)
            for member in members
            for expr in exprs
        }
        per_state = max(len(members) * I, 1)
        chunk_states = max(1, _SWEEP_CHUNK_LANES // per_state)
        members_arr = np.asarray(members, dtype=np.int64)
        for start in range(0, S, chunk_states):
            stop = min(start + chunk_states, S)
            count = stop - start
            lanes_per_member = count * I
            member_col = np.repeat(members_arr, lanes_per_member)
            states_rep = np.tile(
                np.repeat(self.packed_states[start:stop], I), len(members)
            )
            inputs_tiled = np.tile(self.packed_grid, count * len(members))
            env, nxt = self.kernel.family_step_packed(
                member_col, states_rep, inputs_tiled
            )
            nxt = nxt.reshape(len(members), count, I)
            for position, member in enumerate(members):
                next_packed[member][start:stop] = nxt[position]
            for expr, expr_kernel in kernels:
                values = self.kernel.bool_lanes(expr_kernel(env), len(member_col))
                values = values.reshape(len(members), count, I)
                for position, member in enumerate(members):
                    truths[(member, expr)][start:stop] = values[position]
        return next_packed, truths

    def member_rows(
        self, member: int, packed_states: Sequence[int], exprs: Sequence
    ) -> Tuple[np.ndarray, Dict[object, np.ndarray]]:
        """Next rows + truth rows for states outside the golden set."""
        count = len(packed_states)
        num_inputs = self.num_inputs
        lanes = count * num_inputs
        member_col = np.full(lanes, member, dtype=np.int64)
        states_rep = np.repeat(np.asarray(packed_states, dtype=np.int64), num_inputs)
        inputs_tiled = np.tile(self.packed_grid, count)
        env, nxt = self.kernel.family_step_packed(member_col, states_rep, inputs_tiled)
        truths: Dict[object, np.ndarray] = {}
        for expr in exprs:
            values = self.kernel.bool_lanes(self.kernel.exprs.compile(expr)(env), lanes)
            truths[expr] = values.reshape(count, num_inputs)
        return nxt.reshape(count, num_inputs), truths


# ---------------------------------------------------------------------------
# Delta reachability
# ---------------------------------------------------------------------------


class _MemberReachability:
    """One mutant's reachable set, walked over the family's tables."""

    def __init__(
        self,
        result: ReachabilityResult,
        order_packed: List[int],
        extra_rows: Dict[int, np.ndarray],
        matches_golden: bool,
    ):
        self.result = result
        self.order_packed = order_packed
        #: next-state rows of states outside the golden reachable set.
        self.extra_rows = extra_rows
        #: True when the walk produced exactly the golden order (no escapes,
        #: no re-ordering, no truncation differences).
        self.matches_golden = matches_golden


def _delta_reachability(
    sweep: _FamilySweep,
    member: int,
    next_packed: np.ndarray,
    max_states: int,
    max_transitions: int,
) -> _MemberReachability:
    """Mutant BFS replayed over precomputed tables, seeded by the golden set.

    States inside the golden reachable set read their outgoing row straight
    from the family sweep; escapes batch one family-kernel call per BFS wave.
    The discovery order, transition counts, and truncation points are
    identical to running the scalar BFS on the mutant alone.
    """
    kernel = sweep.kernel
    num_inputs = sweep.num_inputs
    initial = kernel.pack_state(sweep.system.initial_state())
    visited = {initial}
    order: List[int] = [initial]
    frontier: List[int] = [initial]
    extra_rows: Dict[int, np.ndarray] = {}
    transitions = 0

    def result(complete: bool, exhausted: bool, count: int) -> _MemberReachability:
        states = [kernel.unpack_state(packed) for packed in order]
        reach = ReachabilityResult(
            states=states,
            complete=complete,
            frontier_exhausted=exhausted,
            transitions_explored=count,
        )
        golden_packed = sweep.packed_states
        matches = (
            complete
            and not extra_rows
            and len(order) == len(golden_packed)
            and order == golden_packed.tolist()
        )
        return _MemberReachability(reach, order, extra_rows, matches)

    while frontier:
        next_frontier: List[int] = []
        unknown = [
            packed
            for packed in frontier
            if sweep.golden_index(packed) < 0 and packed not in extra_rows
        ]
        if unknown:
            rows, _ = sweep.member_rows(member, unknown, ())
            for position, packed in enumerate(unknown):
                extra_rows[packed] = rows[position]
        for packed in frontier:
            golden_idx = sweep.golden_index(packed)
            row = next_packed[golden_idx] if golden_idx >= 0 else extra_rows[packed]
            remaining = max_transitions - transitions
            truncated = remaining < num_inputs
            take = row[:remaining] if truncated else row
            new_mask = np.fromiter(
                (value not in visited for value in take.tolist()),
                dtype=bool,
                count=len(take),
            )
            if new_mask.any():
                positions = np.nonzero(new_mask)[0]
                candidates = take[positions]
                _, first_index = np.unique(candidates, return_index=True)
                for k in np.sort(first_index).tolist():
                    value = int(candidates[k])
                    visited.add(value)
                    order.append(value)
                    next_frontier.append(value)
                    if len(order) >= max_states:
                        exact = transitions + int(positions[k]) + 1
                        return result(False, False, exact)
            if truncated:
                return result(False, False, max_transitions + 1)
            transitions += num_inputs
        frontier = next_frontier
    return result(True, True, transitions)


# ---------------------------------------------------------------------------
# Per-member obligation tables
# ---------------------------------------------------------------------------


class _MemberTable(ObligationTable):
    """Obligation-table view of one mutant over the family sweep's data.

    Rows are indexed in the *member's* reachability order; states inside the
    golden set gather their precomputed rows, escape states carry the rows
    computed during the delta walk.  Witness environments re-step the exact
    lanes through the family kernel with this member's id.
    """

    def __init__(
        self,
        sweep: _FamilySweep,
        member: int,
        reach: _MemberReachability,
        next_packed: np.ndarray,
        truths: Dict[Tuple[int, object], np.ndarray],
        exprs: Sequence,
    ):
        super().__init__()
        self._sweep = sweep
        self._member = member
        self.states = list(reach.result.states)
        self.num_states = len(self.states)
        self.num_inputs = sweep.num_inputs
        order = reach.order_packed
        member_index = {packed: idx for idx, packed in enumerate(order)}
        golden_rows = [sweep.golden_index(packed) for packed in order]
        self._packed_order = order

        extra_truths: Dict[int, Dict[object, np.ndarray]] = {}
        escapes = [packed for packed, row in zip(order, golden_rows) if row < 0]
        if escapes and exprs:
            _, truth_rows = sweep.member_rows(member, escapes, exprs)
            for position, packed in enumerate(escapes):
                extra_truths[packed] = {
                    expr: truth_rows[expr][position] for expr in exprs
                }

        # Next-state index matrix in member coordinates.
        next_index = np.empty((self.num_states, self.num_inputs), dtype=np.int64)
        for idx, (packed, golden_row) in enumerate(zip(order, golden_rows)):
            row = next_packed[golden_row] if golden_row >= 0 else reach.extra_rows[packed]
            next_index[idx] = np.fromiter(
                (member_index[int(value)] for value in row.tolist()),
                dtype=np.int64,
                count=self.num_inputs,
            )
        self._next_index = next_index

        for expr in exprs:
            matrix = np.empty((self.num_states, self.num_inputs), dtype=bool)
            family_matrix = truths[(member, expr)]
            for idx, (packed, golden_row) in enumerate(zip(order, golden_rows)):
                if golden_row >= 0:
                    matrix[idx] = family_matrix[golden_row]
                else:
                    matrix[idx] = extra_truths[packed][expr]
            self._truth[expr] = matrix

    def ensure_terms(self, exprs) -> None:
        missing = [expr for expr in exprs if expr not in self._truth]
        if missing:
            raise KeyError(f"family table is missing terms: {missing}")

    def can_lower(self, expr) -> bool:
        try:
            self._sweep.kernel.exprs.compile(expr)
        except Exception:
            return False
        return True

    def env_rows(self, pairs, names=None):
        lanes = len(pairs)
        states = np.asarray(
            [self._packed_order[s] for s, _ in pairs], dtype=np.int64
        )
        inputs = np.asarray(
            [int(self._sweep.packed_grid[i]) for _, i in pairs], dtype=np.int64
        )
        members = np.full(lanes, self._member, dtype=np.int64)
        env, _ = self._sweep.kernel.family_step_packed(members, states, inputs)
        keys = (
            list(names)
            if names is not None
            else list(self._sweep.system.model.signals)
        )
        return [self._sweep.kernel.env_row(env, lane, keys) for lane in range(lanes)]


# ---------------------------------------------------------------------------
# The family verifier
# ---------------------------------------------------------------------------


def _member_exhaustive(
    assertion: Assertion,
    reach: ReachabilityResult,
    system: TransitionSystem,
    config: EngineConfig,
) -> bool:
    """Mirror of :meth:`FormalEngine._can_check_exhaustively` for one member."""
    if not system.can_enumerate_inputs:
        return False
    if system.state_bits > config.max_state_bits:
        return False
    if not reach.complete:
        return False
    depth = assertion.temporal_depth + 1
    cost = reach.count * (system.input_space_size ** min(depth, 2))
    return cost <= config.max_path_evaluations * 4


def check_family(
    golden: Design,
    mutants: Sequence[Design],
    assertions: Sequence,
    config: Optional[EngineConfig] = None,
    reachability_cache: Optional[ReachabilityCache] = None,
    witnesses: Optional[Sequence] = None,
    witness_screen: bool = True,
    stats: Optional[FamilyStats] = None,
) -> List[List[ProofResult]]:
    """Check ``assertions`` against every mutant of one design family.

    Returns one verdict list per mutant, each aligned with ``assertions``.
    Every verdict's outcome classification (and, with ``witness_screen``
    off, the entire :class:`ProofResult` including counterexample cycles) is
    bit-identical to ``FormalEngine(mutant, config).check_batch(assertions)``.

    ``witnesses`` optionally carries each mutant's
    :class:`~repro.mutate.semantic.DifferenceWitness` for the pre-screen.
    """
    config = config or EngineConfig()
    mutants = list(mutants)
    items = list(assertions)
    stats = stats if stats is not None else FamilyStats()
    stats.members += len(mutants)
    if not mutants:
        return []
    if witnesses is None:
        witnesses = [None] * len(mutants)

    backend = config.backend or default_backend()
    lowering: Optional[FamilyLowering] = None
    if backend == VECTORIZED and items:
        lowering = lower_family(golden.model, [mutant.model for mutant in mutants])

    results: List[Optional[List[ProofResult]]] = [None] * len(mutants)

    def run_fallback(position: int) -> None:
        engine = FormalEngine(mutants[position], config, reachability_cache)
        results[position] = engine.check_batch(items)

    if lowering is None:
        for position in range(len(mutants)):
            run_fallback(position)
        stats.fallback_members += len(mutants)
        return results  # type: ignore[return-value]

    family_positions = lowering.accepted()
    accepted = set(family_positions)
    for position in range(len(mutants)):
        if position not in accepted:
            run_fallback(position)
            stats.fallback_members += 1

    if family_positions:
        rescued = 0
        try:
            _check_family_fast(
                golden,
                mutants,
                items,
                config,
                reachability_cache,
                lowering,
                family_positions,
                witnesses,
                witness_screen,
                results,
                stats,
            )
        except (EvalError, HdlError, KeyError, ValueError):
            # The per-mutant engines are the reference; any family-path
            # surprise falls back to them wholesale.
            for position in family_positions:
                if results[position] is None:
                    run_fallback(position)
                    stats.fallback_members += 1
                    rescued += 1
        family_count = len(family_positions) - rescued
        stats.family_members += family_count
        if lowering.plan == PLAN_MULTILIMB:
            stats.family_multilimb_members += family_count
        else:
            stats.family_soa_members += family_count

    for position in range(len(mutants)):
        if results[position] is None:  # pragma: no cover - defensive
            run_fallback(position)
    return results  # type: ignore[return-value]


def _check_family_fast(
    golden: Design,
    mutants: List[Design],
    items: List,
    config: EngineConfig,
    reachability_cache: Optional[ReachabilityCache],
    lowering: FamilyLowering,
    family_positions: List[int],
    witnesses: Sequence,
    witness_screen: bool,
    results: List[Optional[List[ProofResult]]],
    stats: FamilyStats,
) -> None:
    golden_engine = FormalEngine(golden, config, reachability_cache)
    system = golden_engine._system
    limit = config.max_path_evaluations

    # -- parse / bind once for the whole family --------------------------------
    member_results: Dict[int, List[Optional[ProofResult]]] = {
        position: [None] * len(items) for position in family_positions
    }
    bound: List[Tuple[int, Assertion]] = []
    observed: set = set()
    for index, item in enumerate(items):
        assertion, parse_error = golden_engine._to_assertion(item)
        message = None
        if parse_error is not None:
            message = parse_error
        else:
            report = bind(assertion, golden)
            if not report.ok:
                message = "; ".join(report.messages)
        if message is not None:
            for position in family_positions:
                member_results[position][index] = error_result(
                    message, mutants[position].name, assertion
                )
            continue
        observed |= assertion.signals()
        bound.append((index, assertion))
    if bound:
        system.observe(observed)

    enumerable = (
        system.can_enumerate_inputs
        and system.state_bits <= config.max_state_bits
        and getattr(lowering.kernel, "packable", True)
    )
    golden_reach = golden_engine._reachable() if enumerable else None

    if not bound or golden_reach is None or not golden_reach.complete:
        # No exhaustive checking is likely for any member (or the golden
        # set cannot seed the delta walk): run the per-member engines, but
        # still batch their falsification traces through the family kernel —
        # the trace recipe is reachability-independent, and a member that
        # does end up exhaustive simply leaves its preload unused.
        traces = (
            _family_fallback_traces(lowering, family_positions, config)
            if bound
            else None
        )
        for position in family_positions:
            engine = FormalEngine(mutants[position], config, reachability_cache)
            if traces is not None:
                engine.preload_fallback_traces(traces[position])
            results[position] = engine.check_batch(items)
        return

    # -- strategy + obligations on the golden design ---------------------------
    golden_obligations: Dict[int, _Obligation] = {}
    obligation_errors: Dict[int, str] = {}
    engine_indices: List[int] = []  # checked per member through its engine
    table_indices: List[int] = []
    for index, assertion in bound:
        try:
            obligation = _Obligation(index, assertion, golden_engine._term_fn)
        except EvalError as exc:
            obligation_errors[index] = f"evaluation error: {exc}"
            continue
        except HdlError as exc:
            obligation_errors[index] = f"elaboration error: {exc}"
            continue
        if all(
            _can_compile(lowering.kernel, expr) for expr in obligation.term_exprs()
        ):
            golden_obligations[index] = obligation
            table_indices.append(index)
        else:
            engine_indices.append(index)
    for index, message in obligation_errors.items():
        assertion = next(a for i, a in bound if i == index)
        for position in family_positions:
            member_results[position][index] = error_result(
                message, mutants[position].name, assertion
            )

    sweep = _FamilySweep(system, lowering.kernel, golden_reach)
    exprs: List = []
    seen_exprs = set()
    for index in table_indices:
        for expr in golden_obligations[index].term_exprs():
            if expr not in seen_exprs:
                seen_exprs.add(expr)
                exprs.append(expr)

    # Golden tables (member 0) back the memo comparisons for every member.
    golden_next, golden_truths = sweep.sweep([0], exprs)
    golden_next0 = golden_next[0]
    golden_view = _GoldenView(sweep, golden_next0, golden_truths, exprs)
    for obligation in golden_obligations.values():
        _run_table_obligation(golden_engine, obligation, golden_view, limit)

    # Witness-screen traces, batched once for the members that can use them.
    screen_traces = _screen_traces(
        lowering, family_positions, witnesses, witness_screen, bound
    )

    # -- per-member work, chunked along the member axis -------------------------
    bytes_per_member = sweep.num_states * sweep.num_inputs * (8 + max(len(exprs), 1))
    chunk_size = max(1, _MEMBER_CHUNK_BYTES // max(bytes_per_member, 1))
    sim_pending: List[Tuple[int, List[int], ReachabilityResult]] = []

    for chunk_start in range(0, len(family_positions), chunk_size):
        chunk_positions = family_positions[chunk_start : chunk_start + chunk_size]
        chunk_members = [lowering.member_ids[p] for p in chunk_positions]
        next_packed, truths = sweep.sweep(chunk_members, exprs)
        for position, member in zip(chunk_positions, chunk_members):
            mutant = mutants[position]
            reach = _delta_reachability(
                sweep, member, next_packed[member],
                config.max_states, config.max_transitions,
            )
            stats.delta_escape_states += len(reach.extra_rows)
            if reachability_cache is not None:
                reachability_cache.put(
                    reachability_key(mutant, config), reach.result
                )
            leftover: List[int] = list(engine_indices)
            member_table: Optional[_MemberTable] = None
            tables_match = reach.matches_golden and np.array_equal(
                next_packed[member], golden_next0
            )
            for index in table_indices:
                obligation_g = golden_obligations[index]
                assertion = obligation_g.assertion
                if not _member_exhaustive(assertion, reach.result, system, config):
                    leftover.append(index)
                    continue
                if tables_match and all(
                    np.array_equal(
                        truths[(member, expr)], golden_truths[(0, expr)]
                    )
                    for expr in obligation_g.term_exprs()
                ):
                    if obligation_g.witness is not None and member_table is None:
                        member_table = _MemberTable(
                            sweep, member, reach, next_packed[member], truths, exprs
                        )
                    outcome = _memo_result(
                        golden_engine, obligation_g, sweep, member_table,
                        reach, mutant.name,
                    )
                    if outcome is None:
                        leftover.append(index)  # golden exhausted its budget
                    else:
                        member_results[position][index] = outcome
                        stats.memo_reused += 1
                    continue
                if member_table is None:
                    member_table = _MemberTable(
                        sweep, member, reach, next_packed[member], truths, exprs
                    )
                obligation_m = _Obligation(index, assertion, _null_term_fn)
                if obligation_m.depth == 0:
                    golden_engine._vec_depth0(obligation_m, member_table)
                else:
                    plan = _deep_plan(obligation_m, member_table, limit)
                    screened = _screen_obligation(
                        golden_engine, obligation_m, plan, limit,
                        screen_traces.get(position), mutant, reach.result,
                    )
                    if screened is not None:
                        member_results[position][index] = screened
                        stats.screen_kills += 1
                        continue
                    golden_engine._vec_deep(obligation_m, member_table, plan)
                if obligation_m.budget_exhausted:
                    leftover.append(index)
                else:
                    member_results[position][index] = assemble_exhaustive_result(
                        obligation_m, reach.result, mutant.name,
                        system.state_names, system.input_names,
                    )
            if leftover:
                sim_pending.append((position, sorted(set(leftover)), reach.result))
            else:
                results[position] = member_results[position]  # type: ignore[assignment]

    # -- leftover assertions: per-member engines with batched traces ------------
    if sim_pending:
        traces = _family_fallback_traces(
            lowering, [position for position, _, _ in sim_pending], config
        )
        for position, indices, reach_result in sim_pending:
            engine = FormalEngine(mutants[position], config, reachability_cache)
            engine.preload_reachability(reach_result)
            engine.preload_fallback_traces(traces[position])
            verdicts = engine.check_batch([items[i] for i in indices])
            for index, verdict in zip(indices, verdicts):
                member_results[position][index] = verdict
            results[position] = member_results[position]  # type: ignore[assignment]

    for position in family_positions:
        if results[position] is None:
            results[position] = member_results[position]  # type: ignore[assignment]


class _GoldenView(ObligationTable):
    """Golden design's obligation table over the family sweep's member 0."""

    def __init__(self, sweep: _FamilySweep, next_packed, truths, exprs) -> None:
        super().__init__()
        self._sweep = sweep
        self.num_states = sweep.num_states
        self.num_inputs = sweep.num_inputs
        next_index = np.empty((self.num_states, self.num_inputs), dtype=np.int64)
        for idx in range(self.num_states):
            next_index[idx] = np.fromiter(
                (
                    self._sweep.golden_index(int(value))
                    for value in next_packed[idx].tolist()
                ),
                dtype=np.int64,
                count=self.num_inputs,
            )
        if (next_index < 0).any():
            raise ValueError("transition leaves the golden reachable set")
        self._next_index = next_index
        for expr in exprs:
            self._truth[expr] = truths[(0, expr)]

    def env_rows(self, pairs, names=None):
        lanes = len(pairs)
        states = np.asarray(
            [int(self._sweep.packed_states[s]) for s, _ in pairs], dtype=np.int64
        )
        inputs = np.asarray(
            [int(self._sweep.packed_grid[i]) for _, i in pairs], dtype=np.int64
        )
        members = np.zeros(lanes, dtype=np.int64)
        env, _ = self._sweep.kernel.family_step_packed(members, states, inputs)
        keys = (
            list(names)
            if names is not None
            else list(self._sweep.system.model.signals)
        )
        return [self._sweep.kernel.env_row(env, lane, keys) for lane in range(lanes)]


def _can_compile(kernel: FamilyKernel, expr) -> bool:
    try:
        kernel.exprs.compile(expr)
    except Exception:
        return False
    return True


def _run_table_obligation(
    engine: FormalEngine, obligation: _Obligation, table, limit: int
) -> None:
    """Decide one obligation on a dense table (depth-0 or deep)."""
    if obligation.depth == 0:
        engine._vec_depth0(obligation, table)
    else:
        engine._vec_deep(obligation, table)


def _memo_result(
    engine: FormalEngine,
    obligation_g: _Obligation,
    sweep: _FamilySweep,
    member_table: Optional["_MemberTable"],
    reach: _MemberReachability,
    design_name: str,
) -> Optional[ProofResult]:
    """Reuse the golden verdict for a member with identical tables.

    The obligation outcome is a deterministic function of the truth
    matrices, next-state table, and engine budgets — all equal here — so the
    decision transfers wholesale; only a counterexample's environments are
    re-materialised through the member's lanes (``member_table`` is only
    needed — and only built by the caller — in that case).  Returns ``None``
    when the golden obligation exhausted its budget (the member then falls
    back to bounded simulation on its *own* traces, exactly like the
    per-mutant path).
    """
    if obligation_g.budget_exhausted:
        return None
    clone = _Obligation(obligation_g.index, obligation_g.assertion, _null_term_fn)
    clone.triggered = obligation_g.triggered
    clone.error = obligation_g.error
    clone.decided = obligation_g.decided
    if obligation_g.witness is not None:
        if obligation_g.witness_pairs is None or member_table is None:
            return None  # pragma: no cover - vectorized refutes always set pairs
        cycles = member_table.env_rows(
            obligation_g.witness_pairs, engine._witness_names()
        )
        clone.witness = (cycles, obligation_g.witness[1])
    return assemble_exhaustive_result(
        clone,
        reach.result,
        design_name,
        sweep.system.state_names,
        sweep.system.input_names,
    )


def _screen_traces(
    lowering: FamilyLowering,
    family_positions: List[int],
    witnesses: Sequence,
    witness_screen: bool,
    bound: List[Tuple[int, Assertion]],
) -> Dict[int, Tuple]:
    """Replay difference-witness traces for screen-eligible members, batched.

    Returns ``{mutant position: (trace, seed)}``.  Only members carrying a
    simulation-method witness can be screened, and only deep obligations
    benefit, so the batch is skipped entirely when no bound assertion has
    temporal depth.
    """
    if not witness_screen:
        return {}
    if not any(assertion.temporal_depth > 0 for _, assertion in bound):
        return {}
    eligible: List[Tuple[int, int]] = []  # (position, seed)
    for position in family_positions:
        witness = witnesses[position]
        if witness is not None and getattr(witness, "method", "") == "simulation":
            eligible.append((position, int(getattr(witness, "seed", 0))))
    if not eligible:
        return {}
    from ..mutate.semantic import WITNESS_CYCLES, witness_stimulus

    seeds = sorted({seed for _, seed in eligible})
    stimuli = [witness_stimulus(seed) for seed in seeds]
    members = [lowering.member_ids[position] for position, _ in eligible]
    traces = lowering.kernel.family_simulate(members, stimuli, WITNESS_CYCLES)
    seed_slot = {seed: slot for slot, seed in enumerate(seeds)}
    return {
        position: (traces[row][seed_slot[seed]], seed)
        for row, (position, seed) in enumerate(eligible)
    }


def _screen_obligation(
    engine: FormalEngine,
    obligation: _Obligation,
    plan,
    limit: int,
    screen: Optional[Tuple],
    mutant: Design,
    reach: ReachabilityResult,
) -> Optional[ProofResult]:
    """Harvest a cheap kill from the member's difference-witness trace.

    Sound only when the table search would produce a *complete* refutation
    anyway: the caller's deep plan must say a refutation exists within
    budget (so the per-mutant outcome is CEX either way), and the trace
    violation supplies a genuine reachable counterexample.  Depth-0
    obligations are never screened — their array decision is already
    cheaper than a trace check.
    """
    if screen is None:
        return None
    if not plan.refutable or plan.charges > limit:
        return None
    trace, seed = screen
    checker = TraceChecker(mutant.model, backend=engine.backend)
    try:
        result = checker.check(obligation.assertion, trace)
    except EvalError:
        return None
    if not result.violations:
        return None
    start = result.first_violation
    window = trace.window(start, obligation.depth + 1)
    cycles = [window.row(i) for i in range(window.num_cycles)]
    return ProofResult(
        status=ProofStatus.CEX,
        assertion=obligation.assertion,
        design_name=mutant.name,
        counterexample=Counterexample(
            cycles=cycles,
            trigger_cycle=start,
            failed_term=result.failed_terms[0],
        ),
        reason=(
            "counterexample found on the mutant's difference-witness trace "
            f"(seed {seed})"
        ),
        engine="witness-screen",
        complete=True,
        states_explored=reach.count,
        depth=obligation.depth,
    )


def _family_fallback_traces(
    lowering: FamilyLowering,
    positions: List[int],
    config: EngineConfig,
) -> Dict[int, List]:
    """Falsification traces for several members, stepped as one batch.

    Bit-for-bit what each member's own
    :meth:`FormalEngine._fallback_trace_set` would simulate — same stimuli,
    cycles, and reset sequence — so preloading them changes nothing but the
    wall clock.
    """
    stimuli = fallback_stimuli(config)
    members = [lowering.member_ids[position] for position in positions]
    traces = lowering.kernel.family_simulate(
        members, stimuli, config.fallback_cycles
    )
    return {position: traces[row] for row, position in enumerate(positions)}
