"""Proof result model for the formal property verification engine.

The engine returns the same four-way verdict the paper reads off JasperGold
(Figure 2): an assertion is *proven* (valid), *vacuous* (its pre-condition is
unreachable, hence vacuously true), *failed* (a counterexample trace exists),
or *erroneous* (it cannot even be elaborated).  The paper's three evaluation
metrics map onto these verdicts as:

* ``Pass``  = PROVEN + VACUOUS
* ``CEX``   = CEX
* ``Error`` = ERROR
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sva.model import Assertion


class ProofStatus(enum.Enum):
    """Verdict of one formal check."""

    PROVEN = "proven"
    VACUOUS = "vacuous"
    CEX = "cex"
    ERROR = "error"

    @property
    def is_pass(self) -> bool:
        """True for the verdicts the paper's ``Pass`` metric counts."""
        return self in (ProofStatus.PROVEN, ProofStatus.VACUOUS)

    @property
    def is_fail(self) -> bool:
        return self is ProofStatus.CEX

    @property
    def is_error(self) -> bool:
        return self is ProofStatus.ERROR


@dataclass
class Counterexample:
    """A concrete witness refuting an assertion.

    ``cycles`` is a list of full signal snapshots; cycle ``trigger_cycle`` is
    the start of the failing evaluation attempt.
    """

    cycles: List[Dict[str, int]] = field(default_factory=list)
    trigger_cycle: int = 0
    failed_term: str = ""

    @property
    def length(self) -> int:
        return len(self.cycles)

    def format(self, signals: Optional[List[str]] = None) -> str:
        """Render the counterexample as a small waveform table."""
        if not self.cycles:
            return "<empty counterexample>"
        names = signals or sorted(self.cycles[0])
        width = max(len(name) for name in names)
        lines = ["cycle".ljust(width + 2) + " ".join(f"{i:>4d}" for i in range(len(self.cycles)))]
        for name in names:
            row = " ".join(f"{cycle.get(name, 0):>4d}" for cycle in self.cycles)
            lines.append(f"{name.ljust(width + 2)}{row}")
        if self.failed_term:
            lines.append(f"failing consequent term: {self.failed_term}")
        return "\n".join(lines)


@dataclass
class ProofResult:
    """Outcome of checking one assertion against one design."""

    status: ProofStatus
    assertion: Optional[Assertion] = None
    design_name: str = ""
    counterexample: Optional[Counterexample] = None
    reason: str = ""
    engine: str = ""
    complete: bool = True
    states_explored: int = 0
    depth: int = 0

    @property
    def is_pass(self) -> bool:
        return self.status.is_pass

    @property
    def is_fail(self) -> bool:
        return self.status.is_fail

    @property
    def is_error(self) -> bool:
        return self.status.is_error

    def summary(self) -> str:
        """One-line report, similar to an FPV tool's proof table row."""
        text = self.assertion.body_text() if self.assertion is not None else "<unparsed>"
        qualifier = "" if self.complete else " (bounded)"
        detail = f" — {self.reason}" if self.reason else ""
        return f"[{self.status.value.upper()}{qualifier}] {text}{detail}"


def error_result(reason: str, design_name: str = "", assertion: Optional[Assertion] = None) -> ProofResult:
    """Build an ERROR result (syntax or elaboration failure)."""
    return ProofResult(
        status=ProofStatus.ERROR,
        assertion=assertion,
        design_name=design_name,
        reason=reason,
        engine="frontend",
    )
