"""Dense transition table backing the vectorized obligation sweep.

For an exhaustively-checkable design the reachable state set is closed under
the step function, so the whole temporal search space of a batched FPV sweep
is described by two dense tables over (reachable state × input valuation):

* ``next_index[s, i]`` — the reachable-state index reached from state ``s``
  under input ``i`` (one clock), and
* one boolean truth matrix per distinct assertion proposition.

Both are produced by a handful of chunked
:meth:`~repro.sim.vector.VectorKernel.step_packed` calls; the engine's
path-search recursion then runs on table lookups with no expression
evaluation or environment construction in its inner loop.  Witness
environments (counterexample cycles) are re-materialised on demand for the
few (state, input) pairs on a refuting path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..hdl import ast
from ..sim.vector import UnsupportedForVectorization, VectorKernel
from ..sim.eval import EvalError
from .transition import ReachabilityResult, State, TransitionSystem

#: Upper bound on (state chunk × input grid) lanes per kernel call.
_CHUNK_LANES = 1 << 18


class PackedStateIndex:
    """Map packed int64 state values to dense row indices (-1 = absent).

    Small state spaces (≤ 24 bits) use a direct-indexed array; larger ones a
    dict.  Shared by the transition table and the family sweep so the
    threshold and semantics cannot drift apart.
    """

    def __init__(self, packed_states: np.ndarray, state_bits: int):
        count = len(packed_states)
        if state_bits <= 24:
            lookup = np.full(1 << max(state_bits, 1), -1, dtype=np.int64)
            lookup[packed_states] = np.arange(count, dtype=np.int64)
            self._lookup: Optional[np.ndarray] = lookup
            self._lookup_dict: Optional[Dict[int, int]] = None
        else:
            self._lookup = None
            self._lookup_dict = {
                int(packed): index
                for index, packed in enumerate(packed_states.tolist())
            }

    def index(self, packed: int) -> int:
        """Row index of one packed state, or -1."""
        if self._lookup is not None:
            return int(self._lookup[packed])
        return self._lookup_dict.get(packed, -1)

    def indices(self, packed: np.ndarray) -> np.ndarray:
        """Row indices of a packed-state array (vectorized where possible)."""
        if self._lookup is not None:
            return self._lookup[packed]
        lookup_dict = self._lookup_dict
        return np.fromiter(
            (lookup_dict.get(value, -1) for value in packed.tolist()),
            dtype=np.int64,
            count=len(packed),
        )


class ObligationTable:
    """Dense (states × inputs) matrices with cached row-list views.

    The base layer shared by :class:`TransitionTable` (one design) and the
    family member views of :mod:`repro.fpv.incremental` (one mutant riding a
    family sweep): the obligation runners in :mod:`repro.fpv.engine` only
    ever touch this interface, so a mutant's obligations run on exactly the
    same code path as a standalone design's.
    """

    num_states: int = 0
    num_inputs: int = 0

    def __init__(self) -> None:
        self._next_index: Optional[np.ndarray] = None
        self._next_rows: Optional[List[List[int]]] = None
        self._truth: Dict[ast.Expr, np.ndarray] = {}
        self._truth_rows: Dict[ast.Expr, List[List[bool]]] = {}

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.num_states, self.num_inputs)

    def truth(self, expr: ast.Expr) -> np.ndarray:
        """Boolean (states × inputs) truth matrix for a lowered term."""
        return self._truth[expr]

    def truth_rows(self, expr: ast.Expr) -> List[List[bool]]:
        """`truth` as nested Python lists (fast scalar indexing in sweeps)."""
        rows = self._truth_rows.get(expr)
        if rows is None:
            rows = self._truth[expr].tolist()
            self._truth_rows[expr] = rows
        return rows

    def next_rows(self) -> List[List[int]]:
        """Next-state indices as nested Python lists."""
        if self._next_rows is None:
            self._next_rows = self._next_index.tolist()
        return self._next_rows


class TransitionTable(ObligationTable):
    """Reachable-state × input-grid view of one design's transition system."""

    def __init__(
        self,
        system: TransitionSystem,
        kernel: VectorKernel,
        reachability: ReachabilityResult,
    ):
        super().__init__()
        self._system = system
        self._kernel = kernel
        self.states: List[State] = list(reachability.states)
        self.num_states = len(self.states)
        grid = system.input_grid
        self.num_inputs = len(grid)

        self._packed_states = np.asarray(
            [kernel.pack_state(state) for state in self.states], dtype=np.int64
        )
        self._packed_grid = kernel.pack_input_grid(grid)
        self._index = PackedStateIndex(self._packed_states, sum(kernel.state_widths))

    # -- term support -----------------------------------------------------------

    def can_lower(self, expr: ast.Expr) -> bool:
        """True when ``expr`` compiles to a vector kernel."""
        try:
            self._kernel.exprs.compile(expr)
        except (UnsupportedForVectorization, EvalError):
            return False
        return True

    # -- table construction -----------------------------------------------------

    def ensure_terms(self, exprs: Iterable[ast.Expr]) -> None:
        """Materialise truth matrices for any not-yet-computed terms.

        One chunked sweep over (states × inputs) serves every missing term —
        environments are built once per chunk and discarded.  The next-state
        index table is filled on the first call.
        """
        missing = [expr for expr in dict.fromkeys(exprs) if expr not in self._truth]
        need_next = self._next_index is None
        if not missing and not need_next:
            return
        kernels = [(expr, self._kernel.exprs.compile(expr)) for expr in missing]
        S, I = self.shape
        for expr in missing:
            self._truth[expr] = np.zeros((S, I), dtype=bool)
        if need_next:
            self._next_index = np.zeros((S, I), dtype=np.int64)

        chunk_states = max(1, _CHUNK_LANES // max(I, 1))
        for start in range(0, S, chunk_states):
            stop = min(start + chunk_states, S)
            count = stop - start
            lanes = count * I
            states_rep = np.repeat(self._packed_states[start:stop], I)
            inputs_tiled = np.tile(self._packed_grid, count)
            env, next_packed = self._kernel.step_packed(states_rep, inputs_tiled)
            if need_next:
                indices = self._index.indices(next_packed)
                self._next_index[start:stop] = indices.reshape(count, I)
            for expr, kernel in kernels:
                values = self._kernel.bool_lanes(kernel(env), lanes)
                self._truth[expr][start:stop] = values.reshape(count, I)
        if need_next and (self._next_index < 0).any():
            # A complete reachable set is closed under step; a miss means the
            # caller handed us a truncated reachability result.
            raise ValueError("transition leaves the supplied reachable set")

    # -- witness materialisation ------------------------------------------------

    def env_rows(
        self,
        pairs: Sequence[Tuple[int, int]],
        names: Optional[Iterable[str]] = None,
    ) -> List[Dict[str, int]]:
        """Settled environments for specific (state index, input index) pairs.

        Used to rebuild counterexample cycles; the batch is tiny (one lane
        per path node).
        """
        lanes = len(pairs)
        states = np.asarray(
            [int(self._packed_states[s]) for s, _ in pairs], dtype=np.int64
        )
        inputs = np.asarray(
            [int(self._packed_grid[i]) for _, i in pairs], dtype=np.int64
        )
        env, _ = self._kernel.step_packed(states, inputs)
        keys = list(names) if names is not None else list(self._system.model.signals)
        return [self._kernel.env_row(env, lane, keys) for lane in range(lanes)]
