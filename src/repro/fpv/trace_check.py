"""Evaluate assertions over simulation traces.

Used in three places: the FPV engine's simulation-falsification fallback, the
assertion miners' candidate filtering, and the test suite's cross-checks
between formal verdicts and simulated behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..hdl.elaborate import RtlModel
from ..sim.compile import make_evaluator
from ..sim.trace import Trace
from ..sva.model import Assertion


@dataclass
class TraceCheckResult:
    """Summary of evaluating one assertion over one trace."""

    attempts: int = 0
    triggers: int = 0
    violations: int = 0
    violation_cycles: List[int] = field(default_factory=list)
    failed_terms: List[str] = field(default_factory=list)

    @property
    def first_violation(self) -> Optional[int]:
        return self.violation_cycles[0] if self.violation_cycles else None

    @property
    def vacuous(self) -> bool:
        """True when the antecedent never matched anywhere in the trace."""
        return self.triggers == 0

    @property
    def holds(self) -> bool:
        """True when no evaluation attempt was violated."""
        return self.violations == 0


class TraceChecker:
    """Check assertions against recorded traces of one design."""

    def __init__(self, model: RtlModel, backend: Optional[str] = None):
        self._model = model
        self._evaluator = make_evaluator(model, backend)

    def check(self, assertion: Assertion, trace: Trace) -> TraceCheckResult:
        """Evaluate ``assertion`` at every possible start cycle of ``trace``."""
        result = TraceCheckResult()
        depth = assertion.temporal_depth
        consequent = assertion.consequent_terms_absolute()
        last_start = trace.num_cycles - depth - 1
        for start in range(0, last_start + 1):
            result.attempts += 1
            if not self._antecedent_matches(assertion, trace, start):
                continue
            result.triggers += 1
            failed = self._first_failed_consequent(consequent, trace, start)
            if failed is not None:
                result.violations += 1
                result.violation_cycles.append(start)
                result.failed_terms.append(failed)
        return result

    def holds_on(self, assertion: Assertion, trace: Trace) -> bool:
        """True when the assertion has no violation on the trace."""
        return self.check(assertion, trace).holds

    # -- internals -------------------------------------------------------------

    def _antecedent_matches(self, assertion: Assertion, trace: Trace, start: int) -> bool:
        for term in assertion.antecedent:
            env = trace.row(start + term.offset)
            if not self._truth(term.expr, env):
                return False
        if assertion.disable_iff is not None:
            # Disable the attempt when the abort condition holds at its start.
            if self._truth(assertion.disable_iff, trace.row(start)):
                return False
        return True

    def _first_failed_consequent(self, consequent, trace: Trace, start: int) -> Optional[str]:
        for term in consequent:
            env = trace.row(start + term.offset)
            if not self._truth(term.expr, env):
                return str(term.expr)
        return None

    def _truth(self, expr, env: Dict[str, int]) -> bool:
        value = self._evaluator.eval(expr, env)
        return bool(value)


def check_on_trace(assertion: Assertion, trace: Trace, model: RtlModel) -> TraceCheckResult:
    """Convenience wrapper for one-off trace checks."""
    return TraceChecker(model).check(assertion, trace)
