"""Finite transition system extracted from an elaborated RTL model.

The FPV engine explores the design as a finite-state machine whose state is
the vector of register values and whose transitions are labelled by primary
input valuations.  This module provides the state encoding, input-space
enumeration, and the single-cycle image computation shared by reachability
analysis and path checking.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..hdl.design import Design
from ..hdl.elaborate import RtlModel
from ..sim.compile import CombSettle, make_evaluator, make_executor

State = Tuple[int, ...]
InputVector = Tuple[int, ...]


@dataclass(frozen=True)
class TransitionStep:
    """One explored transition: the settled environment and the next state."""

    env: Dict[str, int]
    next_state: State


class TransitionSystem:
    """State-space view of one design."""

    def __init__(self, design_or_model, max_input_bits: int = 14, backend: Optional[str] = None):
        if isinstance(design_or_model, Design):
            self._model: RtlModel = design_or_model.model
        else:
            self._model = design_or_model
        self._evaluator = make_evaluator(self._model, backend)
        self._executor = make_executor(self._model, self._evaluator)
        self._settler = CombSettle(self._model, self._evaluator, self._executor)
        self._state_names: List[str] = list(self._model.state_regs)
        self._input_names: List[str] = list(self._model.non_clock_inputs)
        self._max_input_bits = max_input_bits
        self._step_cache: Dict[Tuple[State, InputVector], TransitionStep] = {}
        self._step_cache_limit = 200_000

    # -- basic properties -------------------------------------------------------

    @property
    def model(self) -> RtlModel:
        return self._model

    @property
    def state_names(self) -> List[str]:
        return self._state_names

    @property
    def input_names(self) -> List[str]:
        return self._input_names

    @property
    def state_bits(self) -> int:
        return sum(self._model.signals[name].width for name in self._state_names)

    @property
    def input_bits(self) -> int:
        return sum(self._model.signals[name].width for name in self._input_names)

    @property
    def input_space_size(self) -> int:
        size = 1
        for name in self._input_names:
            size *= self._model.signals[name].max_value + 1
        return size

    @property
    def can_enumerate_inputs(self) -> bool:
        return self.input_bits <= self._max_input_bits

    # -- state encoding -----------------------------------------------------------

    def initial_state(self) -> State:
        values = []
        for name in self._state_names:
            signal = self._model.signals[name]
            values.append(self._model.initial_values.get(name, 0) & signal.mask)
        return tuple(values)

    def state_dict(self, state: State) -> Dict[str, int]:
        return dict(zip(self._state_names, state))

    def encode_state(self, values: Dict[str, int]) -> State:
        return tuple(values.get(name, 0) for name in self._state_names)

    # -- input enumeration -----------------------------------------------------------

    def enumerate_inputs(self) -> Iterator[Dict[str, int]]:
        """Yield every input valuation (clock excluded)."""
        if not self._input_names:
            yield {}
            return
        ranges = [
            range(self._model.signals[name].max_value + 1) for name in self._input_names
        ]
        for combo in itertools.product(*ranges):
            yield dict(zip(self._input_names, combo))

    def sample_inputs(self, rng, count: int) -> Iterator[Dict[str, int]]:
        """Yield ``count`` random input valuations."""
        for _ in range(count):
            yield {
                name: rng.randint(0, self._model.signals[name].max_value)
                for name in self._input_names
            }

    # -- image computation ----------------------------------------------------------

    def settle(self, state: State, inputs: Dict[str, int]) -> Dict[str, int]:
        """Return the full settled environment for (state, inputs)."""
        env = {name: 0 for name in self._model.signals}
        env.update(self.state_dict(state))
        for name, value in inputs.items():
            env[name] = value & self._model.signals[name].mask
        for clock in self._model.clocks:
            if clock in env:
                env[clock] = 0
        self._settle_comb(env)
        return env

    def step(self, state: State, inputs: Dict[str, int]) -> TransitionStep:
        """Compute the settled environment and the post-clock next state.

        Results are memoised on (state, input vector): the FPV engine revisits
        the same transitions many times while checking a batch of assertions.
        """
        key = (state, tuple(inputs.get(name, 0) for name in self._input_names))
        cached = self._step_cache.get(key)
        if cached is not None:
            return TransitionStep(env=dict(cached.env), next_state=cached.next_state)
        step = self._compute_step(state, inputs)
        if len(self._step_cache) >= self._step_cache_limit:
            self._step_cache.clear()
        self._step_cache[key] = TransitionStep(env=dict(step.env), next_state=step.next_state)
        return step

    def _compute_step(self, state: State, inputs: Dict[str, int]) -> TransitionStep:
        env = self.settle(state, inputs)
        next_values: Dict[str, int] = {}
        for process in self._model.seq_processes:
            self._executor.run_sequential(
                process.body, env, next_values, targets=process.targets
            )
        next_state_values = dict(zip(self._state_names, state))
        for name in self._state_names:
            if name in next_values:
                next_state_values[name] = next_values[name]
        return TransitionStep(env=env, next_state=self.encode_state(next_state_values))

    def _settle_comb(self, env: Dict[str, int], max_iterations: int = 64) -> None:
        # Combinational loops are rejected at simulation time; the engine treats
        # a non-settling design conservatively by keeping the last environment.
        self._settler.run(env, max_iterations)


@dataclass
class ReachabilityResult:
    """Result of (possibly bounded) reachable-state enumeration."""

    states: List[State]
    complete: bool
    frontier_exhausted: bool
    transitions_explored: int

    @property
    def count(self) -> int:
        return len(self.states)


def enumerate_reachable(
    system: TransitionSystem,
    max_states: int = 20000,
    max_transitions: int = 2_000_000,
) -> ReachabilityResult:
    """Breadth-first reachable-state enumeration from the initial state.

    Exploration is exact (every input valuation) when the input space is small
    enough to enumerate; otherwise the result is marked incomplete and the
    caller should fall back to simulation-based checking.
    """
    if not system.can_enumerate_inputs:
        return ReachabilityResult(
            states=[system.initial_state()],
            complete=False,
            frontier_exhausted=False,
            transitions_explored=0,
        )

    initial = system.initial_state()
    visited = {initial}
    order: List[State] = [initial]
    frontier: List[State] = [initial]
    transitions = 0
    complete = True

    while frontier:
        next_frontier: List[State] = []
        for state in frontier:
            for inputs in system.enumerate_inputs():
                transitions += 1
                if transitions > max_transitions:
                    return ReachabilityResult(order, False, False, transitions)
                step = system.step(state, inputs)
                if step.next_state not in visited:
                    visited.add(step.next_state)
                    order.append(step.next_state)
                    next_frontier.append(step.next_state)
                    if len(order) >= max_states:
                        return ReachabilityResult(order, False, False, transitions)
        frontier = next_frontier

    return ReachabilityResult(order, complete, True, transitions)
