"""Finite transition system extracted from an elaborated RTL model.

The FPV engine explores the design as a finite-state machine whose state is
the vector of register values and whose transitions are labelled by primary
input valuations.  This module provides the state encoding, input-space
enumeration, and the single-cycle image computation shared by reachability
analysis and path checking.

Two evaluation strategies coexist:

* the scalar path (:meth:`TransitionSystem.step`) computes one settled
  environment per (state, input) pair through the interpreted or compiled
  backend, with a bounded memo cache;
* the vectorized path (:meth:`TransitionSystem.vector_kernel`) lowers the
  model to the NumPy structure-of-arrays kernel of :mod:`repro.sim.vector`
  and advances the whole BFS frontier × input grid in one
  ``step_packed`` call.  :func:`enumerate_reachable` uses it automatically
  when the system was built with the ``vectorized`` backend, reproducing the
  scalar exploration order exactly (same state order, same transition
  counts, same truncation points).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..hdl.design import Design
from ..hdl.elaborate import RtlModel
from ..sim.compile import VECTORIZED, CombSettle, default_backend, make_evaluator, make_executor

State = Tuple[int, ...]
InputVector = Tuple[int, ...]

#: How many entries a full step cache drops at once.  Bounded FIFO eviction:
#: a mid-BFS cap evicts the oldest eighth instead of dumping the entire
#: working set the way the old wholesale ``clear()`` did.
_EVICTION_FRACTION = 8


@dataclass(frozen=True)
class TransitionStep:
    """One explored transition: the settled environment and the next state.

    When the owning system has an observation set (:meth:`TransitionSystem.
    observe`), ``env`` is restricted to the observed signals; otherwise it is
    the full settled environment.
    """

    env: Dict[str, int]
    next_state: State


class TransitionSystem:
    """State-space view of one design."""

    def __init__(self, design_or_model, max_input_bits: int = 14, backend: Optional[str] = None):
        if isinstance(design_or_model, Design):
            self._model: RtlModel = design_or_model.model
        else:
            self._model = design_or_model
        self._backend = backend or default_backend()
        self._evaluator = make_evaluator(self._model, self._backend)
        self._executor = make_executor(self._model, self._evaluator)
        self._settler = CombSettle(self._model, self._evaluator, self._executor)
        self._state_names: List[str] = list(self._model.state_regs)
        self._input_names: List[str] = list(self._model.non_clock_inputs)
        self._max_input_bits = max_input_bits
        self._step_cache: Dict[Tuple[State, InputVector], TransitionStep] = {}
        self._step_cache_limit = 200_000
        self._step_cache_hits = 0
        self._step_cache_misses = 0
        #: Signals kept in cached/returned step environments; None = all.
        self._observed: Optional[frozenset] = None
        self._input_grid: Optional[Tuple[InputVector, ...]] = None
        self._input_dicts: Optional[List[Dict[str, int]]] = None
        self._kernel = None
        self._kernel_built = False
        self._plan = None

    # -- basic properties -------------------------------------------------------

    @property
    def model(self) -> RtlModel:
        return self._model

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def state_names(self) -> List[str]:
        return self._state_names

    @property
    def input_names(self) -> List[str]:
        return self._input_names

    @property
    def state_bits(self) -> int:
        return sum(self._model.signals[name].width for name in self._state_names)

    @property
    def input_bits(self) -> int:
        return sum(self._model.signals[name].width for name in self._input_names)

    @property
    def input_space_size(self) -> int:
        size = 1
        for name in self._input_names:
            size *= self._model.signals[name].max_value + 1
        return size

    @property
    def can_enumerate_inputs(self) -> bool:
        return self.input_bits <= self._max_input_bits

    # -- the vectorized kernel --------------------------------------------------

    def vector_kernel(self):
        """The NumPy :class:`~repro.sim.vector.VectorKernel`, or ``None``.

        Only systems built with the ``vectorized`` backend lower a kernel;
        models every lowering strategy rejects (or a missing NumPy) quietly
        fall back to the scalar path.  :meth:`lowering_plan` reports which
        representation the planner picked and why fallbacks happened.
        """
        if not self._kernel_built:
            self._kernel_built = True
            if self._backend == VECTORIZED:
                try:
                    from ..sim.vector import plan_model
                except ImportError:  # pragma: no cover - numpy not installed
                    plan_model = None
                if plan_model is not None:
                    self._plan = plan_model(self._model)
                    self._kernel = self._plan.kernel
        return self._kernel

    def lowering_plan(self):
        """The :class:`~repro.sim.vector.LoweringPlan` behind
        :meth:`vector_kernel`, or ``None`` for scalar backends."""
        self.vector_kernel()
        return self._plan

    # -- state encoding -----------------------------------------------------------

    def initial_state(self) -> State:
        values = []
        for name in self._state_names:
            signal = self._model.signals[name]
            values.append(self._model.initial_values.get(name, 0) & signal.mask)
        return tuple(values)

    def state_dict(self, state: State) -> Dict[str, int]:
        return dict(zip(self._state_names, state))

    def encode_state(self, values: Dict[str, int]) -> State:
        return tuple(values.get(name, 0) for name in self._state_names)

    # -- input enumeration -----------------------------------------------------------

    @property
    def input_grid(self) -> Tuple[InputVector, ...]:
        """Every input valuation as a tuple, in enumeration order.

        Computed once per system and shared by :meth:`enumerate_inputs`,
        reachability analysis, and the vectorized kernel — the old code
        regenerated the full grid of dicts for every visited state.
        """
        if self._input_grid is None:
            if not self._input_names:
                self._input_grid = ((),)
            else:
                ranges = [
                    range(self._model.signals[name].max_value + 1)
                    for name in self._input_names
                ]
                self._input_grid = tuple(itertools.product(*ranges))
        return self._input_grid

    def input_dicts(self) -> List[Dict[str, int]]:
        """The input grid as shared name->value dicts (do not mutate)."""
        if self._input_dicts is None:
            names = self._input_names
            self._input_dicts = [dict(zip(names, combo)) for combo in self.input_grid]
        return self._input_dicts

    def enumerate_inputs(self) -> Iterator[Dict[str, int]]:
        """Yield every input valuation (clock excluded).

        The yielded dicts are shared, precomputed instances; treat them as
        read-only.  Systems whose input space is not enumerable fall back to
        a lazy product so callers can still stream a prefix without
        materialising the grid.
        """
        if not self.can_enumerate_inputs:
            names = self._input_names
            ranges = [
                range(self._model.signals[name].max_value + 1) for name in names
            ]
            for combo in itertools.product(*ranges):
                yield dict(zip(names, combo))
            return
        yield from self.input_dicts()

    def sample_inputs(self, rng, count: int) -> Iterator[Dict[str, int]]:
        """Yield ``count`` random input valuations."""
        for _ in range(count):
            yield {
                name: rng.randint(0, self._model.signals[name].max_value)
                for name in self._input_names
            }

    # -- observation (step-cache projection) ------------------------------------

    def observe(self, names) -> None:
        """Restrict cached step environments to ``names`` (plus state/inputs).

        The FPV engine calls this with the union of signals its current
        assertion batch references, so the memo cache stores a handful of
        values per transition instead of a full environment copy.  Widening
        the observation set invalidates existing (narrower) entries.
        """
        wanted = (frozenset(names) & frozenset(self._model.signals)) | frozenset(
            self._state_names
        ) | frozenset(self._input_names)
        if self._observed is not None and wanted <= self._observed:
            return
        if self._observed is None:
            self._observed = wanted
        else:
            self._observed = self._observed | wanted
        self._step_cache.clear()

    @property
    def observed_signals(self) -> Optional[frozenset]:
        return self._observed

    # -- image computation ----------------------------------------------------------

    def settle(self, state: State, inputs: Dict[str, int]) -> Dict[str, int]:
        """Return the full settled environment for (state, inputs)."""
        env = {name: 0 for name in self._model.signals}
        env.update(self.state_dict(state))
        for name, value in inputs.items():
            env[name] = value & self._model.signals[name].mask
        for clock in self._model.clocks:
            if clock in env:
                env[clock] = 0
        self._settle_comb(env)
        return env

    def step(self, state: State, inputs: Dict[str, int]) -> TransitionStep:
        """Compute the settled environment and the post-clock next state.

        Results are memoised on (state, input vector): the FPV engine revisits
        the same transitions many times while checking a batch of assertions.
        Cached environments are projected to the observed signal set (see
        :meth:`observe`), and a full cache evicts its oldest entries instead
        of dropping the whole working set.
        """
        key = (state, tuple(inputs.get(name, 0) for name in self._input_names))
        cached = self._step_cache.get(key)
        if cached is not None:
            self._step_cache_hits += 1
            return TransitionStep(env=dict(cached.env), next_state=cached.next_state)
        self._step_cache_misses += 1
        step = self._compute_step(state, inputs)
        env = step.env
        if self._observed is not None:
            env = {name: env[name] for name in self._observed if name in env}
            step = TransitionStep(env=env, next_state=step.next_state)
        if len(self._step_cache) >= self._step_cache_limit:
            evict = max(1, self._step_cache_limit // _EVICTION_FRACTION)
            for old_key in list(itertools.islice(self._step_cache, evict)):
                del self._step_cache[old_key]
        self._step_cache[key] = TransitionStep(env=dict(env), next_state=step.next_state)
        return step

    def step_cache_info(self) -> Dict[str, int]:
        """Size/limit/hit-rate snapshot of the memo cache."""
        return {
            "entries": len(self._step_cache),
            "limit": self._step_cache_limit,
            "hits": self._step_cache_hits,
            "misses": self._step_cache_misses,
            "env_signals": (
                len(self._observed)
                if self._observed is not None
                else len(self._model.signals)
            ),
        }

    def _compute_step(self, state: State, inputs: Dict[str, int]) -> TransitionStep:
        env = self.settle(state, inputs)
        next_values: Dict[str, int] = {}
        for process in self._model.seq_processes:
            self._executor.run_sequential(
                process.body, env, next_values, targets=process.targets
            )
        next_state_values = dict(zip(self._state_names, state))
        for name in self._state_names:
            if name in next_values:
                next_state_values[name] = next_values[name]
        return TransitionStep(env=env, next_state=self.encode_state(next_state_values))

    def _settle_comb(self, env: Dict[str, int], max_iterations: int = 64) -> None:
        # Combinational loops are rejected at simulation time; the engine treats
        # a non-settling design conservatively by keeping the last environment.
        self._settler.run(env, max_iterations)


@dataclass
class ReachabilityResult:
    """Result of (possibly bounded) reachable-state enumeration."""

    states: List[State]
    complete: bool
    frontier_exhausted: bool
    transitions_explored: int

    @property
    def count(self) -> int:
        return len(self.states)


def enumerate_reachable(
    system: TransitionSystem,
    max_states: int = 20000,
    max_transitions: int = 2_000_000,
) -> ReachabilityResult:
    """Breadth-first reachable-state enumeration from the initial state.

    Exploration is exact (every input valuation) when the input space is small
    enough to enumerate; otherwise the result is marked incomplete and the
    caller should fall back to simulation-based checking.  Systems with a
    vectorized kernel run the BFS as batched array ops; the discovery order,
    transition counts, and truncation points are identical to the scalar
    walk.
    """
    if not system.can_enumerate_inputs:
        return ReachabilityResult(
            states=[system.initial_state()],
            complete=False,
            frontier_exhausted=False,
            transitions_explored=0,
        )

    kernel = system.vector_kernel()
    if kernel is not None and getattr(kernel, "packable", True):
        return _enumerate_reachable_vectorized(
            system, kernel, max_states, max_transitions
        )

    initial = system.initial_state()
    visited = {initial}
    order: List[State] = [initial]
    frontier: List[State] = [initial]
    transitions = 0
    complete = True
    input_dicts = system.input_dicts()

    while frontier:
        next_frontier: List[State] = []
        for state in frontier:
            for inputs in input_dicts:
                transitions += 1
                if transitions > max_transitions:
                    return ReachabilityResult(order, False, False, transitions)
                step = system.step(state, inputs)
                if step.next_state not in visited:
                    visited.add(step.next_state)
                    order.append(step.next_state)
                    next_frontier.append(step.next_state)
                    if len(order) >= max_states:
                        return ReachabilityResult(order, False, False, transitions)
        frontier = next_frontier

    return ReachabilityResult(order, complete, True, transitions)


#: Upper bound on (frontier chunk × input grid) lanes per kernel call, so the
#: transient columnar environments stay within a few tens of megabytes.
_BFS_CHUNK_LANES = 1 << 18
#: Below this many lanes a kernel call's per-op dispatch overhead exceeds the
#: scalar step cost; chain-like state spaces (LFSRs, counters) whose frontier
#: is one or two states run those slices through the memoised scalar step.
_BFS_MIN_VECTOR_LANES = 64


def _enumerate_reachable_vectorized(
    system: TransitionSystem,
    kernel,
    max_states: int,
    max_transitions: int,
) -> ReachabilityResult:
    """Array-oriented BFS, order-identical to the scalar walk."""
    import numpy as np

    pack_state = kernel.pack_state
    unpack_state = kernel.unpack_state
    state_bits = sum(kernel.state_widths)
    grid = system.input_grid
    num_inputs = len(grid)
    packed_grid = kernel.pack_input_grid(grid)

    initial = pack_state(system.initial_state())
    dense = state_bits <= 24
    if dense:
        visited_arr = np.zeros(1 << state_bits, dtype=bool)
        visited_arr[initial] = True
    else:
        visited_set = {initial}
    order: List[int] = [initial]
    frontier: List[int] = [initial]
    transitions = 0
    chunk_states = max(1, _BFS_CHUNK_LANES // max(num_inputs, 1))

    def result(packed_order: List[int], complete: bool, exhausted: bool, count: int):
        return ReachabilityResult(
            states=[unpack_state(p) for p in packed_order],
            complete=complete,
            frontier_exhausted=exhausted,
            transitions_explored=count,
        )

    input_dicts = system.input_dicts()

    def seen(packed: int) -> bool:
        return bool(visited_arr[packed]) if dense else packed in visited_set

    def mark(packed: int) -> None:
        if dense:
            visited_arr[packed] = True
        else:
            visited_set.add(packed)

    while frontier:
        next_frontier: List[int] = []
        for start in range(0, len(frontier), chunk_states):
            chunk = frontier[start : start + chunk_states]
            lanes = len(chunk) * num_inputs

            if lanes < _BFS_MIN_VECTOR_LANES:
                # Tiny frontier: per-op kernel dispatch would cost more than
                # the memoised scalar step.  Same walk, same order.
                for packed_state in chunk:
                    state = unpack_state(packed_state)
                    for inputs in input_dicts:
                        transitions += 1
                        if transitions > max_transitions:
                            return result(order, False, False, transitions)
                        next_state = system.step(state, inputs).next_state
                        packed_next = pack_state(next_state)
                        if not seen(packed_next):
                            mark(packed_next)
                            order.append(packed_next)
                            next_frontier.append(packed_next)
                            if len(order) >= max_states:
                                return result(order, False, False, transitions)
                continue

            states_rep = np.repeat(np.asarray(chunk, dtype=np.int64), num_inputs)
            inputs_tiled = np.tile(packed_grid, len(chunk))
            _, next_packed = kernel.step_packed(states_rep, inputs_tiled)

            allowed = max_transitions - transitions
            truncated = allowed < lanes
            flat = next_packed[:allowed] if truncated else next_packed

            if dense:
                new_mask = ~visited_arr[flat]
            else:
                new_mask = np.fromiter(
                    (value not in visited_set for value in flat.tolist()),
                    dtype=bool,
                    count=len(flat),
                )
            if new_mask.any():
                positions = np.nonzero(new_mask)[0]
                candidates = flat[positions]
                _, first_index = np.unique(candidates, return_index=True)
                for k in np.sort(first_index).tolist():
                    value = int(candidates[k])
                    if dense:
                        visited_arr[value] = True
                    else:
                        visited_set.add(value)
                    order.append(value)
                    next_frontier.append(value)
                    if len(order) >= max_states:
                        # Same return point as the scalar walk: the pair that
                        # discovered the capping state.
                        exact = transitions + int(positions[k]) + 1
                        return result(order, False, False, exact)
            if truncated:
                return result(order, False, False, max_transitions + 1)
            transitions += lanes
        frontier = next_frontier

    return result(order, True, True, transitions)
