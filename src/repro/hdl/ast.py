"""Abstract syntax tree for the Verilog subset.

Expression nodes are shared with the SVA boolean layer (``repro.sva``): an
assertion's antecedent/consequent propositions are ordinary Verilog
expressions over design signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""

    def signals(self) -> set:
        """Return the set of identifier names referenced by this expression."""
        names = set()
        _collect_signals(self, names)
        return names


@dataclass(frozen=True)
class Number(Expr):
    """An integer literal, optionally carrying an explicit bit width."""

    value: int
    width: Optional[int] = None

    def __str__(self) -> str:
        if self.width is not None:
            return f"{self.width}'d{self.value}"
        return str(self.value)


@dataclass(frozen=True)
class Identifier(Expr):
    """A reference to a named signal or parameter."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BitSelect(Expr):
    """A single-bit select ``base[index]``."""

    base: Expr
    index: Expr

    def __str__(self) -> str:
        return f"{self.base}[{self.index}]"


@dataclass(frozen=True)
class PartSelect(Expr):
    """A constant part select ``base[msb:lsb]``."""

    base: Expr
    msb: Expr
    lsb: Expr

    def __str__(self) -> str:
        return f"{self.base}[{self.msb}:{self.lsb}]"


@dataclass(frozen=True)
class Unary(Expr):
    """A unary operation (``~``, ``!``, ``-``, reduction ``&``/``|``/``^``)."""

    op: str
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class Binary(Expr):
    """A binary operation."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Ternary(Expr):
    """The conditional operator ``cond ? then : otherwise``."""

    cond: Expr
    then: Expr
    otherwise: Expr

    def __str__(self) -> str:
        return f"({self.cond} ? {self.then} : {self.otherwise})"


@dataclass(frozen=True)
class Concat(Expr):
    """A concatenation ``{a, b, c}``."""

    parts: Tuple[Expr, ...]

    def __str__(self) -> str:
        return "{" + ", ".join(str(p) for p in self.parts) + "}"


@dataclass(frozen=True)
class Replicate(Expr):
    """A replication ``{count{expr}}``."""

    count: Expr
    value: Expr

    def __str__(self) -> str:
        return "{" + f"{self.count}{{{self.value}}}" + "}"


def _collect_signals(expr: Expr, names: set) -> None:
    if isinstance(expr, Identifier):
        names.add(expr.name)
    elif isinstance(expr, (BitSelect,)):
        _collect_signals(expr.base, names)
        _collect_signals(expr.index, names)
    elif isinstance(expr, PartSelect):
        _collect_signals(expr.base, names)
        _collect_signals(expr.msb, names)
        _collect_signals(expr.lsb, names)
    elif isinstance(expr, Unary):
        _collect_signals(expr.operand, names)
    elif isinstance(expr, Binary):
        _collect_signals(expr.left, names)
        _collect_signals(expr.right, names)
    elif isinstance(expr, Ternary):
        _collect_signals(expr.cond, names)
        _collect_signals(expr.then, names)
        _collect_signals(expr.otherwise, names)
    elif isinstance(expr, Concat):
        for part in expr.parts:
            _collect_signals(part, names)
    elif isinstance(expr, Replicate):
        _collect_signals(expr.count, names)
        _collect_signals(expr.value, names)


# ---------------------------------------------------------------------------
# Statements (procedural code inside always blocks)
# ---------------------------------------------------------------------------


class Stmt:
    """Base class for procedural statements."""


@dataclass
class Block(Stmt):
    """A ``begin ... end`` block."""

    statements: List[Stmt] = field(default_factory=list)


@dataclass
class Assignment(Stmt):
    """A blocking (``=``) or non-blocking (``<=``) procedural assignment."""

    target: Expr
    value: Expr
    blocking: bool = True


@dataclass
class If(Stmt):
    """An ``if``/``else`` statement."""

    condition: Expr
    then_body: Stmt
    else_body: Optional[Stmt] = None


@dataclass
class CaseItem:
    """One arm of a case statement: one or more label expressions and a body."""

    labels: List[Expr]
    body: Stmt


@dataclass
class Case(Stmt):
    """A ``case``/``casez``/``casex`` statement."""

    subject: Expr
    items: List[CaseItem] = field(default_factory=list)
    default: Optional[Stmt] = None
    wildcard: bool = False


# ---------------------------------------------------------------------------
# Module items
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Range:
    """A declared vector range ``[msb:lsb]`` (values are constant expressions)."""

    msb: Expr
    lsb: Expr


@dataclass
class PortDecl:
    """An ``input``/``output``/``inout`` declaration."""

    direction: str
    names: List[str]
    range: Optional[Range] = None


@dataclass
class NetDecl:
    """A ``wire``/``reg``/``integer`` declaration."""

    kind: str
    names: List[str]
    range: Optional[Range] = None
    signed: bool = False


@dataclass
class ParamDecl:
    """A ``parameter`` or ``localparam`` declaration."""

    name: str
    value: Expr
    local: bool = False


@dataclass
class ContinuousAssign:
    """A continuous assignment ``assign lhs = rhs;``."""

    target: Expr
    value: Expr


@dataclass(frozen=True)
class EdgeEvent:
    """A clock-edge item in a sensitivity list (``posedge clk``)."""

    edge: str
    signal: str


@dataclass
class Sensitivity:
    """The sensitivity list of an always block.

    ``star`` covers ``@(*)`` / ``@*``; ``edges`` holds posedge/negedge items;
    ``levels`` holds plain signal names (treated as combinational).
    """

    star: bool = False
    edges: List[EdgeEvent] = field(default_factory=list)
    levels: List[str] = field(default_factory=list)

    @property
    def is_sequential(self) -> bool:
        return bool(self.edges)


@dataclass
class AlwaysBlock:
    """An ``always @(...) ...`` process."""

    sensitivity: Sensitivity
    body: Stmt


@dataclass
class InitialBlock:
    """An ``initial ...`` process (used only for register initial values)."""

    body: Stmt


ModuleItem = Union[
    PortDecl, NetDecl, ParamDecl, ContinuousAssign, AlwaysBlock, InitialBlock
]


@dataclass
class Module:
    """A parsed Verilog module."""

    name: str
    port_order: List[str] = field(default_factory=list)
    header_params: List[ParamDecl] = field(default_factory=list)
    items: List[ModuleItem] = field(default_factory=list)

    def items_of(self, kind) -> list:
        """Return all module items of the given AST class."""
        return [item for item in self.items if isinstance(item, kind)]


def clone_stmt(stmt: Stmt) -> Stmt:
    """Copy a statement tree's mutable skeleton, sharing expression nodes.

    Expression nodes are frozen (immutable) dataclasses, so an editable copy
    of a statement tree — what mutation operators need — only has to rebuild
    the statements themselves.  This is an order of magnitude cheaper than
    ``copy.deepcopy`` on expression-heavy designs.
    """
    if isinstance(stmt, Block):
        return Block(statements=[clone_stmt(inner) for inner in stmt.statements])
    if isinstance(stmt, Assignment):
        return Assignment(target=stmt.target, value=stmt.value, blocking=stmt.blocking)
    if isinstance(stmt, If):
        return If(
            condition=stmt.condition,
            then_body=clone_stmt(stmt.then_body),
            else_body=clone_stmt(stmt.else_body) if stmt.else_body is not None else None,
        )
    if isinstance(stmt, Case):
        return Case(
            subject=stmt.subject,
            items=[
                CaseItem(labels=list(item.labels), body=clone_stmt(item.body))
                for item in stmt.items
            ],
            default=clone_stmt(stmt.default) if stmt.default is not None else None,
            wildcard=stmt.wildcard,
        )
    raise TypeError(f"cannot clone statement {stmt!r}")


def clone_module(module: Module) -> Module:
    """An editable copy of a module, sharing every immutable node.

    Declarations, sensitivity lists, and expressions are shared with the
    original (mutation never edits them in place); continuous assigns,
    always/initial blocks, and statements — the nodes operators rewrite —
    are fresh objects.
    """
    items: List[ModuleItem] = []
    for item in module.items:
        if isinstance(item, ContinuousAssign):
            items.append(ContinuousAssign(target=item.target, value=item.value))
        elif isinstance(item, AlwaysBlock):
            items.append(
                AlwaysBlock(sensitivity=item.sensitivity, body=clone_stmt(item.body))
            )
        elif isinstance(item, InitialBlock):
            items.append(InitialBlock(body=clone_stmt(item.body)))
        else:
            items.append(item)
    return Module(
        name=module.name,
        port_order=list(module.port_order),
        header_params=list(module.header_params),
        items=items,
    )


@dataclass
class SourceFile:
    """A parsed source file containing one or more modules."""

    modules: List[Module] = field(default_factory=list)

    def module(self, name: Optional[str] = None) -> Module:
        """Return the named module, or the first one if no name is given."""
        if name is None:
            if not self.modules:
                raise ValueError("source file contains no modules")
            return self.modules[0]
        for mod in self.modules:
            if mod.name == name:
                return mod
        raise KeyError(f"no module named {name!r}")
