"""The :class:`Design` wrapper: source text + parsed module + elaborated RTL.

A ``Design`` is the unit the rest of the system operates on: the benchmark
corpus is a collection of designs, assertions are bound against a design's
signals, the simulator and FPV engine run over a design's elaborated model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .ast import Module
from .elaborate import RtlModel, elaborate
from .metrics import SourceMetrics, analyze_source
from .parser import parse_source


@dataclass
class Design:
    """A hardware design under evaluation."""

    name: str
    source: str
    module: Module
    model: RtlModel
    design_type: str = "sequential"  # 'sequential' | 'combinational'
    functionality: str = ""
    category: str = ""
    metrics: Optional[SourceMetrics] = None
    metadata: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_source(
        cls,
        source: str,
        name: Optional[str] = None,
        functionality: str = "",
        category: str = "",
        parameter_overrides: Optional[Dict[str, int]] = None,
    ) -> "Design":
        """Parse and elaborate Verilog source text into a Design."""
        source_file = parse_source(source)
        module = source_file.module()
        model = elaborate(module, parameter_overrides)
        design_type = "sequential" if model.is_sequential else "combinational"
        return cls(
            name=name or module.name,
            source=source,
            module=module,
            model=model,
            design_type=design_type,
            functionality=functionality,
            category=category,
            metrics=analyze_source(source),
        )

    @property
    def loc(self) -> int:
        """Lines of code excluding blanks and comments (cloc-style)."""
        if self.metrics is None:
            self.metrics = analyze_source(self.source)
        return self.metrics.code_lines

    @property
    def is_sequential(self) -> bool:
        return self.model.is_sequential

    @property
    def signal_names(self):
        return list(self.model.signals)

    def describe(self) -> str:
        """One-line human-readable summary (used by reports and Table I)."""
        return (
            f"{self.name}: {self.loc} LoC, {self.design_type}, "
            f"{len(self.model.inputs)} inputs, {len(self.model.outputs)} outputs, "
            f"{self.model.state_bits} state bits"
        )
