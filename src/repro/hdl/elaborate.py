"""Elaboration of a parsed Verilog module into an RTL model.

Elaboration resolves parameters to constants, computes signal widths,
classifies signals (inputs, outputs, wires, state registers), and splits the
module's behaviour into three kinds of processes that the simulator and the
FPV engine interpret directly:

* continuous assignments (``assign``),
* combinational always blocks (``always @(*)`` or level-sensitive lists),
* sequential always blocks (edge-sensitive, with optional asynchronous reset).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from . import ast
from .errors import ElaborationError, WidthError

_DEFAULT_INTEGER_WIDTH = 32


@dataclass
class Signal:
    """An elaborated design signal."""

    name: str
    width: int
    kind: str  # 'input' | 'output' | 'wire' | 'reg'
    is_state: bool = False
    signed: bool = False

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    @property
    def max_value(self) -> int:
        return self.mask


@dataclass
class SeqProcess:
    """An edge-triggered process (one clocked always block)."""

    clock: str
    clock_edge: str
    async_resets: List[ast.EdgeEvent]
    body: ast.Stmt
    targets: Set[str] = field(default_factory=set)
    supports: Set[str] = field(default_factory=set)


@dataclass
class CombProcess:
    """A level-sensitive (combinational) always block."""

    body: ast.Stmt
    targets: Set[str] = field(default_factory=set)
    supports: Set[str] = field(default_factory=set)


@dataclass
class ContAssign:
    """A continuous assignment."""

    target: ast.Expr
    value: ast.Expr
    target_name: str = ""
    supports: Set[str] = field(default_factory=set)


@dataclass
class RtlModel:
    """The elaborated design: signals plus interpretable processes."""

    name: str
    signals: Dict[str, Signal] = field(default_factory=dict)
    parameters: Dict[str, int] = field(default_factory=dict)
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    state_regs: List[str] = field(default_factory=list)
    assigns: List[ContAssign] = field(default_factory=list)
    comb_processes: List[CombProcess] = field(default_factory=list)
    seq_processes: List[SeqProcess] = field(default_factory=list)
    initial_values: Dict[str, int] = field(default_factory=dict)
    clocks: List[str] = field(default_factory=list)
    resets: List[str] = field(default_factory=list)

    def signal(self, name: str) -> Signal:
        try:
            return self.signals[name]
        except KeyError:
            raise ElaborationError(f"unknown signal {name!r} in design {self.name!r}")

    @property
    def non_clock_inputs(self) -> List[str]:
        """Inputs that are free stimulus (not clocks)."""
        return [name for name in self.inputs if name not in self.clocks]

    @property
    def state_bits(self) -> int:
        """Total number of state (register) bits."""
        return sum(self.signals[name].width for name in self.state_regs)

    @property
    def input_bits(self) -> int:
        """Total number of free-input bits (clock excluded)."""
        return sum(self.signals[name].width for name in self.non_clock_inputs)

    @property
    def is_sequential(self) -> bool:
        return bool(self.seq_processes)


class _ConstEvaluator:
    """Evaluate constant expressions over the parameter environment."""

    def __init__(self, parameters: Dict[str, int]):
        self._parameters = parameters

    def eval(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.Number):
            return expr.value
        if isinstance(expr, ast.Identifier):
            if expr.name in self._parameters:
                return self._parameters[expr.name]
            raise ElaborationError(
                f"expression references non-constant identifier {expr.name!r}"
            )
        if isinstance(expr, ast.Unary):
            value = self.eval(expr.operand)
            if expr.op == "-":
                return -value
            if expr.op == "~":
                return ~value
            if expr.op == "!":
                return int(value == 0)
            raise ElaborationError(f"unsupported constant unary operator {expr.op!r}")
        if isinstance(expr, ast.Binary):
            left = self.eval(expr.left)
            right = self.eval(expr.right)
            return _eval_const_binary(expr.op, left, right)
        if isinstance(expr, ast.Ternary):
            return self.eval(expr.then) if self.eval(expr.cond) else self.eval(expr.otherwise)
        raise ElaborationError(f"unsupported constant expression {expr!r}")


def _eval_const_binary(op: str, left: int, right: int) -> int:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ElaborationError("division by zero in constant expression")
        return left // right
    if op == "%":
        if right == 0:
            raise ElaborationError("modulo by zero in constant expression")
        return left % right
    if op == "**":
        return left**right
    if op == "<<":
        return left << right
    if op == ">>":
        return left >> right
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "<":
        return int(left < right)
    if op == "<=":
        return int(left <= right)
    if op == ">":
        return int(left > right)
    if op == ">=":
        return int(left >= right)
    if op == "&&":
        return int(bool(left) and bool(right))
    if op == "||":
        return int(bool(left) or bool(right))
    raise ElaborationError(f"unsupported constant binary operator {op!r}")


_CLOCK_NAME_HINTS = ("clk", "clock", "ck")
_RESET_NAME_HINTS = ("rst", "reset", "clear", "clr")


def elaborate(
    module: ast.Module, parameter_overrides: Optional[Dict[str, int]] = None
) -> RtlModel:
    """Elaborate a parsed module into an :class:`RtlModel`.

    ``parameter_overrides`` replaces header/body parameter defaults (the
    equivalent of instantiating the module with explicit parameter values).
    """
    model = RtlModel(name=module.name)
    overrides = dict(parameter_overrides or {})

    _elaborate_parameters(module, model, overrides)
    const_eval = _ConstEvaluator(model.parameters)
    _elaborate_signals(module, model, const_eval)
    _elaborate_processes(module, model)
    _elaborate_initial_values(module, model, const_eval)
    _classify_clocks_and_resets(model)
    _check_drivers(model)
    return model


def _elaborate_parameters(
    module: ast.Module, model: RtlModel, overrides: Dict[str, int]
) -> None:
    decls = list(module.header_params)
    decls.extend(module.items_of(ast.ParamDecl))
    for decl in decls:
        const_eval = _ConstEvaluator(model.parameters)
        if decl.name in overrides and not decl.local:
            model.parameters[decl.name] = int(overrides[decl.name])
        else:
            model.parameters[decl.name] = const_eval.eval(decl.value)
    unknown = set(overrides) - set(model.parameters)
    if unknown:
        raise ElaborationError(
            f"parameter overrides for unknown parameters: {sorted(unknown)}"
        )


def _range_width(rng: Optional[ast.Range], const_eval: _ConstEvaluator) -> int:
    if rng is None:
        return 1
    msb = const_eval.eval(rng.msb)
    lsb = const_eval.eval(rng.lsb)
    width = abs(msb - lsb) + 1
    if width <= 0:
        raise WidthError(f"invalid range [{msb}:{lsb}]")
    return width


def _elaborate_signals(
    module: ast.Module, model: RtlModel, const_eval: _ConstEvaluator
) -> None:
    directions: Dict[str, str] = {}
    widths: Dict[str, int] = {}
    regs: Set[str] = set()
    signed: Set[str] = set()

    for item in module.items_of(ast.PortDecl):
        width = _range_width(item.range, const_eval)
        for name in item.names:
            directions[name] = item.direction
            widths[name] = max(widths.get(name, 1), width)

    for item in module.items_of(ast.NetDecl):
        if item.kind == "integer":
            width = _DEFAULT_INTEGER_WIDTH
        else:
            width = _range_width(item.range, const_eval)
        for name in item.names:
            widths[name] = max(widths.get(name, 1), width)
            if item.kind in ("reg", "integer"):
                regs.add(name)
            if item.signed:
                signed.add(name)

    for name in module.port_order:
        if name not in directions:
            raise ElaborationError(
                f"port {name!r} listed in header but never declared", 0, 0
            )

    for name, width in widths.items():
        direction = directions.get(name)
        if direction == "input":
            kind = "input"
        elif direction == "output":
            kind = "output"
        elif direction == "inout":
            kind = "output"
        elif name in regs:
            kind = "reg"
        else:
            kind = "wire"
        model.signals[name] = Signal(
            name=name, width=width, kind=kind, signed=name in signed
        )
        if kind == "input":
            model.inputs.append(name)
        elif kind == "output":
            model.outputs.append(name)

    # Keep declaration order stable for inputs/outputs as listed in the header.
    if module.port_order:
        order = {name: idx for idx, name in enumerate(module.port_order)}
        model.inputs.sort(key=lambda n: order.get(n, len(order)))
        model.outputs.sort(key=lambda n: order.get(n, len(order)))


def _stmt_targets(stmt: ast.Stmt) -> Set[str]:
    targets: Set[str] = set()
    _collect_stmt_targets(stmt, targets)
    return targets


def _collect_stmt_targets(stmt: ast.Stmt, targets: Set[str]) -> None:
    if isinstance(stmt, ast.Block):
        for inner in stmt.statements:
            _collect_stmt_targets(inner, targets)
    elif isinstance(stmt, ast.Assignment):
        targets.update(_lvalue_names(stmt.target))
    elif isinstance(stmt, ast.If):
        _collect_stmt_targets(stmt.then_body, targets)
        if stmt.else_body is not None:
            _collect_stmt_targets(stmt.else_body, targets)
    elif isinstance(stmt, ast.Case):
        for item in stmt.items:
            _collect_stmt_targets(item.body, targets)
        if stmt.default is not None:
            _collect_stmt_targets(stmt.default, targets)


def _lvalue_names(expr: ast.Expr) -> Set[str]:
    if isinstance(expr, ast.Identifier):
        return {expr.name}
    if isinstance(expr, (ast.BitSelect, ast.PartSelect)):
        return _lvalue_names(expr.base)
    if isinstance(expr, ast.Concat):
        names: Set[str] = set()
        for part in expr.parts:
            names.update(_lvalue_names(part))
        return names
    raise ElaborationError(f"unsupported assignment target {expr!r}")


def _stmt_supports(stmt: ast.Stmt) -> Set[str]:
    supports: Set[str] = set()
    _collect_stmt_supports(stmt, supports)
    return supports


def _collect_stmt_supports(stmt: ast.Stmt, supports: Set[str]) -> None:
    if isinstance(stmt, ast.Block):
        for inner in stmt.statements:
            _collect_stmt_supports(inner, supports)
    elif isinstance(stmt, ast.Assignment):
        supports.update(stmt.value.signals())
        # Index expressions of the target are also read.
        target = stmt.target
        if isinstance(target, ast.BitSelect):
            supports.update(target.index.signals())
        elif isinstance(target, ast.PartSelect):
            supports.update(target.msb.signals())
            supports.update(target.lsb.signals())
    elif isinstance(stmt, ast.If):
        supports.update(stmt.condition.signals())
        _collect_stmt_supports(stmt.then_body, supports)
        if stmt.else_body is not None:
            _collect_stmt_supports(stmt.else_body, supports)
    elif isinstance(stmt, ast.Case):
        supports.update(stmt.subject.signals())
        for item in stmt.items:
            for label in item.labels:
                supports.update(label.signals())
            _collect_stmt_supports(item.body, supports)
        if stmt.default is not None:
            _collect_stmt_supports(stmt.default, supports)


def _first_if_condition_signals(stmt: ast.Stmt) -> Set[str]:
    body = stmt
    while isinstance(body, ast.Block) and body.statements:
        body = body.statements[0]
    if isinstance(body, ast.If):
        return body.condition.signals()
    return set()


def _elaborate_processes(module: ast.Module, model: RtlModel) -> None:
    for item in module.items_of(ast.ContinuousAssign):
        names = _lvalue_names(item.target)
        if len(names) != 1:
            raise ElaborationError("continuous assign target must be a single signal")
        target_name = next(iter(names))
        if target_name not in model.signals:
            raise ElaborationError(f"assignment to undeclared signal {target_name!r}")
        supports = set(item.value.signals()) & set(model.signals)
        model.assigns.append(
            ContAssign(
                target=item.target,
                value=item.value,
                target_name=target_name,
                supports=supports,
            )
        )

    for item in module.items_of(ast.AlwaysBlock):
        targets = _stmt_targets(item.body)
        unknown = targets - set(model.signals)
        if unknown:
            raise ElaborationError(
                f"always block assigns undeclared signals: {sorted(unknown)}"
            )
        supports = _stmt_supports(item.body) & set(model.signals)
        if item.sensitivity.is_sequential:
            process = _build_seq_process(item, model)
            process.targets = targets
            process.supports = supports
            model.seq_processes.append(process)
            for name in sorted(targets):
                signal = model.signals[name]
                signal.is_state = True
                if name not in model.state_regs:
                    model.state_regs.append(name)
        else:
            model.comb_processes.append(
                CombProcess(body=item.body, targets=targets, supports=supports)
            )


def _build_seq_process(item: ast.AlwaysBlock, model: RtlModel) -> SeqProcess:
    edges = item.sensitivity.edges
    reset_candidates = _first_if_condition_signals(item.body)
    clock_edges = []
    reset_edges = []
    for edge in edges:
        if edge.signal not in model.signals:
            raise ElaborationError(f"sensitivity references undeclared signal {edge.signal!r}")
        is_reset_like = edge.signal in reset_candidates or any(
            hint in edge.signal.lower() for hint in _RESET_NAME_HINTS
        )
        is_clock_like = any(hint in edge.signal.lower() for hint in _CLOCK_NAME_HINTS)
        if is_clock_like and not is_reset_like:
            clock_edges.append(edge)
        elif is_reset_like and len(edges) > 1:
            reset_edges.append(edge)
        else:
            clock_edges.append(edge)
    if not clock_edges:
        # Every edge looked like a reset; treat the first as the clock.
        clock_edges = [edges[0]]
        reset_edges = [e for e in edges[1:]]
    clock = clock_edges[0]
    return SeqProcess(
        clock=clock.signal,
        clock_edge=clock.edge,
        async_resets=reset_edges,
        body=item.body,
    )


def _elaborate_initial_values(
    module: ast.Module, model: RtlModel, const_eval: _ConstEvaluator
) -> None:
    for item in module.items_of(ast.InitialBlock):
        for stmt in _flatten_statements(item.body):
            if not isinstance(stmt, ast.Assignment):
                raise ElaborationError("initial blocks may only contain assignments")
            names = _lvalue_names(stmt.target)
            if len(names) != 1:
                raise ElaborationError("initial assignment target must be a single signal")
            name = next(iter(names))
            model.initial_values[name] = const_eval.eval(stmt.value)


def _flatten_statements(stmt: ast.Stmt) -> List[ast.Stmt]:
    if isinstance(stmt, ast.Block):
        result = []
        for inner in stmt.statements:
            result.extend(_flatten_statements(inner))
        return result
    return [stmt]


def _classify_clocks_and_resets(model: RtlModel) -> None:
    clocks: List[str] = []
    resets: List[str] = []
    for process in model.seq_processes:
        if process.clock not in clocks:
            clocks.append(process.clock)
        for edge in process.async_resets:
            if edge.signal not in resets:
                resets.append(edge.signal)
    if not clocks:
        # Pure combinational designs may still declare a clock-like input for
        # uniform stimulus handling; detect it by name.
        for name in model.inputs:
            if any(hint in name.lower() for hint in _CLOCK_NAME_HINTS):
                clocks.append(name)
                break
    model.clocks = clocks
    model.resets = [r for r in resets if r in model.signals]


def _check_drivers(model: RtlModel) -> None:
    comb_driven: Dict[str, int] = {}
    for assign in model.assigns:
        comb_driven[assign.target_name] = comb_driven.get(assign.target_name, 0) + 1
    seq_targets: Set[str] = set()
    for process in model.seq_processes:
        seq_targets.update(process.targets)
    comb_targets: Set[str] = set()
    for process in model.comb_processes:
        comb_targets.update(process.targets)
    conflict = seq_targets & (set(comb_driven) | comb_targets)
    if conflict:
        raise ElaborationError(
            f"signals driven both sequentially and combinationally: {sorted(conflict)}"
        )
    for name in model.inputs:
        if name in seq_targets or name in comb_targets or name in comb_driven:
            raise ElaborationError(f"input signal {name!r} must not be driven internally")
