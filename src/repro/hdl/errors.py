"""Error types raised by the Verilog frontend.

The frontend distinguishes lexical, syntactic, and elaboration errors so that
callers (the FPV engine, the benchmark loader, the evaluation pipeline) can
classify a failing design or assertion precisely.
"""

from __future__ import annotations


class HdlError(Exception):
    """Base class for all errors raised by the ``repro.hdl`` package."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message)
        self.message = message
        self.line = line
        self.column = column

    def __str__(self) -> str:
        if self.line:
            return f"{self.message} (line {self.line}, col {self.column})"
        return self.message


class LexError(HdlError):
    """Raised when the source text contains an unrecognised character."""


class ParseError(HdlError):
    """Raised when the token stream does not form a valid Verilog subset."""


class ElaborationError(HdlError):
    """Raised when a syntactically valid module cannot be elaborated.

    Typical causes: references to undeclared signals, unsupported constructs,
    parameter expressions that do not evaluate to constants, or multiply
    driven registers.
    """


class WidthError(ElaborationError):
    """Raised when widths of operands cannot be reconciled."""
