"""Lexer for the supported Verilog subset.

The lexer strips comments (``//`` and ``/* */``), recognises identifiers,
decimal and based numeric literals (``8'hFF``, ``1'b0``), keywords, and
punctuation, and records line/column positions for error reporting.
"""

from __future__ import annotations

from typing import Iterator, List

from .errors import LexError
from .tokens import KEYWORDS, MULTI_CHAR_PUNCT, SINGLE_CHAR_PUNCT, Token, TokenKind

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")
_BASED_DIGITS = set("0123456789abcdefABCDEFxXzZ_?")


class Lexer:
    """Convert Verilog source text into a list of :class:`Token` objects."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> List[Token]:
        """Return all tokens in the input, terminated by an EOF token."""
        tokens = list(self._iter_tokens())
        tokens.append(Token(TokenKind.EOF, "", self._line, self._column))
        return tokens

    def _iter_tokens(self) -> Iterator[Token]:
        while self._pos < len(self._text):
            ch = self._text[self._pos]
            if ch in " \t\r\n":
                self._advance(1)
                continue
            if self._text.startswith("//", self._pos):
                self._skip_line_comment()
                continue
            if self._text.startswith("/*", self._pos):
                self._skip_block_comment()
                continue
            if ch == "`":
                # Compiler directives (`timescale, `define, ...) are skipped
                # to end of line; macros are not expanded in the subset.
                self._skip_line_comment()
                continue
            if ch in _IDENT_START:
                yield self._lex_ident()
                continue
            if ch in _DIGITS or (ch == "'" and self._peek_based_literal()):
                yield self._lex_number()
                continue
            if ch == '"':
                yield self._lex_string()
                continue
            punct = self._match_punct()
            if punct is not None:
                yield punct
                continue
            raise LexError(f"unexpected character {ch!r}", self._line, self._column)

    # -- helpers ---------------------------------------------------------

    def _advance(self, count: int) -> None:
        for _ in range(count):
            if self._pos >= len(self._text):
                return
            if self._text[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _skip_line_comment(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos] != "\n":
            self._advance(1)

    def _skip_block_comment(self) -> None:
        start_line, start_col = self._line, self._column
        self._advance(2)
        while self._pos < len(self._text):
            if self._text.startswith("*/", self._pos):
                self._advance(2)
                return
            self._advance(1)
        raise LexError("unterminated block comment", start_line, start_col)

    def _lex_ident(self) -> Token:
        line, col = self._line, self._column
        start = self._pos
        while self._pos < len(self._text) and self._text[self._pos] in _IDENT_CONT:
            self._advance(1)
        word = self._text[start:self._pos]
        kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
        return Token(kind, word, line, col)

    def _peek_based_literal(self) -> bool:
        nxt = self._text[self._pos + 1:self._pos + 3].lower()
        return bool(nxt) and nxt[0] in "bodh" or (len(nxt) > 1 and nxt[0] == "s" and nxt[1] in "bodh")

    def _lex_number(self) -> Token:
        line, col = self._line, self._column
        start = self._pos
        # Optional decimal size prefix.
        while self._pos < len(self._text) and self._text[self._pos] in _DIGITS | {"_"}:
            self._advance(1)
        if self._pos < len(self._text) and self._text[self._pos] == "'":
            self._advance(1)
            if self._pos < len(self._text) and self._text[self._pos] in "sS":
                self._advance(1)
            if self._pos >= len(self._text) or self._text[self._pos].lower() not in "bodh":
                raise LexError("malformed based literal", line, col)
            self._advance(1)
            while self._pos < len(self._text) and self._text[self._pos] in _BASED_DIGITS:
                self._advance(1)
            return Token(TokenKind.BASED_NUMBER, self._text[start:self._pos], line, col)
        return Token(TokenKind.NUMBER, self._text[start:self._pos], line, col)

    def _lex_string(self) -> Token:
        line, col = self._line, self._column
        self._advance(1)
        start = self._pos
        while self._pos < len(self._text) and self._text[self._pos] != '"':
            self._advance(1)
        if self._pos >= len(self._text):
            raise LexError("unterminated string literal", line, col)
        value = self._text[start:self._pos]
        self._advance(1)
        return Token(TokenKind.STRING, value, line, col)

    def _match_punct(self) -> Token:
        line, col = self._line, self._column
        for punct in MULTI_CHAR_PUNCT:
            if self._text.startswith(punct, self._pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, line, col)
        ch = self._text[self._pos]
        if ch in SINGLE_CHAR_PUNCT:
            self._advance(1)
            return Token(TokenKind.PUNCT, ch, line, col)
        return None


def tokenize(text: str) -> List[Token]:
    """Convenience wrapper: tokenize ``text`` and return the token list."""
    return Lexer(text).tokenize()
