"""Source-code metrics for Verilog designs.

The paper characterises its test set by lines of code excluding blanks and
comments, "as measured by cloc" (Figure 3, Table I).  :func:`count_loc`
reproduces that measurement for the subset grammar.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceMetrics:
    """Line counts for one Verilog source file."""

    total_lines: int
    blank_lines: int
    comment_lines: int
    code_lines: int


def count_loc(source: str) -> int:
    """Return the number of code lines, excluding blanks and comments."""
    return analyze_source(source).code_lines


def analyze_source(source: str) -> SourceMetrics:
    """Classify each line of ``source`` as blank, comment, or code.

    A line that contains both code and a trailing ``//`` comment counts as
    code.  Block comments (``/* ... */``) may span lines; lines that are
    entirely inside a block comment count as comment lines.
    """
    total = 0
    blank = 0
    comment = 0
    code = 0
    in_block_comment = False

    for raw_line in source.splitlines():
        total += 1
        line = raw_line.strip()
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                comment += 1
                continue
            line = line[end + 2:].strip()
            in_block_comment = False
            if not line:
                comment += 1
                continue
        if not line:
            blank += 1
            continue
        stripped, became_block = _strip_comments(line)
        in_block_comment = became_block
        if stripped:
            code += 1
        else:
            comment += 1

    return SourceMetrics(
        total_lines=total, blank_lines=blank, comment_lines=comment, code_lines=code
    )


def _strip_comments(line: str):
    """Remove ``//`` and ``/* */`` comments from a single line.

    Returns the remaining code text and whether the line opens an
    unterminated block comment.
    """
    result = []
    i = 0
    in_block = False
    while i < len(line):
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            end = line.find("*/", i + 2)
            if end < 0:
                in_block = True
                break
            i = end + 2
            continue
        result.append(line[i])
        i += 1
    return "".join(result).strip(), in_block
