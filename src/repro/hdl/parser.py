"""Recursive-descent parser for the Verilog subset.

Supports both ANSI (``module m(input clk, output reg [3:0] q);``) and
non-ANSI (``module m(clk, q); input clk; output [3:0] q; reg [3:0] q;``)
port declaration styles, parameters, continuous assignments, and always
blocks with if/else, case, and blocking/non-blocking assignments.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast
from .errors import ParseError
from .lexer import tokenize
from .tokens import Token, TokenKind

#: Binary operator precedence (higher binds tighter).
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "===": 6,
    "!==": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "<<<": 8,
    ">>>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
    "**": 11,
}

_UNARY_OPS = ("~", "!", "-", "+", "&", "|", "^")


class Parser:
    """Parse a token stream into a :class:`repro.hdl.ast.SourceFile`."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> Token:
        tok = self._current
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _error(self, message: str) -> ParseError:
        tok = self._current
        return ParseError(f"{message}, got {tok.value!r}", tok.line, tok.column)

    def _expect_punct(self, text: str) -> Token:
        if not self._current.is_punct(text):
            raise self._error(f"expected {text!r}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self._current.is_keyword(word):
            raise self._error(f"expected keyword {word!r}")
        return self._advance()

    def _expect_ident(self) -> str:
        if self._current.kind is not TokenKind.IDENT:
            raise self._error("expected identifier")
        return self._advance().value

    def _accept_punct(self, text: str) -> bool:
        if self._current.is_punct(text):
            self._advance()
            return True
        return False

    def _accept_keyword(self, word: str) -> bool:
        if self._current.is_keyword(word):
            self._advance()
            return True
        return False

    # -- top level ---------------------------------------------------------

    def parse_source(self) -> ast.SourceFile:
        """Parse zero or more modules until end of input."""
        modules = []
        while not self._current.kind is TokenKind.EOF:
            if self._current.is_keyword("module"):
                modules.append(self.parse_module())
            else:
                raise self._error("expected 'module'")
        return ast.SourceFile(modules=modules)

    def parse_module(self) -> ast.Module:
        """Parse a single ``module ... endmodule`` definition."""
        self._expect_keyword("module")
        name = self._expect_ident()
        module = ast.Module(name=name)
        if self._accept_punct("#"):
            self._parse_param_header(module)
        if self._accept_punct("("):
            self._parse_port_list(module)
        self._expect_punct(";")
        while not self._current.is_keyword("endmodule"):
            if self._current.kind is TokenKind.EOF:
                raise self._error("unexpected end of input inside module")
            item = self._parse_module_item()
            if isinstance(item, list):
                module.items.extend(item)
            elif item is not None:
                module.items.append(item)
        self._expect_keyword("endmodule")
        return module

    def _parse_param_header(self, module: ast.Module) -> None:
        self._expect_punct("(")
        while True:
            self._accept_keyword("parameter")
            # optional range on parameter, ignored for value semantics
            if self._current.is_punct("["):
                self._parse_range()
            pname = self._expect_ident()
            self._expect_punct("=")
            value = self.parse_expression()
            module.header_params.append(ast.ParamDecl(name=pname, value=value))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")

    def _parse_port_list(self, module: ast.Module) -> None:
        if self._accept_punct(")"):
            return
        while True:
            if self._current.kind is TokenKind.IDENT:
                # Non-ANSI style: just names.
                module.port_order.append(self._advance().value)
            elif self._current.is_keyword("input") or self._current.is_keyword(
                "output"
            ) or self._current.is_keyword("inout"):
                decls = self._parse_ansi_port()
                module.items.extend(decls)
                module.port_order.extend(
                    name for decl in decls if isinstance(decl, ast.PortDecl) for name in decl.names
                )
            else:
                raise self._error("expected port name or direction")
            if not self._accept_punct(","):
                break
        self._expect_punct(")")

    def _parse_ansi_port(self) -> List[ast.ModuleItem]:
        direction = self._advance().value
        kind = None
        if self._current.is_keyword("wire") or self._current.is_keyword("reg"):
            kind = self._advance().value
        signed = self._accept_keyword("signed")
        rng = None
        if self._current.is_punct("["):
            rng = self._parse_range()
        name = self._expect_ident()
        items: List[ast.ModuleItem] = [ast.PortDecl(direction=direction, names=[name], range=rng)]
        if kind == "reg" or (kind is None and direction == "output" and False):
            items.append(ast.NetDecl(kind="reg", names=[name], range=rng, signed=signed))
        elif kind == "wire":
            items.append(ast.NetDecl(kind="wire", names=[name], range=rng, signed=signed))
        return items

    # -- module items ------------------------------------------------------

    def _parse_module_item(self):
        tok = self._current
        if tok.is_keyword("input") or tok.is_keyword("output") or tok.is_keyword("inout"):
            return self._parse_port_decl()
        if tok.is_keyword("wire") or tok.is_keyword("reg") or tok.is_keyword("integer"):
            return self._parse_net_decl()
        if tok.is_keyword("parameter") or tok.is_keyword("localparam"):
            return self._parse_param_decl()
        if tok.is_keyword("assign"):
            return self._parse_continuous_assign()
        if tok.is_keyword("always"):
            return self._parse_always()
        if tok.is_keyword("initial"):
            return self._parse_initial()
        raise self._error("unsupported module item")

    def _parse_range(self) -> ast.Range:
        self._expect_punct("[")
        msb = self.parse_expression()
        self._expect_punct(":")
        lsb = self.parse_expression()
        self._expect_punct("]")
        return ast.Range(msb=msb, lsb=lsb)

    def _parse_name_list(self) -> List[str]:
        names = [self._expect_ident()]
        while self._accept_punct(","):
            names.append(self._expect_ident())
        return names

    def _parse_port_decl(self) -> ast.PortDecl:
        direction = self._advance().value
        extra_reg = False
        if self._current.is_keyword("reg"):
            self._advance()
            extra_reg = True
        elif self._current.is_keyword("wire"):
            self._advance()
        signed = self._accept_keyword("signed")
        rng = None
        if self._current.is_punct("["):
            rng = self._parse_range()
        names = self._parse_name_list()
        self._expect_punct(";")
        decl = ast.PortDecl(direction=direction, names=names, range=rng)
        if extra_reg:
            return [decl, ast.NetDecl(kind="reg", names=list(names), range=rng, signed=signed)]
        return decl

    def _parse_net_decl(self) -> ast.ModuleItem:
        kind = self._advance().value
        signed = self._accept_keyword("signed")
        rng = None
        if self._current.is_punct("["):
            rng = self._parse_range()
        names = []
        items = []
        while True:
            name = self._expect_ident()
            names.append(name)
            if self._accept_punct("="):
                # net declaration with initialiser: treat as continuous assign
                value = self.parse_expression()
                items.append(ast.ContinuousAssign(target=ast.Identifier(name), value=value))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        decl = ast.NetDecl(kind=kind, names=names, range=rng, signed=signed)
        if items:
            return [decl] + items
        return decl

    def _parse_param_decl(self) -> List[ast.ParamDecl]:
        local = self._advance().value == "localparam"
        if self._current.is_punct("["):
            self._parse_range()
        decls = []
        while True:
            name = self._expect_ident()
            self._expect_punct("=")
            value = self.parse_expression()
            decls.append(ast.ParamDecl(name=name, value=value, local=local))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return decls

    def _parse_continuous_assign(self) -> List[ast.ContinuousAssign]:
        self._expect_keyword("assign")
        assigns = []
        while True:
            target = self._parse_lvalue()
            self._expect_punct("=")
            value = self.parse_expression()
            assigns.append(ast.ContinuousAssign(target=target, value=value))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return assigns

    def _parse_always(self) -> ast.AlwaysBlock:
        self._expect_keyword("always")
        self._expect_punct("@")
        sensitivity = self._parse_sensitivity()
        body = self.parse_statement()
        return ast.AlwaysBlock(sensitivity=sensitivity, body=body)

    def _parse_sensitivity(self) -> ast.Sensitivity:
        sens = ast.Sensitivity()
        if self._accept_punct("*"):
            sens.star = True
            return sens
        self._expect_punct("(")
        if self._accept_punct("*"):
            sens.star = True
            self._expect_punct(")")
            return sens
        while True:
            if self._current.is_keyword("posedge") or self._current.is_keyword("negedge"):
                edge = self._advance().value
                signal = self._expect_ident()
                sens.edges.append(ast.EdgeEvent(edge=edge, signal=signal))
            else:
                sens.levels.append(self._expect_ident())
            if self._accept_punct(",") or self._accept_keyword("or"):
                continue
            break
        self._expect_punct(")")
        return sens

    def _parse_initial(self) -> ast.InitialBlock:
        self._expect_keyword("initial")
        body = self.parse_statement()
        return ast.InitialBlock(body=body)

    # -- statements ---------------------------------------------------------

    def parse_statement(self) -> ast.Stmt:
        """Parse a procedural statement."""
        if self._current.is_keyword("begin"):
            return self._parse_block()
        if self._current.is_keyword("if"):
            return self._parse_if()
        if (
            self._current.is_keyword("case")
            or self._current.is_keyword("casez")
            or self._current.is_keyword("casex")
        ):
            return self._parse_case()
        if self._current.is_punct(";"):
            self._advance()
            return ast.Block()
        return self._parse_assignment_stmt()

    def _parse_block(self) -> ast.Block:
        self._expect_keyword("begin")
        if self._accept_punct(":"):
            self._expect_ident()
        statements = []
        while not self._current.is_keyword("end"):
            if self._current.kind is TokenKind.EOF:
                raise self._error("unexpected end of input inside begin/end")
            statements.append(self.parse_statement())
        self._expect_keyword("end")
        return ast.Block(statements=statements)

    def _parse_if(self) -> ast.If:
        self._expect_keyword("if")
        self._expect_punct("(")
        condition = self.parse_expression()
        self._expect_punct(")")
        then_body = self.parse_statement()
        else_body = None
        if self._accept_keyword("else"):
            else_body = self.parse_statement()
        return ast.If(condition=condition, then_body=then_body, else_body=else_body)

    def _parse_case(self) -> ast.Case:
        keyword = self._advance().value
        self._expect_punct("(")
        subject = self.parse_expression()
        self._expect_punct(")")
        case = ast.Case(subject=subject, wildcard=keyword in ("casez", "casex"))
        while not self._current.is_keyword("endcase"):
            if self._current.kind is TokenKind.EOF:
                raise self._error("unexpected end of input inside case")
            if self._accept_keyword("default"):
                self._accept_punct(":")
                case.default = self.parse_statement()
                continue
            labels = [self.parse_expression()]
            while self._accept_punct(","):
                labels.append(self.parse_expression())
            self._expect_punct(":")
            body = self.parse_statement()
            case.items.append(ast.CaseItem(labels=labels, body=body))
        self._expect_keyword("endcase")
        return case

    def _parse_assignment_stmt(self) -> ast.Assignment:
        target = self._parse_lvalue()
        if self._accept_punct("<="):
            blocking = False
        elif self._accept_punct("="):
            blocking = True
        else:
            raise self._error("expected '=' or '<=' in assignment")
        value = self.parse_expression()
        self._expect_punct(";")
        return ast.Assignment(target=target, value=value, blocking=blocking)

    def _parse_lvalue(self) -> ast.Expr:
        if self._current.is_punct("{"):
            return self._parse_concat()
        name = self._expect_ident()
        expr: ast.Expr = ast.Identifier(name)
        while self._current.is_punct("["):
            self._advance()
            first = self.parse_expression()
            if self._accept_punct(":"):
                second = self.parse_expression()
                self._expect_punct("]")
                expr = ast.PartSelect(base=expr, msb=first, lsb=second)
            else:
                self._expect_punct("]")
                expr = ast.BitSelect(base=expr, index=first)
        return expr

    # -- expressions ---------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        """Parse an expression (ternary is the lowest-precedence level)."""
        condition = self._parse_binary(0)
        if self._accept_punct("?"):
            then = self.parse_expression()
            self._expect_punct(":")
            otherwise = self.parse_expression()
            return ast.Ternary(cond=condition, then=then, otherwise=otherwise)
        return condition

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            tok = self._current
            if tok.kind is not TokenKind.PUNCT or tok.value not in _BINARY_PRECEDENCE:
                return left
            precedence = _BINARY_PRECEDENCE[tok.value]
            if precedence < min_precedence:
                return left
            op = self._advance().value
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(op=op, left=left, right=right)

    def _parse_unary(self) -> ast.Expr:
        tok = self._current
        if tok.kind is TokenKind.PUNCT and tok.value in _UNARY_OPS:
            op = self._advance().value
            operand = self._parse_unary()
            if op == "+":
                return operand
            return ast.Unary(op=op, operand=operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self._current
        if tok.kind is TokenKind.NUMBER:
            self._advance()
            return ast.Number(value=int(tok.value.replace("_", "")))
        if tok.kind is TokenKind.BASED_NUMBER:
            self._advance()
            return _parse_based_number(tok.value)
        if tok.kind is TokenKind.IDENT:
            self._advance()
            expr: ast.Expr = ast.Identifier(tok.value)
            while self._current.is_punct("["):
                self._advance()
                first = self.parse_expression()
                if self._accept_punct(":"):
                    second = self.parse_expression()
                    self._expect_punct("]")
                    expr = ast.PartSelect(base=expr, msb=first, lsb=second)
                else:
                    self._expect_punct("]")
                    expr = ast.BitSelect(base=expr, index=first)
            return expr
        if tok.is_punct("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr
        if tok.is_punct("{"):
            return self._parse_concat()
        raise self._error("expected expression")

    def _parse_concat(self) -> ast.Expr:
        self._expect_punct("{")
        first = self.parse_expression()
        if self._current.is_punct("{"):
            # Replication: {N{expr}}
            self._advance()
            value = self.parse_expression()
            self._expect_punct("}")
            self._expect_punct("}")
            return ast.Replicate(count=first, value=value)
        parts = [first]
        while self._accept_punct(","):
            parts.append(self.parse_expression())
        self._expect_punct("}")
        if len(parts) == 1:
            return parts[0]
        return ast.Concat(parts=tuple(parts))


def _parse_based_number(text: str) -> ast.Number:
    """Convert a based literal such as ``8'hFF`` or ``1'b0`` to a Number node."""
    size_text, _, rest = text.partition("'")
    rest = rest.lstrip("sS")
    base_char = rest[0].lower()
    digits = rest[1:].replace("_", "").replace("?", "0")
    digits = digits.replace("x", "0").replace("X", "0").replace("z", "0").replace("Z", "0")
    base = {"b": 2, "o": 8, "d": 10, "h": 16}[base_char]
    value = int(digits, base) if digits else 0
    width = int(size_text) if size_text else None
    return ast.Number(value=value, width=width)


def parse_source(text: str) -> ast.SourceFile:
    """Parse Verilog source text into a :class:`SourceFile`."""
    return Parser(tokenize(text)).parse_source()


def parse_module(text: str, name: Optional[str] = None) -> ast.Module:
    """Parse Verilog source text and return one module from it."""
    return parse_source(text).module(name)


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone Verilog expression (used by the SVA boolean layer)."""
    parser = Parser(tokenize(text))
    expr = parser.parse_expression()
    if parser._current.kind is not TokenKind.EOF:
        raise ParseError(
            f"trailing input after expression: {parser._current.value!r}",
            parser._current.line,
            parser._current.column,
        )
    return expr
