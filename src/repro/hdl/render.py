"""Render a parsed module back to Verilog source text.

The mutation subsystem (:mod:`repro.mutate`) edits the AST of an elaborated
design and needs the result as *source text* again: a mutant is a first-class
:class:`~repro.hdl.design.Design`, content-addressed by its source
fingerprint, so verdict/reachability caches, worker pickling, and the run
store all treat it exactly like a golden design.

The renderer targets the same Verilog subset the parser accepts, so
``parse_source(render_module(module))`` always succeeds, and for an
unmutated module it elaborates to the same :class:`~repro.hdl.elaborate.RtlModel`
(same signals, widths, processes, and semantics — formatting and numeric
bases are canonicalised, e.g. ``8'hFF`` renders as ``8'd255``).
"""

from __future__ import annotations

from typing import List

from . import ast

__all__ = ["render_module", "render_stmt", "render_expr"]

_INDENT = "  "


def render_expr(expr: ast.Expr) -> str:
    """Render one expression (the AST nodes' ``__str__`` is already canonical)."""
    return str(expr)


def _render_range(rng: ast.Range) -> str:
    return f"[{rng.msb}:{rng.lsb}]"


def _decl_suffix(rng, names: List[str]) -> str:
    prefix = f" {_render_range(rng)}" if rng is not None else ""
    return f"{prefix} {', '.join(names)};"


def render_stmt(stmt: ast.Stmt, indent: int = 0) -> List[str]:
    """Render one procedural statement as a list of source lines."""
    pad = _INDENT * indent
    if isinstance(stmt, ast.Block):
        if not stmt.statements:
            return [f"{pad};"]
        lines = [f"{pad}begin"]
        for inner in stmt.statements:
            lines.extend(render_stmt(inner, indent + 1))
        lines.append(f"{pad}end")
        return lines
    if isinstance(stmt, ast.Assignment):
        op = "=" if stmt.blocking else "<="
        return [f"{pad}{stmt.target} {op} {stmt.value};"]
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if ({stmt.condition})"]
        lines.extend(render_stmt(stmt.then_body, indent + 1))
        if stmt.else_body is not None:
            lines.append(f"{pad}else")
            lines.extend(render_stmt(stmt.else_body, indent + 1))
        return lines
    if isinstance(stmt, ast.Case):
        keyword = "casez" if stmt.wildcard else "case"
        lines = [f"{pad}{keyword} ({stmt.subject})"]
        for item in stmt.items:
            labels = ", ".join(str(label) for label in item.labels)
            lines.append(f"{pad}{_INDENT}{labels}:")
            lines.extend(render_stmt(item.body, indent + 2))
        if stmt.default is not None:
            lines.append(f"{pad}{_INDENT}default:")
            lines.extend(render_stmt(stmt.default, indent + 2))
        lines.append(f"{pad}endcase")
        return lines
    raise TypeError(f"cannot render statement {stmt!r}")


def _render_sensitivity(sens: ast.Sensitivity) -> str:
    if sens.star:
        return "@(*)"
    parts = [f"{edge.edge} {edge.signal}" for edge in sens.edges]
    parts.extend(sens.levels)
    return f"@({' or '.join(parts)})"


def _render_item(item: ast.ModuleItem) -> List[str]:
    if isinstance(item, ast.PortDecl):
        return [f"{_INDENT}{item.direction}{_decl_suffix(item.range, item.names)}"]
    if isinstance(item, ast.NetDecl):
        signed = " signed" if item.signed else ""
        if item.kind == "integer":
            return [f"{_INDENT}integer {', '.join(item.names)};"]
        return [f"{_INDENT}{item.kind}{signed}{_decl_suffix(item.range, item.names)}"]
    if isinstance(item, ast.ParamDecl):
        keyword = "localparam" if item.local else "parameter"
        return [f"{_INDENT}{keyword} {item.name} = {item.value};"]
    if isinstance(item, ast.ContinuousAssign):
        return [f"{_INDENT}assign {item.target} = {item.value};"]
    if isinstance(item, ast.AlwaysBlock):
        lines = [f"{_INDENT}always {_render_sensitivity(item.sensitivity)}"]
        lines.extend(render_stmt(item.body, 2))
        return lines
    if isinstance(item, ast.InitialBlock):
        lines = [f"{_INDENT}initial"]
        lines.extend(render_stmt(item.body, 2))
        return lines
    raise TypeError(f"cannot render module item {item!r}")


def render_module(module: ast.Module) -> str:
    """Render a module AST to parseable Verilog source text."""
    header = ""
    if module.header_params:
        params = ", ".join(
            f"parameter {decl.name} = {decl.value}" for decl in module.header_params
        )
        header = f" #({params})"
    ports = f"({', '.join(module.port_order)})" if module.port_order else "()"
    lines = [f"module {module.name}{header}{ports};"]
    for item in module.items:
        lines.extend(_render_item(item))
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
