"""Token definitions shared by the Verilog lexer and parser."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical categories produced by :class:`repro.hdl.lexer.Lexer`."""

    IDENT = "ident"
    NUMBER = "number"
    BASED_NUMBER = "based_number"
    STRING = "string"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


#: Reserved words of the supported Verilog subset.
KEYWORDS = frozenset(
    {
        "module",
        "endmodule",
        "input",
        "output",
        "inout",
        "wire",
        "reg",
        "integer",
        "parameter",
        "localparam",
        "assign",
        "always",
        "initial",
        "begin",
        "end",
        "if",
        "else",
        "case",
        "casez",
        "casex",
        "endcase",
        "default",
        "posedge",
        "negedge",
        "or",
        "for",
        "generate",
        "endgenerate",
        "genvar",
        "function",
        "endfunction",
        "signed",
    }
)

#: Multi-character punctuation, longest-match-first.
MULTI_CHAR_PUNCT = (
    "|->",
    "|=>",
    "##",
    "<<<",
    ">>>",
    "===",
    "!==",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "<<",
    ">>",
    "**",
    "+:",
    "-:",
)

SINGLE_CHAR_PUNCT = "()[]{};:,.#@=+-*/%&|^~!<>?"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value == word

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.value == text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.value!r}, {self.line}:{self.column})"
