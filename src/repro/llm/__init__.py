"""LLM substrate: prompts, decoding, simulated COTS models, AssertionLLM."""

from .assertion_llm import AssertionLLM, LearnedStatistics, TrainingExample, learn_statistics
from .cots import AssertionGenerator, SimulatedCotsLLM, build_cots_models
from .decoding import DecodingConfig, GenerationResult, enforce_token_limit
from .finetune import FineTuner, FineTuningConfig, FineTuningReport, competence_from, split_designs
from .profiles import (
    CEX,
    CODELLAMA_2,
    COTS_PROFILES,
    FINETUNED_CODELLAMA_2,
    FINETUNED_LLAMA3_70B,
    FINETUNED_PROFILES,
    GPT_35,
    GPT_4O,
    LLAMA3_70B,
    SYNTAX_ERROR,
    VALID,
    ModelProfile,
    OutcomeMix,
    profile_by_name,
)
from .prompt import TASK_DESCRIPTION, InContextExample, Prompt, PromptBuilder, flatten_verilog
from .tokenizer import NgramModel, count_tokens, ngrams, token_histogram, tokenize_text

__all__ = [
    "AssertionGenerator",
    "AssertionLLM",
    "CEX",
    "CODELLAMA_2",
    "COTS_PROFILES",
    "DecodingConfig",
    "FINETUNED_CODELLAMA_2",
    "FINETUNED_LLAMA3_70B",
    "FINETUNED_PROFILES",
    "FineTuner",
    "FineTuningConfig",
    "FineTuningReport",
    "GPT_35",
    "GPT_4O",
    "GenerationResult",
    "InContextExample",
    "LLAMA3_70B",
    "LearnedStatistics",
    "ModelProfile",
    "NgramModel",
    "OutcomeMix",
    "Prompt",
    "PromptBuilder",
    "SYNTAX_ERROR",
    "SimulatedCotsLLM",
    "TASK_DESCRIPTION",
    "TrainingExample",
    "VALID",
    "build_cots_models",
    "competence_from",
    "count_tokens",
    "enforce_token_limit",
    "flatten_verilog",
    "learn_statistics",
    "ngrams",
    "profile_by_name",
    "split_designs",
    "token_histogram",
    "tokenize_text",
]
