"""AssertionLLM: the fine-tuned assertion-generation model (paper Section VI).

The real AssertionLLM is a CodeLLaMa 2 / LLaMa3-70B checkpoint fine-tuned for
20 epochs on design/assertion pairs drawn from AssertionBench.  Offline, we
substitute a *trainable statistical generator*: fine-tuning fits

* a template distribution (implication flavour, antecedent size, temporal
  depth) over the training assertions,
* signal-role statistics (how often antecedent atoms test inputs vs state
  registers, and consequents test outputs vs state),
* an n-gram fluency model over the training assertion token streams,

and the generator uses those learned statistics to pick and shape candidates
for an unseen design.  The residual error behaviour of the underlying
foundation model (how often output is still syntactically broken or
semantically wrong after fine-tuning) is calibrated against the paper's
Figure 9, interpolated by how much training data the tuner actually saw —
with no training data the model behaves exactly like its foundation profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bench.knowledge import DesignKnowledgeBase
from ..hdl.design import Design
from ..sva.model import OVERLAPPED, Assertion
from .cots import GenerationContext, SimulatedCotsLLM
from .decoding import DecodingConfig, GenerationResult
from .profiles import FINETUNED_PROFILES, ModelProfile, OutcomeMix
from .prompt import Prompt
from .tokenizer import NgramModel


@dataclass
class TrainingExample:
    """One fine-tuning sample: a design and its formally verified assertions."""

    design: Design
    assertions: List[Assertion] = field(default_factory=list)


@dataclass
class LearnedStatistics:
    """What fine-tuning extracted from the training set."""

    num_examples: int = 0
    num_assertions: int = 0
    implication_counts: Dict[str, int] = field(default_factory=dict)
    antecedent_size_counts: Dict[int, int] = field(default_factory=dict)
    temporal_depth_counts: Dict[int, int] = field(default_factory=dict)
    antecedent_role_counts: Dict[str, int] = field(default_factory=dict)
    consequent_role_counts: Dict[str, int] = field(default_factory=dict)
    ngram: Optional[NgramModel] = None

    @property
    def average_assertions_per_design(self) -> float:
        if not self.num_examples:
            return 0.0
        return self.num_assertions / self.num_examples

    def implication_preference(self) -> str:
        """The implication flavour most common in the training data."""
        if not self.implication_counts:
            return OVERLAPPED
        return max(self.implication_counts, key=self.implication_counts.get)


def _signal_role(design: Design, name: str) -> str:
    model = design.model
    if name in model.inputs:
        return "input"
    if name in model.outputs:
        return "output"
    if name in set(model.state_regs):
        return "state"
    return "wire"


def learn_statistics(dataset: List[TrainingExample], ngram_order: int = 3) -> LearnedStatistics:
    """Fit the template/role/n-gram statistics from the training examples."""
    stats = LearnedStatistics(ngram=NgramModel(order=ngram_order))
    texts: List[str] = []
    for example in dataset:
        stats.num_examples += 1
        for assertion in example.assertions:
            stats.num_assertions += 1
            stats.implication_counts[assertion.implication] = (
                stats.implication_counts.get(assertion.implication, 0) + 1
            )
            size = len(assertion.antecedent)
            stats.antecedent_size_counts[size] = stats.antecedent_size_counts.get(size, 0) + 1
            depth = assertion.temporal_depth
            stats.temporal_depth_counts[depth] = stats.temporal_depth_counts.get(depth, 0) + 1
            for term in assertion.antecedent:
                for name in term.signals():
                    role = _signal_role(example.design, name)
                    stats.antecedent_role_counts[role] = (
                        stats.antecedent_role_counts.get(role, 0) + 1
                    )
            for term in assertion.consequent:
                for name in term.signals():
                    role = _signal_role(example.design, name)
                    stats.consequent_role_counts[role] = (
                        stats.consequent_role_counts.get(role, 0) + 1
                    )
            texts.append(assertion.to_sva(include_assert=False))
    if texts and stats.ngram is not None:
        stats.ngram.fit(texts)
    return stats


class AssertionLLM(SimulatedCotsLLM):
    """Fine-tuned assertion generator built on top of a foundation profile."""

    def __init__(
        self,
        foundation: ModelProfile,
        statistics: LearnedStatistics,
        competence: float,
        knowledge: Optional[DesignKnowledgeBase] = None,
    ):
        tuned_profile = FINETUNED_PROFILES.get(foundation.name)
        if tuned_profile is None:
            raise KeyError(
                f"no fine-tuned calibration available for foundation {foundation.name!r}"
            )
        self.foundation = foundation
        self.statistics = statistics
        self.competence = max(0.0, min(1.0, competence))
        blended = self._blend_profile(foundation, tuned_profile, self.competence)
        super().__init__(blended, knowledge)
        self.name = tuned_profile.name

    # -- profile blending ------------------------------------------------------------

    @staticmethod
    def _blend_profile(
        foundation: ModelProfile, tuned: ModelProfile, competence: float
    ) -> ModelProfile:
        """Interpolate outcome mixes between the foundation and tuned anchors.

        ``competence`` 0.0 reproduces the untouched foundation behaviour;
        1.0 reproduces the fully fine-tuned calibration (Figure 9).
        """
        mixes = {}
        for k in sorted(set(foundation.mixes) | set(tuned.mixes)):
            base = foundation.mix_for(k)
            target = tuned.mix_for(k)
            valid = base.valid + competence * (target.valid - base.valid)
            cex = base.cex + competence * (target.cex - base.cex)
            error = max(0.0, 1.0 - valid - cex)
            mixes[k] = OutcomeMix(valid=valid, cex=cex, error=error)
        return ModelProfile(
            name=tuned.name,
            family=tuned.family,
            parameters_billion=tuned.parameters_billion,
            context_window=tuned.context_window,
            mixes=mixes,
            off_language_probability=tuned.off_language_probability
            + (1.0 - competence) * foundation.off_language_probability,
            empty_generation_probability=(1.0 - competence)
            * foundation.empty_generation_probability,
            unfixable_error_bias=tuned.unfixable_error_bias,
            assertions_per_design=tuned.assertions_per_design,
            fine_tuned=True,
        )

    # -- generation refinements ------------------------------------------------------------

    def generate(self, prompt: Prompt, config: DecodingConfig) -> GenerationResult:
        result = super().generate(prompt, config)
        if self.statistics.ngram is None or not result.lines:
            return result
        # Re-rank the emitted candidates by fluency under the learned n-gram
        # model: the fine-tuned model prefers phrasings it saw in training.
        scored = sorted(
            result.lines,
            key=lambda line: -self.statistics.ngram.sequence_logprob(line),
        )
        result.lines = scored
        return result

    def _emit_valid(self, context: GenerationContext) -> str:
        """Prefer pool assertions matching the learned template distribution."""
        if context.pool:
            preference = self.statistics.implication_preference()
            matching = [a for a in context.pool if a.implication == preference]
            pool = matching or context.pool
            assertion = context.rng.choice(pool)
            return self._render(assertion, context, allow_soft_noise=False)
        return self._render_tautology(context)


def describe_model(model: AssertionLLM) -> Dict[str, object]:
    """Structured summary of a fine-tuned model (used by reports and tests)."""
    return {
        "name": model.name,
        "foundation": model.foundation.name,
        "competence": model.competence,
        "training_examples": model.statistics.num_examples,
        "training_assertions": model.statistics.num_assertions,
        "implication_preference": model.statistics.implication_preference(),
        "vocabulary": model.statistics.ngram.vocabulary_size if model.statistics.ngram else 0,
    }
