"""Simulated commercial-off-the-shelf LLMs for assertion generation.

Each simulated model reads the same k-shot prompt a real model would receive
(Figure 5), inspects the test design it contains, and emits a list of
candidate SVA strings.  The *mechanism* is real — candidates are built from
the design's actual signals, verified pool entries, and realistic corruption
and formatting noise — while the *intended outcome mix* per model and k-shot
setting comes from the calibrated profiles in :mod:`repro.llm.profiles`
(see DESIGN.md for the substitution rationale).  Whatever the model emits is
then judged by the genuine corrector + FPV pipeline, so measured numbers are
close to, but not identical to, the intended mix — exactly as a measurement
of a black-box generator behaves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..bench.knowledge import DesignKnowledgeBase
from ..hdl import ast
from ..hdl.design import Design
from ..sva.model import Assertion, SequenceTerm
from .decoding import DecodingConfig, GenerationResult, enforce_token_limit
from .profiles import CEX, SYNTAX_ERROR, VALID, ModelProfile
from .prompt import Prompt

#: Plausible-but-wrong signal names appended by confused generators.
_PHANTOM_SIGNALS = (
    "xmit_hold_q",
    "cfg_shadow_word",
    "pkt_drop_cnt_q",
    "dbg_scan_chain",
    "phy_rx_er_i",
    "wb_cyc_stb_o",
    "bist_fail_lat",
    "csr_wdata_q",
    "dma_burst_len",
    "ecc_synd_word",
)

_OFF_LANGUAGE_SNIPPETS = (
    "public static void checkAssertion(String signal) { return signal != null; }",
    "def check_assertion(signal): return signal is not None",
    "for (int i = 0; i < 8; i++) { assert(data[i] >= 0); }",
    "System.out.println(\"assertion generated\");",
)

_UNSUPPORTED_SVA_SNIPPETS = (
    "s_eventually ({sig} == 1);",
    "({sig} == 1)[*2] |-> ({other} == 0);",
    "first_match(({sig} == 1) ##[1:3] ({other} == 1)) |-> ({sig} == 0);",
    "({sig} == 1) throughout ({other} == 0) |-> ({sig} == 1);",
)


@dataclass
class GenerationContext:
    """Everything a simulated model knows while answering one prompt."""

    design: Design
    k: int
    rng: random.Random
    pool: List[Assertion] = field(default_factory=list)


class AssertionGenerator:
    """Interface shared by simulated COTS models and the fine-tuned model."""

    name: str = "generator"

    def generate(self, prompt: Prompt, config: DecodingConfig) -> GenerationResult:
        raise NotImplementedError


class SimulatedCotsLLM(AssertionGenerator):
    """A profile-driven stand-in for one commercial LLM."""

    def __init__(
        self,
        profile: ModelProfile,
        knowledge: Optional[DesignKnowledgeBase] = None,
    ):
        self.profile = profile
        self.name = profile.name
        self._knowledge = knowledge or DesignKnowledgeBase()

    # -- public API ------------------------------------------------------------

    def generate(self, prompt: Prompt, config: DecodingConfig) -> GenerationResult:
        """Produce raw assertion text for the prompt's test design."""
        design = prompt.test_design
        rng = self._rng_for(design, prompt.k, config)
        context = GenerationContext(
            design=design,
            k=prompt.k,
            rng=rng,
            pool=self._knowledge.verified_assertions(design),
        )

        if rng.random() < self.profile.empty_generation_probability:
            return GenerationResult(model_name=self.name, lines=[], prompt_tokens=prompt.token_count)

        count = rng.randint(*self.profile.assertions_per_design)
        mix = self.profile.mix_for(prompt.k).as_dict()
        lines: List[str] = []
        for category in self._allocate_categories(mix, count, rng):
            lines.append(self._emit(category, context))

        lines, truncated = enforce_token_limit(lines, config.max_output_tokens)
        return GenerationResult(
            model_name=self.name,
            lines=lines,
            truncated=truncated,
            prompt_tokens=prompt.token_count,
        )

    # -- category sampling ---------------------------------------------------------

    def _rng_for(self, design: Design, k: int, config: DecodingConfig) -> random.Random:
        return random.Random(f"{config.seed}|{self.name}|{design.name}|{k}")

    def _sample_category(self, mix: Dict[str, float], rng: random.Random) -> str:
        roll = rng.random()
        cumulative = 0.0
        for category in (VALID, CEX, SYNTAX_ERROR):
            cumulative += mix[category]
            if roll <= cumulative:
                return category
        return SYNTAX_ERROR

    def _allocate_categories(
        self, mix: Dict[str, float], count: int, rng: random.Random
    ) -> List[str]:
        """Stratified category allocation (largest-remainder) plus shuffling.

        Sampling categories independently per assertion makes small-sample
        runs (a handful of designs) extremely noisy; allocating counts per
        category first keeps each generation close to the model's intended
        outcome mix while the residual fraction is still sampled randomly.
        """
        allocations: List[str] = []
        remainders: List[tuple] = []
        assigned = 0
        for category in (VALID, CEX, SYNTAX_ERROR):
            exact = mix[category] * count
            whole = int(exact)
            allocations.extend([category] * whole)
            assigned += whole
            remainders.append((exact - whole, category))
        remainders.sort(reverse=True)
        index = 0
        while assigned < count:
            weight, category = remainders[index % len(remainders)]
            if weight > 0 and rng.random() < max(weight, 0.34):
                allocations.append(category)
                assigned += 1
            index += 1
            if index > 12:
                allocations.append(self._sample_category(mix, rng))
                assigned += 1
        rng.shuffle(allocations)
        return allocations

    # -- emission per category ---------------------------------------------------------

    def _emit(self, category: str, context: GenerationContext) -> str:
        if category == VALID:
            return self._emit_valid(context)
        if category == CEX:
            return self._emit_cex(context)
        return self._emit_error(context)

    def _emit_valid(self, context: GenerationContext) -> str:
        """An assertion intended to be proven by the FPV engine."""
        if context.pool:
            assertion = context.rng.choice(context.pool)
            return self._render(assertion, context, allow_soft_noise=True)
        return self._render_tautology(context)

    def _emit_cex(self, context: GenerationContext) -> str:
        """An assertion intended to fail with a counterexample."""
        if context.pool:
            base = context.rng.choice(context.pool)
            corrupted = self._corrupt_semantics(base, context)
            return self._render(corrupted, context, allow_soft_noise=True)
        return self._render_fabricated_failure(context)

    def _emit_error(self, context: GenerationContext) -> str:
        """Text intended to remain unparseable/unbindable after correction."""
        rng = context.rng
        if rng.random() < self.profile.off_language_probability:
            return rng.choice(_OFF_LANGUAGE_SNIPPETS)
        if rng.random() < self.profile.unfixable_error_bias:
            flavour = rng.random()
            sig, other = self._two_signals(context)
            if flavour < 0.4:
                template = rng.choice(_UNSUPPORTED_SVA_SNIPPETS)
                return template.format(sig=sig, other=other)
            if flavour < 0.8:
                phantom = rng.choice(_PHANTOM_SIGNALS)
                return f"({phantom} == 1) |-> ({sig} == 0);"
            return f"assert property (({sig} == ##) |-> ({other};"
        # A "soft" error: near-miss syntax the corrector may well repair; it
        # then lands in whichever semantic bucket the repaired assertion earns.
        sig, other = self._two_signals(context)
        return f"({sig} = 1) -> ({other} = 0)"

    # -- rendering helpers -----------------------------------------------------------------

    def _render(
        self, assertion: Assertion, context: GenerationContext, allow_soft_noise: bool
    ) -> str:
        rng = context.rng
        style = rng.random()
        if style < 0.4:
            text = assertion.to_sva(include_assert=False)
        elif style < 0.7:
            text = assertion.to_sva(include_assert=True)
        else:
            stripped = Assertion(
                antecedent=assertion.antecedent,
                consequent=assertion.consequent,
                implication=assertion.implication,
                clock=None,
                name="",
            )
            text = stripped.to_sva(include_assert=False)
        if allow_soft_noise and rng.random() < 0.15:
            text = text.replace("|->", "->").replace("|=>", "=>")
        return text

    def _render_tautology(self, context: GenerationContext) -> str:
        """A trivially true assertion over a real design signal."""
        name = self._one_signal(context)
        width = context.design.model.signals[name].width
        max_value = (1 << width) - 1
        return f"({name} <= {max_value}) |-> ({name} == {name});"

    def _render_fabricated_failure(self, context: GenerationContext) -> str:
        sig, other = self._two_signals(context)
        width = context.design.model.signals[other].width
        impossible = (1 << width) - 1 if width > 1 else 1
        return f"({sig} == 0) |-> ({other} == {impossible});"

    def _corrupt_semantics(
        self, assertion: Assertion, context: GenerationContext
    ) -> Assertion:
        """Make a verified assertion semantically wrong."""
        rng = context.rng
        consequent = list(assertion.consequent)
        index = rng.randrange(len(consequent))
        term = consequent[index]
        choice = rng.random()
        if choice < 0.6:
            corrupted_expr: ast.Expr = ast.Unary("!", term.expr)
        elif choice < 0.85 and isinstance(term.expr, ast.Binary) and isinstance(
            term.expr.right, ast.Number
        ):
            corrupted_expr = ast.Binary(
                term.expr.op,
                term.expr.left,
                ast.Number(term.expr.right.value + 1),
            )
        else:
            other = self._one_signal(context)
            corrupted_expr = ast.Binary("==", ast.Identifier(other), ast.Number(0))
            if isinstance(term.expr, ast.Binary):
                corrupted_expr = ast.Binary(
                    "==", ast.Identifier(other), ast.Unary("!", term.expr)
                )
        consequent[index] = SequenceTerm(term.offset, corrupted_expr)
        return Assertion(
            antecedent=list(assertion.antecedent),
            consequent=consequent,
            implication=assertion.implication,
            clock=assertion.clock,
        )

    def _signal_candidates(self, context: GenerationContext) -> List[str]:
        model = context.design.model
        names = [
            name
            for name in model.signals
            if name not in model.clocks and name not in model.resets
        ]
        return names or list(model.signals)

    def _one_signal(self, context: GenerationContext) -> str:
        return context.rng.choice(self._signal_candidates(context))

    def _two_signals(self, context: GenerationContext) -> (str, str):
        candidates = self._signal_candidates(context)
        first = context.rng.choice(candidates)
        second = context.rng.choice(candidates)
        return first, second


def build_cots_models(
    profiles: Sequence[ModelProfile],
    knowledge: Optional[DesignKnowledgeBase] = None,
) -> List[SimulatedCotsLLM]:
    """Instantiate simulated models sharing one knowledge base."""
    shared = knowledge or DesignKnowledgeBase()
    return [SimulatedCotsLLM(profile, shared) for profile in profiles]
