"""Decoding configuration and generation results.

The paper's ICL hyper-parameters (Section IV): maximum output tokens 1024,
greedy decoding, temperature 1.0, top-p 0.95, random seed 50.  The simulated
models honour the token cap and derive their stochastic choices from the
seed, so repeated runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .tokenizer import count_tokens


@dataclass(frozen=True)
class DecodingConfig:
    """Generation hyper-parameters (paper defaults)."""

    max_output_tokens: int = 1024
    temperature: float = 1.0
    top_p: float = 0.95
    greedy: bool = True
    seed: int = 50

    def with_seed(self, seed: int) -> "DecodingConfig":
        return DecodingConfig(
            max_output_tokens=self.max_output_tokens,
            temperature=self.temperature,
            top_p=self.top_p,
            greedy=self.greedy,
            seed=seed,
        )


@dataclass
class GenerationResult:
    """Raw output of one generation call."""

    model_name: str
    lines: List[str] = field(default_factory=list)
    truncated: bool = False
    prompt_tokens: int = 0

    @property
    def text(self) -> str:
        return "\n".join(self.lines)

    @property
    def output_tokens(self) -> int:
        return count_tokens(self.text)

    @property
    def num_assertions(self) -> int:
        return len(self.lines)


def enforce_token_limit(lines: List[str], max_tokens: int) -> (List[str], bool):
    """Truncate a list of generated lines to the output-token budget."""
    kept: List[str] = []
    used = 0
    for line in lines:
        tokens = count_tokens(line)
        if used + tokens > max_tokens:
            return kept, True
        kept.append(line)
        used += tokens
    return kept, False
