"""Fine-tuning pipeline for AssertionLLM (paper Section VI).

The paper fine-tunes each foundation model for 20 epochs on 75% of
AssertionBench (design/assertion pairs) and evaluates on the remaining 25%.
Our tuner reproduces that pipeline: it splits the corpus, builds the
training dataset from formally verified assertions, fits the learned
statistics, and returns an :class:`AssertionLLM` whose *competence* grows
with the amount of data and the number of epochs (saturating the calibrated
Figure-9 behaviour once the full training split and the paper's 20 epochs are
used).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..bench.knowledge import DesignKnowledgeBase
from ..hdl.design import Design
from .assertion_llm import AssertionLLM, LearnedStatistics, TrainingExample, learn_statistics
from .profiles import ModelProfile


@dataclass
class FineTuningConfig:
    """Hyper-parameters of the fine-tuning run (paper defaults)."""

    epochs: int = 20
    train_fraction: float = 0.75
    seed: int = 50
    #: Number of training examples at which competence saturates; the paper's
    #: training split (75 designs) sits past this knee.
    saturation_examples: int = 40
    #: Epochs at which the learning-rate schedule saturates.
    saturation_epochs: int = 20


@dataclass
class FineTuningReport:
    """Record of one fine-tuning run."""

    foundation: str
    num_train_designs: int
    num_test_designs: int
    num_training_assertions: int
    epochs: int
    competence: float
    train_design_names: List[str] = field(default_factory=list)
    test_design_names: List[str] = field(default_factory=list)


def split_designs(
    designs: Sequence[Design], train_fraction: float, seed: int
) -> Tuple[List[Design], List[Design]]:
    """Deterministically split designs into train/test partitions."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    shuffled = list(designs)
    random.Random(seed).shuffle(shuffled)
    cut = max(1, int(round(len(shuffled) * train_fraction)))
    cut = min(cut, len(shuffled) - 1) if len(shuffled) > 1 else cut
    return shuffled[:cut], shuffled[cut:]


def competence_from(
    num_examples: int, epochs: int, config: FineTuningConfig
) -> float:
    """Saturating learning curve mapping data volume and epochs to competence.

    Competence 0.0 leaves the foundation behaviour untouched; 1.0 reaches the
    calibrated fine-tuned behaviour.  Both factors follow a smooth
    diminishing-returns curve (1 - exp(-x)), mirroring the usual shape of
    fine-tuning validation curves.
    """
    if num_examples <= 0 or epochs <= 0:
        return 0.0
    data_factor = 1.0 - math.exp(-3.0 * num_examples / max(config.saturation_examples, 1))
    epoch_factor = 1.0 - math.exp(-3.0 * epochs / max(config.saturation_epochs, 1))
    return min(1.0, data_factor * epoch_factor / (1.0 - math.exp(-3.0)) ** 2)


class FineTuner:
    """Build fine-tuned AssertionLLM instances from a design corpus."""

    def __init__(
        self,
        knowledge: Optional[DesignKnowledgeBase] = None,
        config: Optional[FineTuningConfig] = None,
    ):
        self._knowledge = knowledge or DesignKnowledgeBase()
        self._config = config or FineTuningConfig()

    @property
    def config(self) -> FineTuningConfig:
        return self._config

    # -- dataset construction ------------------------------------------------------

    def build_dataset(self, designs: Sequence[Design]) -> List[TrainingExample]:
        """Mine and verify assertions for each training design."""
        dataset: List[TrainingExample] = []
        for design in designs:
            assertions = self._knowledge.verified_assertions(design)
            if assertions:
                dataset.append(TrainingExample(design=design, assertions=assertions))
        return dataset

    # -- fine-tuning -----------------------------------------------------------------

    def finetune(
        self,
        foundation: ModelProfile,
        designs: Sequence[Design],
        epochs: Optional[int] = None,
    ) -> Tuple[AssertionLLM, FineTuningReport]:
        """Split ``designs``, train on the 75% split, and return the model."""
        config = self._config
        train_designs, test_designs = split_designs(
            designs, config.train_fraction, config.seed
        )
        model, statistics = self.finetune_on(
            foundation, train_designs, epochs=epochs
        )
        report = FineTuningReport(
            foundation=foundation.name,
            num_train_designs=len(train_designs),
            num_test_designs=len(test_designs),
            num_training_assertions=statistics.num_assertions,
            epochs=epochs if epochs is not None else config.epochs,
            competence=model.competence,
            train_design_names=[design.name for design in train_designs],
            test_design_names=[design.name for design in test_designs],
        )
        return model, report

    def finetune_on(
        self,
        foundation: ModelProfile,
        train_designs: Sequence[Design],
        epochs: Optional[int] = None,
    ) -> Tuple[AssertionLLM, LearnedStatistics]:
        """Fine-tune on an explicit training set (no splitting)."""
        config = self._config
        used_epochs = epochs if epochs is not None else config.epochs
        dataset = self.build_dataset(train_designs)
        statistics = learn_statistics(dataset)
        competence = competence_from(len(dataset), used_epochs, config)
        model = AssertionLLM(
            foundation=foundation,
            statistics=statistics,
            competence=competence,
            knowledge=self._knowledge,
        )
        return model, statistics
