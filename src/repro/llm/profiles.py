"""Behaviour profiles of the simulated COTS and fine-tuned models.

The real study measures four commercial LLMs (GPT-3.5, GPT-4o, CodeLLaMa 2,
LLaMa3-70B) through the Figure-4 pipeline.  Those models are not available
offline, so each is substituted by a stochastic generator whose *outcome
mix* — the probability that an emitted assertion is semantically valid,
counterexample-producing, or syntactically broken — is calibrated to the
fractions the paper reports (Figures 6, 7, 9 and Observations 1-6).  The
mechanism of generation is real (assertions are constructed from the actual
design under test and flow through the real corrector/FPV pipeline); only the
intended outcome mix per model/k is taken from the paper.  DESIGN.md
documents this substitution.

Calibration anchors used below:

* Observation 1 — Pass improves 1-shot→5-shot by ~2x (GPT-3.5), ~1.2x
  (GPT-4o), ~1.12x (CodeLLaMa 2); LLaMa3-70B regresses 31% → 24%.
* Observation 2 — LLaMa3-70B emits markedly more syntax errors at 5-shot
  (~+19 points) and sometimes answers in another programming language.
* Observation 3 — GPT-4o is the most consistent model (up to +15.6% Pass).
* Observation 4 — no model exceeds ~44% average Pass; CEX up to 63%; Error up
  to ~33% on average.
* Observation 5/6 — fine-tuning CodeLLaMa 2 adds +29/+38 Pass points and
  removes 48/33 CEX points (1-/5-shot); fine-tuned LLaMa3-70B loses 4.7 Pass
  points at 1-shot and gains at 5-shot; both keep a sizeable Error fraction
  (up to ~38%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Outcome categories a generated assertion is aimed at.
VALID = "valid"
CEX = "cex"
SYNTAX_ERROR = "error"


@dataclass(frozen=True)
class OutcomeMix:
    """Target probabilities of each outcome category for one k-shot setting."""

    valid: float
    cex: float
    error: float

    def __post_init__(self):
        total = self.valid + self.cex + self.error
        if not 0.99 <= total <= 1.01:
            raise ValueError(f"outcome mix must sum to 1.0, got {total}")

    def as_dict(self) -> Dict[str, float]:
        return {VALID: self.valid, CEX: self.cex, SYNTAX_ERROR: self.error}


@dataclass(frozen=True)
class ModelProfile:
    """Static description of one simulated model."""

    name: str
    family: str
    parameters_billion: float
    context_window: int
    mixes: Dict[int, OutcomeMix]
    off_language_probability: float = 0.0
    empty_generation_probability: float = 0.0
    unfixable_error_bias: float = 0.85
    assertions_per_design: Tuple[int, int] = (3, 7)
    fine_tuned: bool = False

    def mix_for(self, k: int) -> OutcomeMix:
        """Outcome mix for a k-shot setting (nearest configured k)."""
        if k in self.mixes:
            return self.mixes[k]
        nearest = min(self.mixes, key=lambda known: abs(known - k))
        return self.mixes[nearest]


GPT_35 = ModelProfile(
    name="GPT-3.5",
    family="gpt",
    parameters_billion=175.0,
    context_window=16385,
    mixes={
        1: OutcomeMix(valid=0.18, cex=0.50, error=0.32),
        5: OutcomeMix(valid=0.36, cex=0.43, error=0.21),
    },
    unfixable_error_bias=0.88,
)

GPT_4O = ModelProfile(
    name="GPT-4o",
    family="gpt",
    parameters_billion=1800.0,
    context_window=128000,
    mixes={
        1: OutcomeMix(valid=0.37, cex=0.42, error=0.21),
        5: OutcomeMix(valid=0.44, cex=0.38, error=0.18),
    },
    unfixable_error_bias=0.85,
)

CODELLAMA_2 = ModelProfile(
    name="CodeLLaMa 2",
    family="llama",
    parameters_billion=70.0,
    context_window=4096,
    mixes={
        1: OutcomeMix(valid=0.25, cex=0.55, error=0.20),
        5: OutcomeMix(valid=0.28, cex=0.43, error=0.29),
    },
    unfixable_error_bias=0.88,
)

LLAMA3_70B = ModelProfile(
    name="LLaMa3-70B",
    family="llama",
    parameters_billion=70.0,
    context_window=8192,
    mixes={
        1: OutcomeMix(valid=0.31, cex=0.45, error=0.24),
        5: OutcomeMix(valid=0.24, cex=0.33, error=0.43),
    },
    off_language_probability=0.08,
    empty_generation_probability=0.04,
    unfixable_error_bias=0.95,
)

FINETUNED_CODELLAMA_2 = ModelProfile(
    name="AssertionLLM (CodeLLaMa 2)",
    family="llama",
    parameters_billion=70.0,
    context_window=4096,
    mixes={
        1: OutcomeMix(valid=0.54, cex=0.07, error=0.39),
        5: OutcomeMix(valid=0.66, cex=0.10, error=0.24),
    },
    unfixable_error_bias=0.9,
    fine_tuned=True,
)

FINETUNED_LLAMA3_70B = ModelProfile(
    name="AssertionLLM (LLaMa3-70B)",
    family="llama",
    parameters_billion=70.0,
    context_window=8192,
    mixes={
        1: OutcomeMix(valid=0.26, cex=0.50, error=0.24),
        5: OutcomeMix(valid=0.30, cex=0.37, error=0.33),
    },
    off_language_probability=0.02,
    unfixable_error_bias=0.92,
    fine_tuned=True,
)

#: The four COTS models evaluated in Figures 6 and 7, in the paper's order.
COTS_PROFILES: List[ModelProfile] = [GPT_35, GPT_4O, CODELLAMA_2, LLAMA3_70B]

#: Foundation model name -> fine-tuned profile (Figure 9).
FINETUNED_PROFILES: Dict[str, ModelProfile] = {
    CODELLAMA_2.name: FINETUNED_CODELLAMA_2,
    LLAMA3_70B.name: FINETUNED_LLAMA3_70B,
}


def profile_by_name(name: str) -> ModelProfile:
    """Look up a profile (COTS or fine-tuned) by display name."""
    for profile in COTS_PROFILES + list(FINETUNED_PROFILES.values()):
        if profile.name == name:
            return profile
    raise KeyError(f"unknown model profile {name!r}")
