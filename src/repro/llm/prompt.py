"""Prompt construction for k-shot in-context learning (paper Figure 5).

A prompt has four parts: (i) an English task description, (ii) ``k`` example
Verilog designs with newlines and comments removed, (iii) the formally
verified assertions of each example in SVA format, and (iv) the test design
(also flattened) for which assertions must be generated.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Sequence

from ..hdl.design import Design
from ..sva.model import Assertion
from .tokenizer import count_tokens

TASK_DESCRIPTION = (
    "You are an expert in SystemVerilog Assertions. "
    "Your task is to generate the list of assertions to the given verilog design. "
    "An example is shown below. Generate only the list of assertions for the test "
    "program with no additional text."
)


def flatten_verilog(source: str) -> str:
    """Remove comments and newlines from Verilog source (Figure 5 format)."""
    no_block = re.sub(r"/\*.*?\*/", " ", source, flags=re.DOTALL)
    no_line = re.sub(r"//[^\n]*", " ", no_block)
    return re.sub(r"\s+", " ", no_line).strip()


@dataclass
class InContextExample:
    """One ICE tuple: a design and its formally verified assertions."""

    design: Design
    assertions: List[Assertion] = field(default_factory=list)

    @property
    def assertion_texts(self) -> List[str]:
        return [assertion.to_sva(include_assert=False) for assertion in self.assertions]


@dataclass
class Prompt:
    """A fully rendered k-shot prompt."""

    task_description: str
    examples: List[InContextExample]
    test_design: Design
    text: str

    @property
    def k(self) -> int:
        return len(self.examples)

    @property
    def token_count(self) -> int:
        return count_tokens(self.text)


class PromptBuilder:
    """Render prompts in the paper's Figure 5 format."""

    def __init__(self, task_description: str = TASK_DESCRIPTION):
        self._task_description = task_description

    def build(
        self, examples: Sequence[InContextExample], test_design: Design
    ) -> Prompt:
        """Build a k-shot prompt from ``examples`` and the test design."""
        sections: List[str] = [self._task_description]
        for index, example in enumerate(examples, start=1):
            sections.append(
                f"Program {index}: {flatten_verilog(example.design.source)}"
            )
            assertions = " ".join(example.assertion_texts)
            sections.append(f"Assertions {index}: {assertions}")
        sections.append("Test Program:")
        sections.append(flatten_verilog(test_design.source))
        sections.append("Test Assertions:")
        text = "\n".join(sections)
        return Prompt(
            task_description=self._task_description,
            examples=list(examples),
            test_design=test_design,
            text=text,
        )
