"""Lightweight tokenizer for Verilog/SVA text.

Used for prompt-length accounting (the paper caps generation at 1024 output
tokens), for the n-gram statistics of the trainable AssertionLLM, and by the
tests that validate prompt construction.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, Iterable, List

_TOKEN_PATTERN = re.compile(
    r"[A-Za-z_$][A-Za-z0-9_$]*"      # identifiers / keywords
    r"|\d+'[bodhBODH][0-9a-fA-FxzXZ_]+"  # based literals
    r"|\d+"                            # decimal numbers
    r"|\|->|\|=>|##|<=|>=|==|!=|&&|\|\||<<|>>"  # multi-char operators
    r"|[()\[\]{};:,.@#=+\-*/%&|^~!<>?]"  # single-char punctuation
)


def tokenize_text(text: str) -> List[str]:
    """Split arbitrary Verilog/SVA text into tokens."""
    return _TOKEN_PATTERN.findall(text)


def count_tokens(text: str) -> int:
    """Number of tokens in ``text`` (the unit of the max-output-token cap)."""
    return len(tokenize_text(text))


def token_histogram(texts: Iterable[str]) -> Dict[str, int]:
    """Aggregate token frequencies over a collection of texts."""
    counter: Counter = Counter()
    for text in texts:
        counter.update(tokenize_text(text))
    return dict(counter)


def ngrams(tokens: List[str], order: int) -> List[tuple]:
    """Return the list of n-grams of the given order."""
    if order <= 0:
        raise ValueError("ngram order must be positive")
    return [tuple(tokens[i:i + order]) for i in range(len(tokens) - order + 1)]


class NgramModel:
    """A tiny back-off n-gram model over assertion token streams.

    The trainable AssertionLLM uses this to score candidate assertions for
    fluency: assertions whose token sequences resemble the training assertions
    score higher and are preferred during decoding.
    """

    def __init__(self, order: int = 3):
        if order < 2:
            raise ValueError("order must be at least 2")
        self.order = order
        self._counts: List[Counter] = [Counter() for _ in range(order)]
        self._trained_tokens = 0

    def fit(self, texts: Iterable[str]) -> "NgramModel":
        """Accumulate n-gram counts from assertion texts."""
        for text in texts:
            tokens = ["<s>"] * (self.order - 1) + tokenize_text(text) + ["</s>"]
            self._trained_tokens += len(tokens)
            for n in range(1, self.order + 1):
                self._counts[n - 1].update(ngrams(tokens, n))
        return self

    @property
    def vocabulary_size(self) -> int:
        return len(self._counts[0])

    @property
    def trained_tokens(self) -> int:
        return self._trained_tokens

    def sequence_logprob(self, text: str) -> float:
        """Average per-token log probability (back-off with add-one smoothing)."""
        import math

        tokens = ["<s>"] * (self.order - 1) + tokenize_text(text) + ["</s>"]
        if len(tokens) <= self.order - 1:
            return float("-inf")
        total = 0.0
        steps = 0
        vocab = max(self.vocabulary_size, 1)
        for index in range(self.order - 1, len(tokens)):
            history = tuple(tokens[index - self.order + 1:index])
            token = tokens[index]
            probability = None
            for n in range(self.order, 0, -1):
                context = history[-(n - 1):] if n > 1 else ()
                gram = context + (token,)
                gram_count = self._counts[n - 1].get(gram, 0)
                if n > 1:
                    context_count = sum(
                        count for key, count in self._counts[n - 1].items() if key[:-1] == context
                    )
                else:
                    context_count = sum(self._counts[0].values())
                if gram_count:
                    probability = (gram_count + 1) / (context_count + vocab)
                    break
            if probability is None:
                probability = 1.0 / (sum(self._counts[0].values()) + vocab)
            total += math.log(probability)
            steps += 1
        return total / steps
