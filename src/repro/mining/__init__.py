"""Assertion mining: GoldMine-style trees, HARM-style templates, ranking."""

from .dataset import Atom, MiningDataset, build_dataset, candidate_atoms, mining_targets, trace_atoms
from .goldmine import GoldMineConfig, GoldMineMiner
from .harm import HarmConfig, HarmMiner
from .miner import AssertionMiner, MinerConfig, MiningReport, mine_verified_assertions
from .ranking import AssertionRanker, RankedAssertion, RankingWeights

__all__ = [
    "AssertionMiner",
    "AssertionRanker",
    "Atom",
    "GoldMineConfig",
    "GoldMineMiner",
    "HarmConfig",
    "HarmMiner",
    "MinerConfig",
    "MiningDataset",
    "MiningReport",
    "RankedAssertion",
    "RankingWeights",
    "build_dataset",
    "candidate_atoms",
    "mine_verified_assertions",
    "mining_targets",
    "trace_atoms",
]
