"""Trace-derived datasets for assertion mining.

Both miners (GoldMine-style and HARM-style) operate on tabular data extracted
from simulation traces: rows are clock cycles, columns are *atomic
propositions* over candidate signals (``sig == value`` for small-domain
signals, ``sig[bit] == value`` for wide ones), and the label column is the
proposition being explained (e.g. ``gnt1 == 1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis import coi_features
from ..hdl import ast
from ..hdl.design import Design
from ..sim.trace import Trace

#: Signals with at most this many distinct values get equality atoms per value.
_MAX_ENUM_VALUES = 8
#: Wide signals contribute at most this many per-bit atoms.
_MAX_BIT_ATOMS = 4


@dataclass(frozen=True)
class Atom:
    """An atomic proposition over one design signal."""

    signal: str
    value: int
    bit: Optional[int] = None

    def expr(self) -> ast.Expr:
        """Render the atom as a Verilog boolean expression."""
        if self.bit is None:
            return ast.Binary("==", ast.Identifier(self.signal), ast.Number(self.value))
        return ast.Binary(
            "==",
            ast.BitSelect(ast.Identifier(self.signal), ast.Number(self.bit)),
            ast.Number(self.value),
        )

    def evaluate(self, row: Dict[str, int]) -> bool:
        raw = row.get(self.signal, 0)
        if self.bit is not None:
            raw = (raw >> self.bit) & 1
        return raw == self.value

    def __str__(self) -> str:
        return str(self.expr())


@dataclass
class MiningDataset:
    """Feature matrix for one target proposition."""

    design_name: str
    target: Atom
    features: List[Atom]
    rows: List[Tuple[Tuple[bool, ...], bool]] = field(default_factory=list)
    delay: int = 0

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def positives(self) -> int:
        return sum(1 for _, label in self.rows if label)

    def feature_column(self, index: int) -> List[bool]:
        return [row[index] for row, _ in self.rows]

    def labels(self) -> List[bool]:
        return [label for _, label in self.rows]


def candidate_atoms(design: Design, signal: str) -> List[Atom]:
    """Enumerate the equality atoms used as features/targets for one signal."""
    model = design.model
    width = model.signals[signal].width
    if width == 1:
        return [Atom(signal, 0), Atom(signal, 1)]
    domain = min(1 << width, _MAX_ENUM_VALUES)
    if (1 << width) <= _MAX_ENUM_VALUES:
        return [Atom(signal, value) for value in range(domain)]
    atoms = []
    for bit in range(min(width, _MAX_BIT_ATOMS)):
        atoms.append(Atom(signal, 0, bit=bit))
        atoms.append(Atom(signal, 1, bit=bit))
    return atoms


def trace_atoms(design: Design, signal: str, trace: Trace) -> List[Atom]:
    """Like :func:`candidate_atoms` but restricted to values seen in the trace."""
    model = design.model
    width = model.signals[signal].width
    observed = trace.distinct_values(signal)
    if width == 1 or len(observed) <= _MAX_ENUM_VALUES:
        return [Atom(signal, value) for value in observed]
    atoms = []
    for bit in range(min(width, _MAX_BIT_ATOMS)):
        atoms.append(Atom(signal, 0, bit=bit))
        atoms.append(Atom(signal, 1, bit=bit))
    return atoms


def build_dataset(
    design: Design,
    trace: Trace,
    target: Atom,
    feature_signals: Optional[Sequence[str]] = None,
    delay: int = 0,
) -> MiningDataset:
    """Build the feature matrix explaining ``target`` from ``trace``.

    ``delay`` shifts the target ``delay`` cycles after the features, producing
    data for next-cycle (``|=>``-style) assertions on registered targets.
    """
    if feature_signals is None:
        feature_signals = coi_features(design, target.signal)
    features: List[Atom] = []
    for name in feature_signals:
        if name == target.signal:
            continue
        features.extend(trace_atoms(design, name, trace))

    dataset = MiningDataset(
        design_name=design.name, target=target, features=features, delay=delay
    )
    last_row = trace.num_cycles - delay
    for cycle in range(last_row):
        row = trace.row(cycle)
        label_row = trace.row(cycle + delay)
        values = tuple(atom.evaluate(row) for atom in features)
        dataset.rows.append((values, target.evaluate(label_row)))
    return dataset


def mining_targets(design: Design) -> List[str]:
    """Signals worth explaining: primary outputs first, then state registers."""
    model = design.model
    targets = [name for name in model.outputs if name not in model.clocks]
    for name in model.state_regs:
        if name not in targets:
            targets.append(name)
    return targets
