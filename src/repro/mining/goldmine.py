"""GoldMine-style assertion mining: decision-tree induction over traces.

GoldMine (Vasudevan et al.; reference [11] of the paper) mines candidate
assertions by learning a decision tree that predicts a target proposition
from other design signals observed in simulation, guided by lightweight
static analysis (the cone of influence restricts the feature set).  Every
root-to-leaf path ending in a pure leaf becomes a candidate assertion whose
antecedent is the conjunction of decisions along the path.  Candidates are
then discharged on the FPV engine; only proven ones survive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..hdl.design import Design
from ..sim.trace import Trace
from ..sva.model import NON_OVERLAPPED, OVERLAPPED, Assertion, SequenceTerm
from .dataset import Atom, MiningDataset, build_dataset, mining_targets, trace_atoms


@dataclass
class GoldMineConfig:
    """Hyper-parameters of the decision-tree miner."""

    max_depth: int = 3
    min_leaf_support: int = 4
    min_purity: float = 1.0
    max_assertions_per_target: int = 6
    mine_next_cycle: bool = True
    #: Explain at most this many target signals (outputs first).
    max_targets: int = 12


@dataclass
class _TreeNode:
    atom: Optional[Atom] = None
    true_branch: Optional["_TreeNode"] = None
    false_branch: Optional["_TreeNode"] = None
    label: Optional[bool] = None
    support: int = 0
    purity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.atom is None


class GoldMineMiner:
    """Mine candidate assertions for one design from a simulation trace."""

    def __init__(self, design: Design, config: Optional[GoldMineConfig] = None):
        self._design = design
        self._config = config or GoldMineConfig()

    def mine(self, trace: Trace) -> List[Assertion]:
        """Return candidate assertions mined from ``trace`` (unverified)."""
        assertions: List[Assertion] = []
        clock = self._design.model.clocks[0] if self._design.model.clocks else None
        for target_signal in mining_targets(self._design)[: self._config.max_targets]:
            for target_atom in trace_atoms(self._design, target_signal, trace):
                assertions.extend(self._mine_target(trace, target_atom, clock, delay=0))
                if (
                    self._config.mine_next_cycle
                    and self._design.model.signals[target_signal].is_state
                ):
                    assertions.extend(
                        self._mine_target(trace, target_atom, clock, delay=1)
                    )
        return assertions

    # -- per-target mining -------------------------------------------------------

    def _mine_target(
        self, trace: Trace, target: Atom, clock: Optional[str], delay: int
    ) -> List[Assertion]:
        dataset = build_dataset(self._design, trace, target, delay=delay)
        if not dataset.features or dataset.num_rows < self._config.min_leaf_support:
            return []
        if dataset.positives == 0 or dataset.positives == dataset.num_rows:
            # The target is constant in the trace; a decision tree would learn
            # nothing beyond the trivial invariant, which HARM-style templates
            # already cover.
            return []
        rows = list(range(dataset.num_rows))
        tree = self._grow(dataset, rows, depth=0, used=frozenset())
        paths = self._paths_to_true_leaves(tree, [])
        paths.sort(key=lambda item: (-item[1], len(item[0])))
        assertions = []
        for atoms, _support in paths[: self._config.max_assertions_per_target]:
            assertions.append(self._to_assertion(atoms, target, clock, delay))
        return assertions

    def _grow(
        self,
        dataset: MiningDataset,
        rows: Sequence[int],
        depth: int,
        used: frozenset,
    ) -> _TreeNode:
        labels = [dataset.rows[i][1] for i in rows]
        positives = sum(labels)
        support = len(rows)
        purity = max(positives, support - positives) / support if support else 0.0
        majority = positives * 2 >= support

        if (
            depth >= self._config.max_depth
            or support < self._config.min_leaf_support
            or purity >= self._config.min_purity
        ):
            return _TreeNode(label=majority, support=support, purity=purity)

        best_index = self._best_split(dataset, rows, used)
        if best_index is None:
            return _TreeNode(label=majority, support=support, purity=purity)

        atom = dataset.features[best_index]
        true_rows = [i for i in rows if dataset.rows[i][0][best_index]]
        false_rows = [i for i in rows if not dataset.rows[i][0][best_index]]
        if not true_rows or not false_rows:
            return _TreeNode(label=majority, support=support, purity=purity)
        node = _TreeNode(atom=atom, support=support, purity=purity)
        node.true_branch = self._grow(dataset, true_rows, depth + 1, used | {best_index})
        node.false_branch = self._grow(dataset, false_rows, depth + 1, used | {best_index})
        return node

    def _best_split(
        self, dataset: MiningDataset, rows: Sequence[int], used: frozenset
    ) -> Optional[int]:
        base_entropy = _entropy([dataset.rows[i][1] for i in rows])
        best_gain = 1e-9
        best_index: Optional[int] = None
        for index in range(len(dataset.features)):
            if index in used:
                continue
            true_labels = [dataset.rows[i][1] for i in rows if dataset.rows[i][0][index]]
            false_labels = [
                dataset.rows[i][1] for i in rows if not dataset.rows[i][0][index]
            ]
            if not true_labels or not false_labels:
                continue
            total = len(true_labels) + len(false_labels)
            gain = base_entropy - (
                len(true_labels) / total * _entropy(true_labels)
                + len(false_labels) / total * _entropy(false_labels)
            )
            if gain > best_gain:
                best_gain = gain
                best_index = index
        return best_index

    def _paths_to_true_leaves(
        self, node: _TreeNode, path: List[Atom]
    ) -> List[Tuple[List[Atom], int]]:
        if node.is_leaf:
            if (
                node.label
                and path
                and node.purity >= self._config.min_purity
                and node.support >= self._config.min_leaf_support
            ):
                return [(list(path), node.support)]
            return []
        results = []
        if node.true_branch is not None:
            results.extend(self._paths_to_true_leaves(node.true_branch, path + [node.atom]))
        if node.false_branch is not None:
            negated = _negate(node.atom)
            if negated is not None:
                results.extend(self._paths_to_true_leaves(node.false_branch, path + [negated]))
        return results

    def _to_assertion(
        self, atoms: Sequence[Atom], target: Atom, clock: Optional[str], delay: int
    ) -> Assertion:
        antecedent = [SequenceTerm(0, atom.expr()) for atom in atoms]
        consequent = [SequenceTerm(0, target.expr())]
        implication = NON_OVERLAPPED if delay else OVERLAPPED
        return Assertion(
            antecedent=antecedent,
            consequent=consequent,
            implication=implication,
            clock=clock,
            name="",
            source_text="goldmine",
        )


def _entropy(labels: Sequence[bool]) -> float:
    total = len(labels)
    if total == 0:
        return 0.0
    positives = sum(labels)
    entropy = 0.0
    for count in (positives, total - positives):
        if count == 0:
            continue
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def _negate(atom: Atom) -> Optional[Atom]:
    """Negate a boolean atom (only single-bit / binary-valued atoms)."""
    if atom.bit is not None or atom.value in (0, 1):
        return Atom(atom.signal, 1 - atom.value if atom.value in (0, 1) else 0, bit=atom.bit)
    return None
