"""HARM-style template (hint) based assertion mining.

HARM (Germiniani & Pravadelli, reference [13] of the paper) mines temporal
assertions by instantiating a library of assertion templates over the design
signals and keeping the instantiations that hold on simulation traces with
sufficient support.  We implement the template classes the paper's restricted
SVA subset can express:

* invariants              ``(1) |-> (t == v)``
* single-antecedent       ``(a == va) |-> (t == vt)``
* pair-antecedent         ``(a == va) && (b == vb) |-> (t == vt)``
* next-cycle (registered) ``(a == va) |=> (t == vt)``
* two-cycle sequences     ``(a == va) ##1 (b == vb) |-> (t == vt)``
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..analysis import coi_features
from ..hdl import ast
from ..hdl.design import Design
from ..fpv.trace_check import TraceChecker
from ..sim.trace import Trace
from ..sva.model import NON_OVERLAPPED, OVERLAPPED, Assertion, SequenceTerm
from .dataset import Atom, mining_targets, trace_atoms


@dataclass
class HarmConfig:
    """Hyper-parameters of the template miner."""

    min_support: int = 4
    max_antecedent_signals: int = 2
    max_feature_atoms: int = 24
    max_assertions_per_target: int = 8
    mine_invariants: bool = True
    mine_next_cycle: bool = True
    mine_sequences: bool = True
    #: Explain at most this many target signals (outputs first).
    max_targets: int = 12


class HarmMiner:
    """Instantiate assertion templates and filter them on a trace."""

    def __init__(self, design: Design, config: Optional[HarmConfig] = None):
        self._design = design
        self._config = config or HarmConfig()
        self._checker = TraceChecker(design.model)

    def mine(self, trace: Trace) -> List[Assertion]:
        """Return candidate assertions that hold on ``trace`` with support."""
        clock = self._design.model.clocks[0] if self._design.model.clocks else None
        assertions: List[Assertion] = []
        for target_signal in mining_targets(self._design)[: self._config.max_targets]:
            target_atoms = trace_atoms(self._design, target_signal, trace)
            features = self._feature_atoms(target_signal, trace)
            per_target: List[Assertion] = []
            for target in target_atoms:
                per_target.extend(
                    self._mine_for_target(target, features, trace, clock)
                )
                if len(per_target) >= self._config.max_assertions_per_target:
                    break
            assertions.extend(per_target[: self._config.max_assertions_per_target])
        return assertions

    # -- template instantiation ------------------------------------------------------

    def _feature_atoms(self, target_signal: str, trace: Trace) -> List[Atom]:
        features: List[Atom] = []
        for name in coi_features(self._design, target_signal):
            features.extend(trace_atoms(self._design, name, trace))
            if len(features) >= self._config.max_feature_atoms:
                break
        return features[: self._config.max_feature_atoms]

    def _mine_for_target(
        self,
        target: Atom,
        features: Sequence[Atom],
        trace: Trace,
        clock: Optional[str],
    ) -> List[Assertion]:
        found: List[Assertion] = []

        if self._config.mine_invariants:
            invariant = Assertion(
                antecedent=[SequenceTerm(0, ast.Number(1))],
                consequent=[SequenceTerm(0, target.expr())],
                implication=OVERLAPPED,
                clock=clock,
                source_text="harm:invariant",
            )
            if self._supported(invariant, trace):
                found.append(invariant)

        for atom in features:
            candidate = self._single(atom, target, clock, OVERLAPPED)
            if self._supported(candidate, trace):
                found.append(candidate)
            if self._config.mine_next_cycle:
                delayed = self._single(atom, target, clock, NON_OVERLAPPED)
                if self._supported(delayed, trace):
                    found.append(delayed)

        if self._config.max_antecedent_signals >= 2:
            for first, second in itertools.combinations(features, 2):
                if first.signal == second.signal:
                    continue
                candidate = Assertion(
                    antecedent=[
                        SequenceTerm(0, first.expr()),
                        SequenceTerm(0, second.expr()),
                    ],
                    consequent=[SequenceTerm(0, target.expr())],
                    implication=OVERLAPPED,
                    clock=clock,
                    source_text="harm:pair",
                )
                if self._supported(candidate, trace):
                    found.append(candidate)
                if self._config.mine_sequences:
                    sequence = Assertion(
                        antecedent=[
                            SequenceTerm(0, first.expr()),
                            SequenceTerm(1, second.expr()),
                        ],
                        consequent=[SequenceTerm(0, target.expr())],
                        implication=OVERLAPPED,
                        clock=clock,
                        source_text="harm:sequence",
                    )
                    if self._supported(sequence, trace):
                        found.append(sequence)
                if len(found) >= self._config.max_assertions_per_target * 2:
                    break
        return found

    def _single(
        self, atom: Atom, target: Atom, clock: Optional[str], implication: str
    ) -> Assertion:
        return Assertion(
            antecedent=[SequenceTerm(0, atom.expr())],
            consequent=[SequenceTerm(0, target.expr())],
            implication=implication,
            clock=clock,
            source_text="harm:single",
        )

    def _supported(self, assertion: Assertion, trace: Trace) -> bool:
        """A candidate survives if it holds on the trace with enough triggers."""
        result = self._checker.check(assertion, trace)
        return result.holds and result.triggers >= self._config.min_support
