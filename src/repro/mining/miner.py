"""End-to-end assertion mining: simulate, mine, deduplicate, verify, rank.

This is the flow the paper uses to produce the formally verified assertions
of its in-context examples (Section III: "generated from GoldMine and HARM,
and verified using Cadence JasperGold"), reproduced on our substrate:
simulate the design, run both miners on the trace, deduplicate, discharge the
candidates on the FPV engine, keep only proofs, and rank the survivors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..fpv.engine import EngineConfig, FormalEngine
from ..fpv.result import ProofResult, ProofStatus
from ..hdl.design import Design
from ..sim.simulator import Simulator
from ..sim.stimulus import default_stimulus
from ..sim.trace import Trace
from ..sva.model import Assertion, deduplicate
from .goldmine import GoldMineConfig, GoldMineMiner
from .harm import HarmConfig, HarmMiner
from .ranking import AssertionRanker


@dataclass
class MinerConfig:
    """Configuration of the end-to-end mining flow."""

    trace_cycles: int = 400
    seed: int = 7
    goldmine: GoldMineConfig = field(default_factory=GoldMineConfig)
    harm: HarmConfig = field(default_factory=HarmConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    verify: bool = True
    min_assertions: int = 2
    max_assertions: int = 10
    keep_vacuous: bool = False
    #: Verify at most this many candidates (the best-covered ones first); the
    #: cap keeps the flow tractable on thousand-line designs.
    max_verify_candidates: int = 40


@dataclass
class MiningReport:
    """Everything the mining flow produced for one design."""

    design_name: str
    trace_cycles: int
    candidates: List[Assertion] = field(default_factory=list)
    verified: List[Assertion] = field(default_factory=list)
    selected: List[Assertion] = field(default_factory=list)
    proof_results: List[ProofResult] = field(default_factory=list)

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)

    @property
    def num_verified(self) -> int:
        return len(self.verified)


class AssertionMiner:
    """Produce a small set of formally verified assertions for a design."""

    def __init__(self, design: Design, config: Optional[MinerConfig] = None):
        self._design = design
        self._config = config or MinerConfig()

    def mine(self, trace: Optional[Trace] = None) -> MiningReport:
        """Run the full mining flow and return a report."""
        config = self._config
        if trace is None:
            simulator = Simulator(self._design)
            stimulus = default_stimulus(self._design.model, seed=config.seed)
            trace = simulator.run(cycles=config.trace_cycles, stimulus=stimulus)

        goldmine = GoldMineMiner(self._design, config.goldmine).mine(trace)
        harm = HarmMiner(self._design, config.harm).mine(trace)
        candidates = deduplicate(goldmine + harm)

        report = MiningReport(
            design_name=self._design.name,
            trace_cycles=trace.num_cycles,
            candidates=candidates,
        )

        ranker = AssertionRanker(self._design)
        to_verify = candidates
        if config.verify and len(candidates) > config.max_verify_candidates:
            to_verify = ranker.top(candidates, trace, config.max_verify_candidates)

        if config.verify:
            engine = FormalEngine(self._design, config.engine)
            for assertion in to_verify:
                result = engine.check(assertion)
                report.proof_results.append(result)
                if result.status is ProofStatus.PROVEN:
                    report.verified.append(assertion)
                elif result.status is ProofStatus.VACUOUS and config.keep_vacuous:
                    report.verified.append(assertion)
        else:
            report.verified = list(candidates)

        limit = config.max_assertions
        report.selected = ranker.top(report.verified, trace, limit)
        return report


def mine_verified_assertions(
    design: Design, config: Optional[MinerConfig] = None
) -> List[Assertion]:
    """Convenience wrapper returning only the selected, verified assertions."""
    return AssertionMiner(design, config).mine().selected
