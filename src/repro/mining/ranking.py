"""Assertion ranking (figure-of-merit), after Pal et al. (reference [14]).

Automatically mined assertion sets are large and redundant; ranking orders
them by how much subtle design behaviour they capture so that downstream
consumers (the ICE construction in :mod:`repro.bench.icl`, and the paper's
"2 to 10 assertions per design, average 4.8") can keep a small, high-value
subset.

The figure of merit combines:

* **trigger coverage** — fraction of trace cycles on which the antecedent
  matches (assertions that almost never trigger explain little),
* **state involvement** — how many state registers the assertion mentions
  (model-level behaviour rather than pure input/output relations),
* **temporal depth** — sequential assertions rank above purely combinational
  ones of equal coverage,
* **antecedent complexity penalty** — shorter antecedents generalise better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..fpv.trace_check import TraceChecker
from ..hdl.design import Design
from ..sim.trace import Trace
from ..sva.checker import referenced_state_signals
from ..sva.model import Assertion


@dataclass
class RankedAssertion:
    """An assertion together with its figure-of-merit breakdown."""

    assertion: Assertion
    score: float
    coverage: float
    state_involvement: int
    temporal_depth: int
    antecedent_size: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankedAssertion(score={self.score:.3f}, {self.assertion.body_text()})"


@dataclass
class RankingWeights:
    """Relative weights of the figure-of-merit components."""

    coverage: float = 0.45
    state_involvement: float = 0.30
    temporal_depth: float = 0.15
    simplicity: float = 0.10


class AssertionRanker:
    """Rank assertions for one design using a simulation trace."""

    def __init__(self, design: Design, weights: Optional[RankingWeights] = None):
        self._design = design
        self._weights = weights or RankingWeights()
        self._checker = TraceChecker(design.model)

    def rank(self, assertions: Sequence[Assertion], trace: Trace) -> List[RankedAssertion]:
        """Return assertions sorted by descending figure of merit."""
        ranked = [self._score(assertion, trace) for assertion in assertions]
        ranked.sort(key=lambda item: -item.score)
        return ranked

    def top(
        self, assertions: Sequence[Assertion], trace: Trace, count: int
    ) -> List[Assertion]:
        """Return the ``count`` best assertions."""
        return [item.assertion for item in self.rank(assertions, trace)[:count]]

    # -- scoring -------------------------------------------------------------------

    def _score(self, assertion: Assertion, trace: Trace) -> RankedAssertion:
        result = self._checker.check(assertion, trace)
        coverage = result.triggers / result.attempts if result.attempts else 0.0
        state_involvement = len(referenced_state_signals(assertion, self._design))
        depth = assertion.temporal_depth
        antecedent_size = len(assertion.antecedent)

        max_state = max(len(self._design.model.state_regs), 1)
        weights = self._weights
        score = (
            weights.coverage * _coverage_utility(coverage)
            + weights.state_involvement * min(state_involvement / max_state, 1.0)
            + weights.temporal_depth * min(depth / 2.0, 1.0)
            + weights.simplicity * (1.0 / antecedent_size if antecedent_size else 0.0)
        )
        return RankedAssertion(
            assertion=assertion,
            score=score,
            coverage=coverage,
            state_involvement=state_involvement,
            temporal_depth=depth,
            antecedent_size=antecedent_size,
        )


def _coverage_utility(coverage: float) -> float:
    """Diminishing-returns utility: trivially-always-triggering assertions
    (coverage 1.0, e.g. tautological antecedents) are worth less than ones
    that trigger on a meaningful but selective fraction of cycles."""
    if coverage <= 0.0:
        return 0.0
    if coverage >= 0.98:
        return 0.55
    if coverage >= 0.5:
        return 0.85
    return min(1.0, coverage * 2.0)
