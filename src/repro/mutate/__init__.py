"""Mutation-based assertion quality scoring.

This package measures how good generated SVA assertions actually are at
*catching bugs* — not merely at passing FPV on the golden design.  It
systematically corrupts each design with a library of RTL mutation operators
(:mod:`repro.mutate.operators`), drops stillborn and provably-equivalent
mutants (:mod:`repro.mutate.semantic`), re-verifies every FPV-passing
assertion against every viable mutant through the existing verification
scheduler, and scores each assertion by its *kill rate* — the fraction of
mutants on which the assertion produces a counterexample
(:mod:`repro.mutate.campaign`).
"""

from .campaign import (
    MutationCampaign,
    MutationConfig,
    MutationRecord,
    MutationSummary,
    classify_outcome,
)
from .operators import (
    DEFAULT_OPERATORS,
    Mutant,
    MutantStats,
    MutationOperator,
    apply_mutation,
    enumerate_mutants,
    mutation_sites,
    operator_names,
)
from .semantic import DifferenceWitness, semantic_difference

__all__ = [
    "DEFAULT_OPERATORS",
    "DifferenceWitness",
    "Mutant",
    "MutantStats",
    "MutationCampaign",
    "MutationConfig",
    "MutationOperator",
    "MutationRecord",
    "MutationSummary",
    "apply_mutation",
    "classify_outcome",
    "enumerate_mutants",
    "mutation_sites",
    "operator_names",
    "semantic_difference",
]
