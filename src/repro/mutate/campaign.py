"""The mutation campaign stage: score assertion quality by kill rate.

A :class:`MutationCampaign` rides the same infrastructure as the evaluation
campaigns: mutant batches fan out across the
:class:`~repro.core.scheduler.VerificationService` (vectorized kernel first,
compiled/scalar fallback, per-design worker dispatch), reachability is
cached per *mutant* fingerprint exactly like any other design, and verdicts
stream durably into the run store's ``mutations.jsonl`` as they land.

Per (golden design, FPV-passing assertion, viable mutant) the campaign
records one of four outcomes:

* ``killed``    — the assertion produces a counterexample on the mutant: it
  caught the injected bug,
* ``survived``  — the assertion still passes (proven or vacuous) with a
  *complete* proof: the injected bug escapes this assertion,
* ``timeout``   — only a bounded (incomplete) pass was possible within the
  engine budgets: inconclusive,
* ``error``     — the assertion no longer elaborates on the mutant.

The *kill rate* of an assertion is ``killed / (killed + survived)`` —
inconclusive and error outcomes are excluded from the denominator.  Records
are keyed by (golden fingerprint, operator, site, normalised assertion
text), so reruns resume: already-recorded cells are skipped, and a per-design
completion marker lets a warm rerun skip mutant generation entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.scheduler import VerificationService
from ..fpv.engine import design_fingerprint
from ..fpv.result import ProofResult
from ..hdl.design import Design
from .operators import Mutant, enumerate_mutants, resolve_operators

__all__ = [
    "KILLED",
    "SURVIVED",
    "TIMEOUT",
    "ERROR",
    "MutationCampaign",
    "MutationConfig",
    "MutationRecord",
    "MutationSummary",
    "classify_outcome",
]

KILLED = "killed"
SURVIVED = "survived"
TIMEOUT = "timeout"
ERROR = "error"

OUTCOMES = (KILLED, SURVIVED, TIMEOUT, ERROR)


def classify_outcome(proof: ProofResult) -> str:
    """Map one FPV verdict on a mutant onto the four mutation outcomes."""
    if proof.is_error:
        return ERROR
    if proof.is_fail:
        return KILLED
    return SURVIVED if proof.complete else TIMEOUT


def normalize_assertion(text: str) -> str:
    """Whitespace-normalised assertion text (the cache/record key form)."""
    return " ".join(text.split())


@dataclass
class MutationConfig:
    """Knobs of the mutation stage."""

    #: Operator names to apply (None = the full default battery).
    operators: Optional[List[str]] = None
    #: Cap on viable mutants per design, taken round-robin across operators.
    limit_per_design: Optional[int] = 64
    #: Drop mutants with no detectable semantic difference from the golden
    #: design (stillborn mutants are always dropped).
    semantic_filter: bool = True
    #: Schedule whole families (golden + mutants) as one vectorized unit;
    #: off = the reference per-mutant design batches.  Verdict outcomes are
    #: identical either way, so this is excluded from :meth:`identity`.
    family_batching: bool = True
    #: Harvest cheap kills by checking assertions against each mutant's
    #: difference-witness trace before the full table search (family path
    #: only; outcome-identical, so also excluded from :meth:`identity`).
    witness_screen: bool = True

    def identity(self) -> Dict:
        """Normalised form stored in completion markers.

        A design only counts as fully scored for a rerun whose mutation
        config matches the marker's — a rerun with more operators or a
        higher mutant cap must re-enumerate instead of silently returning
        the smaller earlier sweep.  Resolving through the operator library
        also validates the names (``KeyError`` on unknown operators).
        Throughput-only knobs (family batching, the witness pre-screen) are
        left out: they never change an outcome, so a rerun may flip them and
        still resume.
        """
        return {
            "operators": sorted(op.name for op in resolve_operators(self.operators)),
            "limit_per_design": self.limit_per_design,
            "semantic_filter": self.semantic_filter,
        }


@dataclass(frozen=True)
class MutationRecord:
    """One streamed verdict: (design, mutant, assertion) -> outcome."""

    design_name: str
    design_fingerprint: str
    category: str
    operator: str
    site: int
    description: str
    mutant_fingerprint: str
    assertion: str
    outcome: str
    status: str
    engine: str
    complete: bool

    @property
    def key(self) -> Tuple[str, str, int, str]:
        return (self.design_fingerprint, self.operator, self.site, self.assertion)

    @property
    def mutant_id(self) -> str:
        return f"{self.operator}@{self.site}"

    def to_json(self) -> Dict:
        return {
            "kind": "verdict",
            "design": self.design_name,
            "fingerprint": self.design_fingerprint,
            "category": self.category,
            "operator": self.operator,
            "site": self.site,
            "description": self.description,
            "mutant_fingerprint": self.mutant_fingerprint,
            "assertion": self.assertion,
            "outcome": self.outcome,
            "status": self.status,
            "engine": self.engine,
            "complete": self.complete,
        }

    @classmethod
    def from_json(cls, data: Dict) -> "MutationRecord":
        return cls(
            design_name=data["design"],
            design_fingerprint=data["fingerprint"],
            category=data.get("category", ""),
            operator=data["operator"],
            site=int(data["site"]),
            description=data.get("description", ""),
            mutant_fingerprint=data.get("mutant_fingerprint", ""),
            assertion=data["assertion"],
            outcome=data["outcome"],
            status=data.get("status", ""),
            engine=data.get("engine", ""),
            complete=bool(data.get("complete", True)),
        )


@dataclass
class AssertionScore:
    """Aggregated outcomes of one assertion over one design's mutants."""

    design_name: str
    category: str
    assertion: str
    killed: int = 0
    survived: int = 0
    timeout: int = 0
    error: int = 0

    def add(self, outcome: str) -> None:
        if outcome == KILLED:
            self.killed += 1
        elif outcome == SURVIVED:
            self.survived += 1
        elif outcome == TIMEOUT:
            self.timeout += 1
        elif outcome == ERROR:
            self.error += 1
        else:
            raise ValueError(f"unknown mutation outcome {outcome!r}")

    @property
    def decided(self) -> int:
        return self.killed + self.survived

    @property
    def total(self) -> int:
        return self.decided + self.timeout + self.error

    @property
    def kill_rate(self) -> Optional[float]:
        """Killed fraction of decided mutants; None when nothing was decided."""
        if not self.decided:
            return None
        return self.killed / self.decided


@dataclass
class MutationSummary:
    """Everything the mutation reports are rendered from."""

    records: List[MutationRecord] = field(default_factory=list)
    #: Per-design mutant generation stats (from the completion markers).
    design_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @classmethod
    def from_records(
        cls,
        records: Iterable[MutationRecord],
        design_stats: Optional[Dict[str, Dict[str, int]]] = None,
    ) -> "MutationSummary":
        return cls(records=list(records), design_stats=dict(design_stats or {}))

    def scores(self) -> List[AssertionScore]:
        """Per (design, assertion) aggregation, in first-seen order."""
        table: Dict[Tuple[str, str], AssertionScore] = {}
        for record in self.records:
            key = (record.design_name, record.assertion)
            score = table.get(key)
            if score is None:
                score = AssertionScore(
                    design_name=record.design_name,
                    category=record.category,
                    assertion=record.assertion,
                )
                table[key] = score
            score.add(record.outcome)
        return list(table.values())

    def category_distribution(self) -> Dict[str, Dict[str, float]]:
        """Per corpus category: assertion count and kill-rate distribution."""
        buckets: Dict[str, List[float]] = {}
        undecided: Dict[str, int] = {}
        for score in self.scores():
            category = score.category or "uncategorised"
            rate = score.kill_rate
            if rate is None:
                undecided[category] = undecided.get(category, 0) + 1
                buckets.setdefault(category, [])
            else:
                buckets.setdefault(category, []).append(rate)
        distribution: Dict[str, Dict[str, float]] = {}
        for category, rates in sorted(buckets.items()):
            entry: Dict[str, float] = {
                "assertions": len(rates) + undecided.get(category, 0),
                "undecided": undecided.get(category, 0),
            }
            if rates:
                ordered = sorted(rates)
                entry["mean"] = sum(rates) / len(rates)
                entry["min"] = ordered[0]
                entry["median"] = ordered[len(ordered) // 2]
                entry["max"] = ordered[-1]
            distribution[category] = entry
        return distribution

    def weak_assertions(self, limit: int = 10, min_mutants: int = 3) -> List[AssertionScore]:
        """Lowest-kill-rate assertions (at least ``min_mutants`` decided).

        Assertions with no decided mutants at all (every outcome a timeout
        or error) have no kill rate and are never ranked.
        """
        eligible = [
            score
            for score in self.scores()
            if score.decided and score.decided >= min_mutants
        ]
        eligible.sort(key=lambda score: (score.kill_rate, -score.decided))
        return eligible[:limit]

    def outcome_counts(self) -> Dict[str, int]:
        counts = {outcome: 0 for outcome in OUTCOMES}
        for record in self.records:
            counts[record.outcome] += 1
        return counts

    def __len__(self) -> int:
        return len(self.records)


class MutationCampaign:
    """Fan every viable mutant across the verification scheduler."""

    def __init__(
        self,
        service: VerificationService,
        store=None,
        config: Optional[MutationConfig] = None,
    ):
        self._service = service
        self._store = store
        self._config = config or MutationConfig()

    @property
    def config(self) -> MutationConfig:
        return self._config

    # -- assertion selection -----------------------------------------------------

    @staticmethod
    def passed_assertions(store) -> Dict[str, List[str]]:
        """Unique FPV-passing assertion texts per design, from committed cells."""
        texts: Dict[str, List[str]] = {}
        seen: Dict[str, set] = {}
        for sweep_by_k in store.load_matrix().results.values():
            for sweep in sweep_by_k.values():
                for evaluation in sweep.designs:
                    for outcome in evaluation.outcomes:
                        if not outcome.passed:
                            continue
                        normalised = normalize_assertion(outcome.corrected_text)
                        per_design = seen.setdefault(evaluation.design_name, set())
                        if normalised in per_design:
                            continue
                        per_design.add(normalised)
                        texts.setdefault(evaluation.design_name, []).append(
                            outcome.corrected_text
                        )
        return texts

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        designs: Sequence[Design],
        assertions_by_design: Dict[str, Sequence[str]],
        progress=None,
    ) -> MutationSummary:
        """Score every (design, passing assertion) pair over its mutants.

        Designs without passing assertions are skipped.  With a run store,
        verdicts stream into ``mutations.jsonl`` per design and reruns
        resume.  The returned summary covers exactly the *current* sweep —
        (current mutants × requested assertions) per design — so records
        written by an earlier run under a different mutation config never
        leak into the reported kill rates (they stay in the log, where
        ``report --mutation`` shows everything).
        """
        existing: Dict[Tuple[str, str, int, str], MutationRecord] = {}
        completed_designs: Dict[str, Dict] = {}
        if self._store is not None:
            loaded, markers = self._store.load_mutation_log()
            existing = {record.key: record for record in loaded}
            completed_designs = markers

        records: List[MutationRecord] = []
        design_stats: Dict[str, Dict[str, int]] = {}

        for design in designs:
            texts = [
                text
                for text in assertions_by_design.get(design.name, [])
                if text.strip()
            ]
            if not texts:
                continue
            fingerprint = design_fingerprint(design.source)
            normalised = [normalize_assertion(text) for text in texts]
            marker = completed_designs.get(design.name)
            if (
                marker is not None
                and marker.get("fingerprint") == fingerprint
                and marker.get("config") == self._config.identity()
                and set(normalised) <= set(marker.get("assertions", []))
                and marker.get("mutants") is not None
            ):
                # Fully scored with this config in a previous run: replay the
                # marker's sweep (its mutant addresses × the requested texts)
                # from the log without regenerating any mutants.
                requested = set(normalised)
                marker_mutants = set(marker["mutants"])
                records.extend(
                    record
                    for record in existing.values()
                    if record.design_fingerprint == fingerprint
                    and record.mutant_id in marker_mutants
                    and record.assertion in requested
                )
                design_stats[design.name] = marker.get("stats", {})
                continue

            if progress is not None:
                progress(f"mutating {design.name} ({len(texts)} assertions)")
            mutants, stats = enumerate_mutants(
                design,
                self._config.operators,
                semantic_filter=self._config.semantic_filter,
                limit=self._config.limit_per_design,
            )
            records.extend(
                self._score_design(design, fingerprint, mutants, texts, normalised, existing)
            )
            design_stats[design.name] = stats.as_dict()
            if self._store is not None:
                self._store.append_mutation_marker(
                    design.name,
                    fingerprint,
                    normalised,
                    stats.as_dict(),
                    config=self._config.identity(),
                    mutants=[mutant.mutant_id for mutant in mutants],
                )

        return MutationSummary.from_records(records, design_stats)

    def _score_design(
        self,
        design: Design,
        fingerprint: str,
        mutants: List[Mutant],
        texts: List[str],
        normalised: List[str],
        existing: Dict[Tuple[str, str, int, str], MutationRecord],
    ) -> List[MutationRecord]:
        """All records of this design's sweep: cached where possible, else proved.

        Returns one record per (mutant, assertion) cell — reruns replay
        already-recorded cells from the log and only the missing cells reach
        the verification service.
        """
        #: (mutant, positions of the texts still missing a record)
        work: List[Tuple[Mutant, List[int]]] = []
        cached: List[MutationRecord] = []
        for mutant in mutants:
            missing = []
            for position, text in enumerate(normalised):
                record = existing.get((fingerprint, mutant.operator, mutant.site, text))
                if record is None:
                    missing.append(position)
                else:
                    cached.append(record)
            if missing:
                work.append((mutant, missing))
        if not work:
            return cached

        if self._config.family_batching:
            # One family job: the golden design and every mutant still owing
            # records sweep the union of their missing assertions together.
            union = sorted({position for _, missing in work for position in missing})
            union_texts = [texts[position] for position in union]
            slot_of = {position: slot for slot, position in enumerate(union)}
            family_verdicts = self._service.check_families(
                [(design, [mutant for mutant, _ in work], union_texts)],
                witness_screen=self._config.witness_screen,
            )[0]
            verdict_lists = [
                [verdicts[slot_of[position]] for position in missing]
                for (_, missing), verdicts in zip(work, family_verdicts)
            ]
        else:
            jobs = [
                (mutant.design, [texts[position] for position in missing])
                for mutant, missing in work
            ]
            verdict_lists = self._service.check_many(jobs)

        fresh: List[MutationRecord] = []
        for (mutant, missing), verdicts in zip(work, verdict_lists):
            for position, proof in zip(missing, verdicts):
                fresh.append(
                    MutationRecord(
                        design_name=design.name,
                        design_fingerprint=fingerprint,
                        category=design.category,
                        operator=mutant.operator,
                        site=mutant.site,
                        description=mutant.description,
                        mutant_fingerprint=design_fingerprint(mutant.design.source),
                        assertion=normalised[position],
                        outcome=classify_outcome(proof),
                        status=proof.status.value,
                        engine=proof.engine,
                        complete=proof.complete,
                    )
                )
        if self._store is not None and fresh:
            self._store.append_mutation_records(fresh)
        return cached + fresh
