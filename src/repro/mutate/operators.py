"""Mutation operator library over the elaborated design AST.

Each operator systematically corrupts one *site* of a design — one binary
operator occurrence, one constant, one branch condition, one signal driver,
one reset guard — producing a mutant that still parses and elaborates.  A
mutant is rendered back to Verilog source (:mod:`repro.hdl.render`) and
rebuilt as a first-class :class:`~repro.hdl.design.Design`, so it is
content-addressed by its source fingerprint exactly like a golden design:
FPV verdict caches, per-design reachability caches, and worker dispatch all
apply unchanged.

The default operator set is the classic RTL mutation battery:

* ``bin-swap``      — operator swap (``&`` ↔ ``|``, ``==`` ↔ ``!=``,
  ``&&`` ↔ ``||``, ``+`` ↔ ``-``, ``<`` ↔ ``<=``, ``>`` ↔ ``>=``),
* ``const-offset``  — off-by-one on constants (wrapped to the literal width),
* ``negate-cond``   — negated branch conditions,
* ``stuck-driver``  — stuck-at-0 / stuck-at-1 signal drivers,
* ``reset-flip``    — reset-polarity flip on the asynchronous reset guard.

Site enumeration is deterministic (module item order, then statement order,
then a pre-order walk of each expression), so ``(operator, site)`` is a
stable address for one mutation of one design and results keyed by
``(design fingerprint, operator, site)`` are cacheable across runs.

:func:`enumerate_mutants` applies every operator at every site and filters
out *stillborn* mutants (the mutated source no longer elaborates or cannot
be stepped) and *equivalent* mutants (no semantic difference from the golden
design is detectable on any reachable state — see
:func:`repro.mutate.semantic.semantic_difference`), so every mutant it
returns is killable in principle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..hdl import ast
from ..hdl.design import Design
from ..hdl.elaborate import RtlModel, elaborate
from ..hdl.errors import HdlError
from ..hdl.render import render_module
from ..sim.eval import EvalError
from .semantic import DifferenceWitness, SemanticContext

__all__ = [
    "DEFAULT_OPERATORS",
    "Mutant",
    "MutantStats",
    "MutationOperator",
    "enumerate_mutants",
    "resolve_operators",
    "mutation_sites",
    "operator_names",
]


#: Binary operator swap table (each entry is its own operator *direction*,
#: so a ``&`` site and a ``|`` site never collide in the site numbering).
_BINARY_SWAPS: Dict[str, str] = {
    "&": "|",
    "|": "&",
    "&&": "||",
    "||": "&&",
    "==": "!=",
    "!=": "==",
    "+": "-",
    "-": "+",
    "<": "<=",
    "<=": "<",
    ">": ">=",
    ">=": ">",
}


@dataclass(frozen=True)
class MutationSite:
    """A stable address for one possible mutation of one design."""

    operator: str
    index: int
    description: str


@dataclass
class Mutant:
    """One viable mutant: a corrupted but elaborating variant of a design."""

    golden_name: str
    operator: str
    site: int
    description: str
    design: Design
    #: Proof that the mutant differs from the golden design (present whenever
    #: the semantic filter ran; ``None`` only when filtering was disabled).
    witness: Optional[DifferenceWitness] = None

    @property
    def mutant_id(self) -> str:
        """Content-addressable id component: operator plus site index."""
        return f"{self.operator}@{self.site}"


@dataclass
class MutantStats:
    """Accounting of one :func:`enumerate_mutants` pass over a design."""

    sites: int = 0
    stillborn: int = 0
    equivalent: int = 0
    viable: int = 0
    truncated: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "sites": self.sites,
            "stillborn": self.stillborn,
            "equivalent": self.equivalent,
            "viable": self.viable,
            "truncated": self.truncated,
        }


# ---------------------------------------------------------------------------
# The traversal session
# ---------------------------------------------------------------------------


class _Session:
    """One deterministic walk of a module for one operator.

    With ``target=None`` the walk only enumerates candidate sites; with a
    target index it additionally applies that candidate (the walk runs over a
    deep copy owned by the caller, statements are edited in place and
    expressions rebuilt functionally).
    """

    def __init__(self, model: RtlModel, target: Optional[int]):
        self.model = model
        self.target = target
        self.descriptions: List[str] = []
        self.applied = False

    def offer(self, description: str) -> bool:
        index = len(self.descriptions)
        self.descriptions.append(description)
        if self.target is not None and index == self.target and not self.applied:
            self.applied = True
            return True
        return False


class MutationOperator:
    """Base class: one way of corrupting a design, site by site.

    Subclasses override :meth:`expr_candidates` (called at every mutable
    expression node, returning ``(description, replacement)`` pairs) and/or
    :meth:`stmt_candidates` (called at every statement, returning
    ``(description, apply-thunk)`` pairs for in-place edits).
    """

    name: str = ""

    def expr_candidates(self, expr: ast.Expr, session: _Session) -> List[Tuple[str, ast.Expr]]:
        return []

    def stmt_candidates(
        self, stmt: ast.Stmt, session: _Session, is_reset_guard: bool
    ) -> List[Tuple[str, Callable[[], None]]]:
        return []


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


class BinarySwap(MutationOperator):
    """Swap one binary operator occurrence for its classic counterpart."""

    name = "bin-swap"

    def expr_candidates(self, expr, session):
        if isinstance(expr, ast.Binary) and expr.op in _BINARY_SWAPS:
            swapped = _BINARY_SWAPS[expr.op]
            return [
                (
                    f"swap {expr.op!r} -> {swapped!r} in {expr}",
                    ast.Binary(op=swapped, left=expr.left, right=expr.right),
                )
            ]
        return []


class ConstantOffByOne(MutationOperator):
    """Perturb one integer literal by +/-1 (wrapped to its declared width)."""

    name = "const-offset"

    def expr_candidates(self, expr, session):
        if not isinstance(expr, ast.Number):
            return []
        candidates = []
        emitted = set()
        for delta in (1, -1):
            value = expr.value + delta
            if expr.width is not None:
                value &= (1 << expr.width) - 1
            elif value < 0:
                continue
            if value == expr.value or value in emitted:
                # Width-1 literals wrap +1 and -1 to the same value; one
                # mutant per distinct resulting constant.
                continue
            emitted.add(value)
            candidates.append(
                (
                    f"constant {expr} -> {value}",
                    ast.Number(value=value, width=expr.width),
                )
            )
        return candidates


class NegateCondition(MutationOperator):
    """Negate one branch condition (reset guards belong to ``reset-flip``)."""

    name = "negate-cond"

    def stmt_candidates(self, stmt, session, is_reset_guard):
        if not isinstance(stmt, ast.If) or is_reset_guard:
            return []

        def apply(target: ast.If = stmt) -> None:
            target.condition = ast.Unary(op="!", operand=target.condition)

        return [(f"negate branch condition ({stmt.condition})", apply)]


class StuckDriver(MutationOperator):
    """Replace one signal driver's value with a stuck-at-0/1 constant."""

    name = "stuck-driver"

    def stmt_candidates(self, stmt, session, is_reset_guard):
        if not isinstance(stmt, ast.Assignment):
            return []
        return self._driver_candidates(stmt.target, stmt.value, session, stmt)

    def assign_candidates(
        self, item: ast.ContinuousAssign, session: _Session
    ) -> List[Tuple[str, Callable[[], None]]]:
        return self._driver_candidates(item.target, item.value, session, item)

    def _driver_candidates(self, target, value, session, node):
        width = _target_width(target, session.model)
        candidates = []
        for stuck in (0, 1):
            stuck_value = 0 if stuck == 0 else (1 << width) - 1 if width else 1
            if isinstance(value, ast.Number) and value.value == stuck_value:
                continue  # already that constant: equivalent by construction

            def apply(node=node, stuck_value=stuck_value, width=width) -> None:
                node.value = ast.Number(value=stuck_value, width=width)

            candidates.append((f"stuck-at-{stuck} driver for {target}", apply))
        return candidates


class ResetPolarityFlip(MutationOperator):
    """Invert the asynchronous reset guard of one sequential process."""

    name = "reset-flip"

    def stmt_candidates(self, stmt, session, is_reset_guard):
        if not isinstance(stmt, ast.If) or not is_reset_guard:
            return []

        def apply(target: ast.If = stmt) -> None:
            target.condition = ast.Unary(op="!", operand=target.condition)

        return [(f"flip reset polarity ({stmt.condition})", apply)]


DEFAULT_OPERATORS: Tuple[MutationOperator, ...] = (
    BinarySwap(),
    ConstantOffByOne(),
    NegateCondition(),
    StuckDriver(),
    ResetPolarityFlip(),
)


def operator_names() -> List[str]:
    return [operator.name for operator in DEFAULT_OPERATORS]


# ---------------------------------------------------------------------------
# Traversal
# ---------------------------------------------------------------------------


def _target_width(expr: ast.Expr, model: RtlModel) -> Optional[int]:
    """Declared width of an assignment target, or None when unresolvable."""
    if isinstance(expr, ast.Identifier):
        signal = model.signals.get(expr.name)
        return signal.width if signal is not None else None
    if isinstance(expr, ast.BitSelect):
        return 1
    if isinstance(expr, ast.PartSelect):
        try:
            msb = _const_value(expr.msb, model)
            lsb = _const_value(expr.lsb, model)
        except ValueError:
            return None
        return abs(msb - lsb) + 1
    if isinstance(expr, ast.Concat):
        total = 0
        for part in expr.parts:
            width = _target_width(part, model)
            if width is None:
                return None
            total += width
        return total
    return None


def _const_value(expr: ast.Expr, model: RtlModel) -> int:
    if isinstance(expr, ast.Number):
        return expr.value
    if isinstance(expr, ast.Identifier) and expr.name in model.parameters:
        return model.parameters[expr.name]
    raise ValueError(f"not a constant: {expr}")


def _map_expr(expr: ast.Expr, operator: MutationOperator, session: _Session) -> ast.Expr:
    """Pre-order walk offering candidates, rebuilding on application.

    Select indexes, part-select bounds, and replication counts are copied
    verbatim rather than recursed into: mutations there routinely produce
    out-of-range selects or zero-width replications, i.e. stillborn mutants.
    """
    for description, replacement in operator.expr_candidates(expr, session):
        if session.offer(description):
            return replacement
    if isinstance(expr, ast.Unary):
        return ast.Unary(op=expr.op, operand=_map_expr(expr.operand, operator, session))
    if isinstance(expr, ast.Binary):
        left = _map_expr(expr.left, operator, session)
        right = _map_expr(expr.right, operator, session)
        return ast.Binary(op=expr.op, left=left, right=right)
    if isinstance(expr, ast.Ternary):
        return ast.Ternary(
            cond=_map_expr(expr.cond, operator, session),
            then=_map_expr(expr.then, operator, session),
            otherwise=_map_expr(expr.otherwise, operator, session),
        )
    if isinstance(expr, ast.BitSelect):
        return ast.BitSelect(
            base=_map_expr(expr.base, operator, session),
            index=expr.index,
        )
    if isinstance(expr, ast.PartSelect):
        return ast.PartSelect(
            base=_map_expr(expr.base, operator, session),
            msb=expr.msb,
            lsb=expr.lsb,
        )
    if isinstance(expr, ast.Concat):
        return ast.Concat(
            parts=tuple(_map_expr(part, operator, session) for part in expr.parts)
        )
    if isinstance(expr, ast.Replicate):
        return ast.Replicate(
            count=expr.count,
            value=_map_expr(expr.value, operator, session),
        )
    return expr


def _walk_stmt(
    stmt: ast.Stmt,
    operator: MutationOperator,
    session: _Session,
    reset_guard: Optional[ast.If],
) -> None:
    # Pure enumeration (target=None) must leave the walked AST untouched —
    # it runs over the *golden* module, not a copy — so rebuilt expressions
    # are only written back when this session is actually applying a site.
    applying = session.target is not None
    for description, apply in operator.stmt_candidates(stmt, session, stmt is reset_guard):
        if session.offer(description):
            apply()
            return  # the subtree was rewritten wholesale; nothing left to visit
    if isinstance(stmt, ast.Block):
        for inner in stmt.statements:
            _walk_stmt(inner, operator, session, reset_guard)
    elif isinstance(stmt, ast.Assignment):
        value = _map_expr(stmt.value, operator, session)
        if applying:
            stmt.value = value
    elif isinstance(stmt, ast.If):
        condition = _map_expr(stmt.condition, operator, session)
        if applying:
            stmt.condition = condition
        _walk_stmt(stmt.then_body, operator, session, reset_guard)
        if stmt.else_body is not None:
            _walk_stmt(stmt.else_body, operator, session, reset_guard)
    elif isinstance(stmt, ast.Case):
        subject = _map_expr(stmt.subject, operator, session)
        if applying:
            stmt.subject = subject
        for item in stmt.items:
            labels = [_map_expr(label, operator, session) for label in item.labels]
            if applying:
                item.labels = labels
            _walk_stmt(item.body, operator, session, reset_guard)
        if stmt.default is not None:
            _walk_stmt(stmt.default, operator, session, reset_guard)


def _first_if(stmt: ast.Stmt) -> Optional[ast.If]:
    body = stmt
    while isinstance(body, ast.Block) and body.statements:
        body = body.statements[0]
    return body if isinstance(body, ast.If) else None


def _reset_guard_of(item: ast.AlwaysBlock) -> Optional[ast.If]:
    """The leading reset-test ``if`` of an async-reset process, if any.

    Mirrors the classification of :func:`repro.hdl.elaborate._build_seq_process`:
    with multiple sensitivity edges, the leading ``if`` is the reset guard
    when it tests one of the edge signals (which elaboration then treats as
    the asynchronous reset).
    """
    edges = item.sensitivity.edges
    if len(edges) < 2:
        return None
    guard = _first_if(item.body)
    if guard is None:
        return None
    condition_signals = guard.condition.signals()
    if any(edge.signal in condition_signals for edge in edges):
        return guard
    return None


def _run_session(
    module: ast.Module, model: RtlModel, operator: MutationOperator, target: Optional[int]
) -> _Session:
    session = _Session(model, target)
    for item in module.items:
        if isinstance(item, ast.ContinuousAssign):
            applied = False
            if isinstance(operator, StuckDriver):
                for description, apply in operator.assign_candidates(item, session):
                    if session.offer(description):
                        apply()
                        applied = True
                        break
            if not applied:
                value = _map_expr(item.value, operator, session)
                if target is not None:
                    item.value = value
        elif isinstance(item, ast.AlwaysBlock):
            _walk_stmt(item.body, operator, session, _reset_guard_of(item))
    return session


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def resolve_operators(names: Optional[Sequence[str]] = None) -> List[MutationOperator]:
    """Resolve operator names to instances (None = the default battery).

    The single validator for operator names: raises ``KeyError`` naming the
    unknown operators and the available set.
    """
    if names is None:
        return list(DEFAULT_OPERATORS)
    by_name = {operator.name: operator for operator in DEFAULT_OPERATORS}
    unknown = [name for name in names if name not in by_name]
    if unknown:
        raise KeyError(f"unknown mutation operator(s) {unknown}; available: {sorted(by_name)}")
    return [by_name[name] for name in names]


def mutation_sites(
    design: Design, operators: Optional[Sequence[str]] = None
) -> List[MutationSite]:
    """Enumerate every candidate mutation site of ``design``."""
    sites: List[MutationSite] = []
    for operator in resolve_operators(operators):
        session = _run_session(design.module, design.model, operator, target=None)
        sites.extend(
            MutationSite(operator.name, index, description)
            for index, description in enumerate(session.descriptions)
        )
    return sites


def apply_mutation(design: Design, operator_name: str, site: int) -> Design:
    """Build the mutant design for one ``(operator, site)`` address.

    Raises :class:`IndexError` for an out-of-range site and propagates
    elaboration errors for stillborn mutants.  The mutant is elaborated
    directly from the mutated module AST; its source text is the rendered
    module, so the content address (source fingerprint) is exactly what
    re-parsing would produce — the render→parse round-trip suite pins the
    two forms structurally equal.
    """
    (operator,) = resolve_operators([operator_name])
    module = ast.clone_module(design.module)
    session = _run_session(module, design.model, operator, target=site)
    if not session.applied:
        raise IndexError(
            f"{operator_name} has {len(session.descriptions)} sites in "
            f"{design.name}, requested {site}"
        )
    model = elaborate(module)
    return Design(
        name=f"{design.name}~{operator_name}@{site}",
        source=render_module(module),
        module=module,
        model=model,
        design_type="sequential" if model.is_sequential else "combinational",
        functionality=design.functionality,
        category=design.category,
    )


#: Sentinel classification for a candidate whose semantic comparison raised
#: (distinct from ``None``, which means "no difference detectable").
_STILLBORN = object()


def _interleave(groups: List[List[MutationSite]]) -> Iterator[MutationSite]:
    """Round-robin across operators so a cap keeps operator diversity."""
    cursors = [0] * len(groups)
    remaining = sum(len(group) for group in groups)
    while remaining:
        for position, group in enumerate(groups):
            if cursors[position] < len(group):
                yield group[cursors[position]]
                cursors[position] += 1
                remaining -= 1


def enumerate_mutants(
    design: Design,
    operators: Optional[Sequence[str]] = None,
    *,
    semantic_filter: bool = True,
    limit: Optional[int] = None,
) -> Tuple[List[Mutant], MutantStats]:
    """Generate the viable mutants of ``design``.

    Every returned mutant elaborates and — when ``semantic_filter`` is on
    (the default) — provably differs from the golden design on at least one
    reachable state (its :class:`DifferenceWitness` says where).  Stillborn
    and equivalent candidates are dropped and counted in the stats.  With
    ``limit``, sites are taken round-robin across operators until ``limit``
    viable mutants are found; the remainder is counted as ``truncated``.
    """
    stats = MutantStats()
    per_operator: List[List[MutationSite]] = []
    for operator in resolve_operators(operators):
        session = _run_session(design.module, design.model, operator, target=None)
        per_operator.append(
            [
                MutationSite(operator.name, index, description)
                for index, description in enumerate(session.descriptions)
            ]
        )
    stats.sites = sum(len(group) for group in per_operator)

    #: The golden transition system / reachable set / reference traces are
    #: shared by every mutant of this design — build them once.
    context = SemanticContext(design) if semantic_filter else None

    mutants: List[Mutant] = []
    seen = 0
    sites = iter(_interleave(per_operator))
    exhausted = False
    while not exhausted and (limit is None or len(mutants) < limit):
        # One wave: apply just enough candidates to (possibly) fill the
        # remaining budget, then semantically filter the whole wave against
        # the golden design in one batched family sweep.  Per-candidate
        # classification — and therefore the stats and the viable set — is
        # identical to filtering one candidate at a time.
        need = (limit - len(mutants)) if limit is not None else None
        wave: List[Tuple[MutationSite, Design]] = []
        while need is None or len(wave) < need:
            site = next(sites, None)
            if site is None:
                exhausted = True
                break
            seen += 1
            try:
                mutated = apply_mutation(design, site.operator, site.index)
            except (HdlError, EvalError, ValueError, RecursionError):
                stats.stillborn += 1
                continue
            wave.append((site, mutated))
        if not wave:
            break
        if context is not None:
            try:
                witnesses = context.differences([mutated for _, mutated in wave])
            except (HdlError, EvalError, RecursionError):
                # A whole-wave failure is indistinguishable from which
                # candidate caused it; classify one at a time instead.
                witnesses = []
                for _, mutated in wave:
                    try:
                        witnesses.append(context.difference(mutated))
                    except (HdlError, EvalError, RecursionError):
                        witnesses.append(_STILLBORN)
        else:
            witnesses = [None] * len(wave)
        for (site, mutated), witness in zip(wave, witnesses):
            if witness is _STILLBORN:
                stats.stillborn += 1
                continue
            if context is not None and witness is None:
                stats.equivalent += 1
                continue
            mutants.append(
                Mutant(
                    golden_name=design.name,
                    operator=site.operator,
                    site=site.index,
                    description=site.description,
                    design=mutated,
                    witness=witness,
                )
            )
    if limit is not None and len(mutants) >= limit:
        stats.truncated = stats.sites - seen
    stats.viable = len(mutants)
    return mutants, stats
