"""Semantic difference detection between a golden design and a mutant.

Mutation analysis is only meaningful over mutants that *can* be killed: a
mutant that no longer elaborates is stillborn, and a mutant that is
semantically equivalent to the golden design (the mutation landed on dead or
redundant logic) would count as "survived" against every assertion and
silently depress kill rates.  :func:`semantic_difference` is the filter the
operator library runs on every candidate: it returns a concrete
:class:`DifferenceWitness` — a reachable state and input assignment (or a
stimulus cycle) on which the two designs disagree — or ``None`` when no
difference is detectable.

Two strategies, mirroring the FPV engine's proof strategies:

* **Reachable-state sweep** — when the golden design's input space is
  enumerable and its reachable set fits the caps, both designs are stepped
  from every golden-reachable state under every input vector and compared
  signal-by-signal (settled environment *and* next state).  Finding no
  difference here is a complete equivalence argument over the golden
  design's reachable space, because both machines start from the same
  initial state and agree on every transition out of every reachable state.
* **Lockstep simulation** — beyond those caps, both designs run the same
  constrained-random stimulus (identical seeds, reset sequence) and their
  traces are compared cycle-by-cycle.  No difference within the bounded run
  means the candidate is *treated* as equivalent (the standard conservative
  choice in mutation analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..fpv.transition import TransitionSystem, enumerate_reachable
from ..hdl.design import Design
from ..sim.compile import VECTORIZED
from ..sim.simulator import Simulator
from ..sim.stimulus import RandomStimulus, ResetSequenceStimulus
from ..sim.trace import Trace

__all__ = [
    "DifferenceWitness",
    "SemanticContext",
    "WITNESS_CYCLES",
    "semantic_difference",
    "witness_stimulus",
]

#: Bounded lockstep-simulation budget of the semantic filter.  The FPV
#: witness pre-screen replays exactly these traces, so the constants and the
#: stimulus recipe below are the single source of truth for both.
WITNESS_CYCLES = 96
WITNESS_RESET_CYCLES = 2


def witness_stimulus(seed: int) -> ResetSequenceStimulus:
    """The stimulus a difference witness's trace was recorded under."""
    return ResetSequenceStimulus(
        RandomStimulus(seed=seed), reset_cycles=WITNESS_RESET_CYCLES
    )


@dataclass(frozen=True)
class DifferenceWitness:
    """Where a mutant observably diverges from its golden design."""

    signal: str
    golden_value: int
    mutant_value: int
    method: str  # 'state-sweep' | 'simulation'
    #: Register assignment the divergence was observed from (state sweep).
    state: Dict[str, int] = field(default_factory=dict)
    #: Input assignment driving the diverging evaluation (state sweep).
    inputs: Dict[str, int] = field(default_factory=dict)
    #: Stimulus cycle of the divergence (simulation) — 0 for the sweep.
    cycle: int = 0
    #: Stimulus seed the divergence was observed under (simulation) — lets
    #: the witness trace be replayed, e.g. by the FPV pre-screen.
    seed: int = 0

    def describe(self) -> str:
        where = (
            f"cycle {self.cycle}"
            if self.method == "simulation"
            else f"state {self.state} inputs {self.inputs}"
        )
        return (
            f"{self.signal}: golden={self.golden_value} "
            f"mutant={self.mutant_value} at {where} [{self.method}]"
        )


class SemanticContext:
    """Per-golden-design state shared across every mutant comparison.

    A design typically spawns tens of mutants; the golden transition system,
    its reachable set, and its reference simulation traces are identical for
    all of them, so the context computes each exactly once.  Only the mutant
    side is rebuilt per comparison.
    """

    def __init__(
        self,
        golden: Design,
        *,
        max_states: int = 1024,
        max_transitions: int = 40_000,
        sweep_budget: int = 60_000,
        cycles: int = WITNESS_CYCLES,
        seeds: int = 2,
    ):
        self.golden = golden
        self._cycles = cycles
        self._seeds = seeds
        # The filter is backend-neutral (every backend enumerates the same
        # reachable set, bit for bit), so it always asks for the vectorized
        # walk; systems the lowering rejects — or a missing NumPy — fall
        # back to the scalar step transparently.
        self._system = TransitionSystem(golden, backend=VECTORIZED)
        self._reachability = None
        self._sweep_feasible = False
        if self._system.can_enumerate_inputs:
            reachability = enumerate_reachable(
                self._system, max_states=max_states, max_transitions=max_transitions
            )
            budget = reachability.count * max(self._system.input_space_size, 1)
            if reachability.complete and budget <= sweep_budget:
                self._reachability = reachability
                self._sweep_feasible = True
        self._golden_traces: Optional[List[Trace]] = None

    def difference(self, mutant: Design) -> Optional[DifferenceWitness]:
        """Find a reachable divergence of ``mutant`` from the golden design.

        Returns a :class:`DifferenceWitness`, or ``None`` when the two
        designs are equivalent on the golden design's reachable space
        (complete sweep) or indistinguishable within the bounded simulation
        budget.
        """
        if self._sweep_feasible:
            return self._sweep_difference(mutant)
        return self._simulation_difference(mutant)

    def differences(self, mutants: Sequence[Design]) -> List[Optional[DifferenceWitness]]:
        """:meth:`difference` for a whole candidate batch in one family sweep.

        Candidates that share the golden design's AST skeleton are lowered
        into one :class:`~repro.sim.vector.FamilyKernel` and compared against
        the golden design together — every (reachable state × input) pair,
        or every simulated cycle, for all of them in one batched kernel pass.
        Candidates the lowering rejects fall back to the scalar
        :meth:`difference`.  Witnesses (signal, values, location, method) are
        bit-identical to the scalar comparison either way.
        """
        results: List[Optional[DifferenceWitness]] = [None] * len(mutants)
        if not mutants:
            return results
        try:
            from ..sim.vector import lower_family
        except ImportError:  # pragma: no cover - numpy not installed
            lower_family = None
        lowering = None
        if lower_family is not None:
            lowering = lower_family(self.golden.model, [mutant.model for mutant in mutants])
        handled: set = set()
        if lowering is not None:
            accepted = lowering.accepted()
            if accepted:
                if self._sweep_feasible:
                    found = self._sweep_differences_batched(lowering, accepted)
                else:
                    found = self._simulation_differences_batched(lowering, accepted, mutants)
                for position in accepted:
                    results[position] = found.get(position)
                handled = set(accepted)
        for position, mutant in enumerate(mutants):
            if position not in handled:
                results[position] = self.difference(mutant)
        return results

    def _sweep_differences_batched(self, lowering, accepted) -> Dict[int, DifferenceWitness]:
        """Complete reachable-space comparison of many mutants in one pass."""
        import numpy as np

        kernel = lowering.kernel
        system = self._system
        states = self._reachability.states
        grid = system.input_grid
        num_inputs = len(grid)
        packed_states = np.asarray([kernel.pack_state(state) for state in states], dtype=np.int64)
        packed_grid = kernel.pack_input_grid(grid)
        input_dicts = system.input_dicts()
        signals = list(self.golden.model.signals)

        found: Dict[int, DifferenceWitness] = {}
        active = [(position, lowering.member_ids[position]) for position in accepted]
        per_state = max(num_inputs * (len(active) + 1), 1)
        chunk_states = max(1, (1 << 18) // per_state)
        for start in range(0, len(states), chunk_states):
            if not active:
                break
            stop = min(start + chunk_states, len(states))
            count = stop - start
            lanes_per = count * num_inputs
            members = [0] + [member for _, member in active]
            member_col = np.repeat(np.asarray(members, dtype=np.int64), lanes_per)
            states_rep = np.tile(np.repeat(packed_states[start:stop], num_inputs), len(members))
            inputs_tiled = np.tile(packed_grid, count * len(members))
            env, nxt = kernel.family_step_packed(member_col, states_rep, inputs_tiled)
            golden_next = nxt[:lanes_per]
            still_active = []
            for row, (position, member) in enumerate(active):
                lo = (row + 1) * lanes_per
                diff_any = np.zeros(lanes_per, dtype=bool)
                for signal in signals:
                    diff_any |= env[signal][lo : lo + lanes_per] != env[signal][:lanes_per]
                diff_any |= nxt[lo : lo + lanes_per] != golden_next
                if not diff_any.any():
                    still_active.append((position, member))
                    continue
                lane = int(np.argmax(diff_any))
                state_values = system.state_dict(states[start + lane // num_inputs])
                inputs = dict(input_dicts[lane % num_inputs])
                witness = None
                for signal in signals:
                    golden_value = int(env[signal][lane])
                    mutant_value = int(env[signal][lo + lane])
                    if golden_value != mutant_value:
                        witness = DifferenceWitness(
                            signal=signal,
                            golden_value=golden_value,
                            mutant_value=mutant_value,
                            method="state-sweep",
                            state=dict(state_values),
                            inputs=inputs,
                        )
                        break
                if witness is None:
                    golden_regs = kernel.unpack_state(int(golden_next[lane]))
                    mutant_regs = kernel.unpack_state(int(nxt[lo + lane]))
                    name, golden_value, mutant_value = next(
                        (name, g, m)
                        for name, g, m in zip(kernel.state_names, golden_regs, mutant_regs)
                        if g != m
                    )
                    witness = DifferenceWitness(
                        signal=name,
                        golden_value=golden_value,
                        mutant_value=mutant_value,
                        method="state-sweep",
                        state=dict(state_values),
                        inputs=inputs,
                    )
                found[position] = witness
            active = still_active
        return found

    def _simulation_differences_batched(
        self, lowering, accepted, mutants: Sequence[Design]
    ) -> Dict[int, DifferenceWitness]:
        """Bounded lockstep comparison with all mutant traces in one batch."""
        stimuli = [self._stimulus(seed) for seed in range(self._seeds)]
        members = [lowering.member_ids[position] for position in accepted]
        member_traces = lowering.kernel.family_simulate(members, stimuli, self._cycles)
        found: Dict[int, DifferenceWitness] = {}
        for row, position in enumerate(accepted):
            for seed in range(self._seeds):
                golden_trace = self._golden_trace(seed)
                mutant_trace = member_traces[row][seed]
                witness = self._trace_difference(golden_trace, mutant_trace, seed)
                if witness is not None:
                    found[position] = witness
                    break
        return found

    def _trace_difference(
        self, golden_trace: Trace, mutant_trace: Trace, seed: int
    ) -> Optional[DifferenceWitness]:
        """First cycle-level divergence between two traces (scalar order)."""
        span = min(golden_trace.num_cycles, mutant_trace.num_cycles)
        for cycle in range(span):
            golden_row = golden_trace.row(cycle)
            mutant_row = mutant_trace.row(cycle)
            for signal, golden_value in golden_row.items():
                mutant_value = mutant_row.get(signal, 0)
                if golden_value != mutant_value:
                    return DifferenceWitness(
                        signal=signal,
                        golden_value=golden_value,
                        mutant_value=mutant_value,
                        method="simulation",
                        inputs={
                            name: mutant_row.get(name, 0)
                            for name in self.golden.model.non_clock_inputs
                        },
                        cycle=cycle,
                        seed=seed,
                    )
        return None

    # -- complete reachable-state sweep -----------------------------------------

    def _sweep_difference(self, mutant: Design) -> Optional[DifferenceWitness]:
        golden_system = self._system
        mutant_system = TransitionSystem(mutant)
        signals = list(self.golden.model.signals)
        for state in self._reachability.states:
            state_values = golden_system.state_dict(state)
            mutant_state = mutant_system.encode_state(state_values)
            for inputs in golden_system.enumerate_inputs():
                golden_step = golden_system.step(state, inputs)
                mutant_step = mutant_system.step(mutant_state, inputs)
                for signal in signals:
                    golden_value = golden_step.env.get(signal, 0)
                    mutant_value = mutant_step.env.get(signal, 0)
                    if golden_value != mutant_value:
                        return DifferenceWitness(
                            signal=signal,
                            golden_value=golden_value,
                            mutant_value=mutant_value,
                            method="state-sweep",
                            state=dict(state_values),
                            inputs=dict(inputs),
                        )
                golden_next = golden_system.state_dict(golden_step.next_state)
                mutant_next = mutant_system.state_dict(mutant_step.next_state)
                if golden_next != mutant_next:
                    signal = next(
                        name
                        for name, value in golden_next.items()
                        if mutant_next.get(name) != value
                    )
                    return DifferenceWitness(
                        signal=signal,
                        golden_value=golden_next[signal],
                        mutant_value=mutant_next.get(signal, 0),
                        method="state-sweep",
                        state=dict(state_values),
                        inputs=dict(inputs),
                    )
        return None

    # -- bounded lockstep simulation --------------------------------------------

    def _stimulus(self, seed: int) -> ResetSequenceStimulus:
        return witness_stimulus(seed)

    def _golden_trace(self, seed: int) -> Trace:
        if self._golden_traces is None:
            self._golden_traces = [
                Simulator(self.golden).run(cycles=self._cycles, stimulus=self._stimulus(s))
                for s in range(self._seeds)
            ]
        return self._golden_traces[seed]

    def _simulation_difference(self, mutant: Design) -> Optional[DifferenceWitness]:
        for seed in range(self._seeds):
            golden_trace = self._golden_trace(seed)
            mutant_trace = Simulator(mutant).run(
                cycles=self._cycles, stimulus=self._stimulus(seed)
            )
            witness = self._trace_difference(golden_trace, mutant_trace, seed)
            if witness is not None:
                return witness
        return None


def semantic_difference(
    golden: Design,
    mutant: Design,
    *,
    max_states: int = 1024,
    max_transitions: int = 40_000,
    sweep_budget: int = 60_000,
    cycles: int = WITNESS_CYCLES,
    seeds: int = 2,
) -> Optional[DifferenceWitness]:
    """One-shot wrapper over :class:`SemanticContext` for a single mutant."""
    context = SemanticContext(
        golden,
        max_states=max_states,
        max_transitions=max_transitions,
        sweep_budget=sweep_budget,
        cycles=cycles,
        seeds=seeds,
    )
    return context.difference(mutant)
