"""Semantic difference detection between a golden design and a mutant.

Mutation analysis is only meaningful over mutants that *can* be killed: a
mutant that no longer elaborates is stillborn, and a mutant that is
semantically equivalent to the golden design (the mutation landed on dead or
redundant logic) would count as "survived" against every assertion and
silently depress kill rates.  :func:`semantic_difference` is the filter the
operator library runs on every candidate: it returns a concrete
:class:`DifferenceWitness` — a reachable state and input assignment (or a
stimulus cycle) on which the two designs disagree — or ``None`` when no
difference is detectable.

Two strategies, mirroring the FPV engine's proof strategies:

* **Reachable-state sweep** — when the golden design's input space is
  enumerable and its reachable set fits the caps, both designs are stepped
  from every golden-reachable state under every input vector and compared
  signal-by-signal (settled environment *and* next state).  Finding no
  difference here is a complete equivalence argument over the golden
  design's reachable space, because both machines start from the same
  initial state and agree on every transition out of every reachable state.
* **Lockstep simulation** — beyond those caps, both designs run the same
  constrained-random stimulus (identical seeds, reset sequence) and their
  traces are compared cycle-by-cycle.  No difference within the bounded run
  means the candidate is *treated* as equivalent (the standard conservative
  choice in mutation analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..fpv.transition import TransitionSystem, enumerate_reachable
from ..hdl.design import Design
from ..sim.simulator import Simulator
from ..sim.stimulus import RandomStimulus, ResetSequenceStimulus
from ..sim.trace import Trace

__all__ = ["DifferenceWitness", "SemanticContext", "semantic_difference"]


@dataclass(frozen=True)
class DifferenceWitness:
    """Where a mutant observably diverges from its golden design."""

    signal: str
    golden_value: int
    mutant_value: int
    method: str  # 'state-sweep' | 'simulation'
    #: Register assignment the divergence was observed from (state sweep).
    state: Dict[str, int] = field(default_factory=dict)
    #: Input assignment driving the diverging evaluation (state sweep).
    inputs: Dict[str, int] = field(default_factory=dict)
    #: Stimulus cycle of the divergence (simulation) — 0 for the sweep.
    cycle: int = 0

    def describe(self) -> str:
        where = (
            f"cycle {self.cycle}"
            if self.method == "simulation"
            else f"state {self.state} inputs {self.inputs}"
        )
        return (
            f"{self.signal}: golden={self.golden_value} "
            f"mutant={self.mutant_value} at {where} [{self.method}]"
        )


class SemanticContext:
    """Per-golden-design state shared across every mutant comparison.

    A design typically spawns tens of mutants; the golden transition system,
    its reachable set, and its reference simulation traces are identical for
    all of them, so the context computes each exactly once.  Only the mutant
    side is rebuilt per comparison.
    """

    def __init__(
        self,
        golden: Design,
        *,
        max_states: int = 1024,
        max_transitions: int = 40_000,
        sweep_budget: int = 60_000,
        cycles: int = 96,
        seeds: int = 2,
    ):
        self.golden = golden
        self._cycles = cycles
        self._seeds = seeds
        self._system = TransitionSystem(golden)
        self._reachability = None
        self._sweep_feasible = False
        if self._system.can_enumerate_inputs:
            reachability = enumerate_reachable(
                self._system, max_states=max_states, max_transitions=max_transitions
            )
            budget = reachability.count * max(self._system.input_space_size, 1)
            if reachability.complete and budget <= sweep_budget:
                self._reachability = reachability
                self._sweep_feasible = True
        self._golden_traces: Optional[List[Trace]] = None

    def difference(self, mutant: Design) -> Optional[DifferenceWitness]:
        """Find a reachable divergence of ``mutant`` from the golden design.

        Returns a :class:`DifferenceWitness`, or ``None`` when the two
        designs are equivalent on the golden design's reachable space
        (complete sweep) or indistinguishable within the bounded simulation
        budget.
        """
        if self._sweep_feasible:
            return self._sweep_difference(mutant)
        return self._simulation_difference(mutant)

    # -- complete reachable-state sweep -----------------------------------------

    def _sweep_difference(self, mutant: Design) -> Optional[DifferenceWitness]:
        golden_system = self._system
        mutant_system = TransitionSystem(mutant)
        signals = list(self.golden.model.signals)
        for state in self._reachability.states:
            state_values = golden_system.state_dict(state)
            mutant_state = mutant_system.encode_state(state_values)
            for inputs in golden_system.enumerate_inputs():
                golden_step = golden_system.step(state, inputs)
                mutant_step = mutant_system.step(mutant_state, inputs)
                for signal in signals:
                    golden_value = golden_step.env.get(signal, 0)
                    mutant_value = mutant_step.env.get(signal, 0)
                    if golden_value != mutant_value:
                        return DifferenceWitness(
                            signal=signal,
                            golden_value=golden_value,
                            mutant_value=mutant_value,
                            method="state-sweep",
                            state=dict(state_values),
                            inputs=dict(inputs),
                        )
                golden_next = golden_system.state_dict(golden_step.next_state)
                mutant_next = mutant_system.state_dict(mutant_step.next_state)
                if golden_next != mutant_next:
                    signal = next(
                        name
                        for name, value in golden_next.items()
                        if mutant_next.get(name) != value
                    )
                    return DifferenceWitness(
                        signal=signal,
                        golden_value=golden_next[signal],
                        mutant_value=mutant_next.get(signal, 0),
                        method="state-sweep",
                        state=dict(state_values),
                        inputs=dict(inputs),
                    )
        return None

    # -- bounded lockstep simulation --------------------------------------------

    def _stimulus(self, seed: int) -> ResetSequenceStimulus:
        return ResetSequenceStimulus(RandomStimulus(seed=seed), reset_cycles=2)

    def _golden_trace(self, seed: int) -> Trace:
        if self._golden_traces is None:
            self._golden_traces = [
                Simulator(self.golden).run(cycles=self._cycles, stimulus=self._stimulus(s))
                for s in range(self._seeds)
            ]
        return self._golden_traces[seed]

    def _simulation_difference(self, mutant: Design) -> Optional[DifferenceWitness]:
        for seed in range(self._seeds):
            golden_trace = self._golden_trace(seed)
            mutant_trace = Simulator(mutant).run(
                cycles=self._cycles, stimulus=self._stimulus(seed)
            )
            span = min(golden_trace.num_cycles, mutant_trace.num_cycles)
            for cycle in range(span):
                golden_row = golden_trace.row(cycle)
                mutant_row = mutant_trace.row(cycle)
                for signal, golden_value in golden_row.items():
                    mutant_value = mutant_row.get(signal, 0)
                    if golden_value != mutant_value:
                        return DifferenceWitness(
                            signal=signal,
                            golden_value=golden_value,
                            mutant_value=mutant_value,
                            method="simulation",
                            inputs={
                                name: mutant_row.get(name, 0)
                                for name in self.golden.model.non_clock_inputs
                            },
                            cycle=cycle,
                        )
        return None


def semantic_difference(
    golden: Design,
    mutant: Design,
    *,
    max_states: int = 1024,
    max_transitions: int = 40_000,
    sweep_budget: int = 60_000,
    cycles: int = 96,
    seeds: int = 2,
) -> Optional[DifferenceWitness]:
    """One-shot wrapper over :class:`SemanticContext` for a single mutant."""
    context = SemanticContext(
        golden,
        max_states=max_states,
        max_transitions=max_transitions,
        sweep_budget=sweep_budget,
        cycles=cycles,
        seeds=seeds,
    )
    return context.difference(mutant)
