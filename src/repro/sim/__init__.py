"""Cycle-accurate simulation: evaluation, stimulus, traces, VCD export."""

from .compile import (
    COMPILED,
    INTERPRETED,
    CompiledEvaluator,
    CompiledExecutor,
    default_backend,
    make_evaluator,
    make_executor,
)
from .eval import EvalError, ExprEvaluator, StatementExecutor
from .simulator import CombinationalLoopError, Simulator, simulate
from .stimulus import (
    DirectedStimulus,
    ExhaustiveStimulus,
    RandomStimulus,
    ResetSequenceStimulus,
    Stimulus,
    WalkingOnesStimulus,
    default_stimulus,
)
from .trace import Trace
from .vcd import dump_vcd, write_vcd

__all__ = [
    "COMPILED",
    "CombinationalLoopError",
    "CompiledEvaluator",
    "CompiledExecutor",
    "DirectedStimulus",
    "EvalError",
    "ExhaustiveStimulus",
    "ExprEvaluator",
    "INTERPRETED",
    "default_backend",
    "make_evaluator",
    "make_executor",
    "RandomStimulus",
    "ResetSequenceStimulus",
    "Simulator",
    "StatementExecutor",
    "Stimulus",
    "Trace",
    "WalkingOnesStimulus",
    "default_stimulus",
    "dump_vcd",
    "simulate",
    "write_vcd",
]
