"""Cycle-accurate simulation: evaluation, stimulus, traces, VCD export."""

from .compile import (
    BACKENDS,
    COMPILED,
    INTERPRETED,
    VECTORIZED,
    CompiledEvaluator,
    CompiledExecutor,
    default_backend,
    make_evaluator,
    make_executor,
)
from .eval import EvalError, ExprEvaluator, StatementExecutor
from .simulator import CombinationalLoopError, Simulator, simulate
from .stimulus import (
    DirectedStimulus,
    ExhaustiveStimulus,
    RandomStimulus,
    ResetSequenceStimulus,
    Stimulus,
    WalkingOnesStimulus,
    default_stimulus,
    stack_stimuli,
)
from .trace import Trace
from .vcd import dump_vcd, write_vcd

# The NumPy lowering lives in repro.sim.vector; it is imported lazily by the
# transition system and the FPV engine so this package stays importable on
# NumPy-free installs (the scalar backends never need it).

__all__ = [
    "BACKENDS",
    "COMPILED",
    "VECTORIZED",
    "CombinationalLoopError",
    "CompiledEvaluator",
    "CompiledExecutor",
    "DirectedStimulus",
    "EvalError",
    "ExhaustiveStimulus",
    "ExprEvaluator",
    "INTERPRETED",
    "default_backend",
    "make_evaluator",
    "make_executor",
    "RandomStimulus",
    "ResetSequenceStimulus",
    "Simulator",
    "StatementExecutor",
    "Stimulus",
    "Trace",
    "WalkingOnesStimulus",
    "default_stimulus",
    "dump_vcd",
    "simulate",
    "stack_stimuli",
    "write_vcd",
]
