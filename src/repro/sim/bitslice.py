"""Bit-sliced (transposed) lowering: 64 lanes per uint64 word per bit.

Where the SoA kernel of :mod:`repro.sim.vector` keeps one int64 cell per
signal per lane, this module transposes the layout: each signal becomes a
``(width, words)`` uint64 array of *bit planes*, with plane ``b`` holding bit
``b`` of 64 lanes per word.  Boolean structure — ``&``, ``|``, ``^``, ``~``,
``==``-against-constant, muxes, FSM case dispatch — then evaluates as one
word-wide op per plane, a ~64x density win for the control-dominated designs
that dominate reachability BFS and obligation-table sweeps.  Narrow
arithmetic (``+``/``-``/compares) lowers to ripple-carry/borrow chains over
the planes; everything else (``*``, ``/``, ``%``, ``**``, dynamic shifts and
indices) raises :class:`UnsupportedForVectorization` so the planner falls
back to the SoA or multi-limb representation.

Invariant: lanes past the batch size (the tail of the last word) are zero in
every plane and every mask; ops that set bits (``~``, ``==``, inverted
masks) AND with the valid-lane words ``__full__`` to preserve it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..hdl import ast
from ..hdl.elaborate import RtlModel
from .eval import EvalError
from .vector import (
    Cols,
    UnsupportedForVectorization,
    VecKernel,
    VecStoreKernel,
    VectorExprCompiler,
    VectorKernel,
    VectorStmtCompiler,
    pack_columns,
)

_WORD_BITS = 64


def _words_for(lanes: int) -> int:
    """Number of uint64 words covering ``lanes`` bit-packed lanes."""
    return (lanes + _WORD_BITS - 1) >> 6


def _full_words(lanes: int) -> np.ndarray:
    """Valid-lane words: all ones, with the tail of the last word zero."""
    words = np.full(_words_for(lanes), ~np.uint64(0), dtype=np.uint64)
    tail = lanes & (_WORD_BITS - 1)
    if words.size and tail:
        words[-1] = np.uint64((1 << tail) - 1)
    return words


def _to_planes(column, width: int, lanes: int) -> np.ndarray:
    """Transpose a per-lane integer column into ``(width, words)`` planes."""
    arr = np.asarray(column)
    if arr.dtype == object:
        arr = arr.astype(object)
    else:
        arr = arr.astype(np.int64, copy=False)
    words = _words_for(lanes)
    planes = np.zeros((max(width, 1), words), dtype=np.uint64)
    padded = np.zeros(words * _WORD_BITS, dtype=np.uint8)
    for b in range(planes.shape[0]):
        padded[:lanes] = ((arr >> b) & 1).astype(np.uint8)
        planes[b] = np.packbits(padded, bitorder="little").view(np.uint64)
    return planes


def _from_planes(planes: np.ndarray, lanes: int) -> np.ndarray:
    """Inverse of :func:`_to_planes` (plane count must fit int64 lanes)."""
    out = np.zeros(lanes, dtype=np.int64)
    for b in range(planes.shape[0]):
        row = np.ascontiguousarray(np.broadcast_to(planes[b], (out.size + 63) >> 6))
        bits = np.unpackbits(row.view(np.uint8), bitorder="little")[:lanes]
        out |= bits.astype(np.int64) << np.int64(b)
    return out


def _prow(planes: np.ndarray, i: int) -> Union[np.ndarray, np.uint64]:
    """Plane ``i`` of a value, zero when out of range."""
    if 0 <= i < planes.shape[0]:
        return planes[i]
    return np.uint64(0)


def _pstack(rows: Sequence) -> np.ndarray:
    """Stack per-plane rows (mixed scalar/(1,)/(W,) shapes) into (k, W)."""
    if not len(rows):
        # A zero-width value (zero-count replicate, zero-bit shift result)
        # is the scalar 0: one all-zero plane keeps every consumer total.
        return np.zeros((1, 1), dtype=np.uint64)
    arrays = [np.atleast_1d(np.asarray(r, dtype=np.uint64)) for r in rows]
    arrays = np.broadcast_arrays(*arrays)
    return np.stack(arrays)


def _or_planes(planes: np.ndarray) -> np.ndarray:
    """OR of all planes: the per-lane truthiness word mask."""
    return np.bitwise_or.reduce(planes, axis=0)


def _padd(a: np.ndarray, b, out_bits: int, carry_in=None) -> np.ndarray:
    """Ripple-carry add over bit planes, truncated to ``out_bits`` planes."""
    carry = np.uint64(0) if carry_in is None else carry_in
    rows = []
    for i in range(out_bits):
        x = _prow(a, i)
        y = _prow(b, i) if b is not None else np.uint64(0)
        rows.append(x ^ y ^ carry)
        carry = (x & y) | (carry & (x ^ y))
    return _pstack(rows)


def _psub(a: np.ndarray, b: np.ndarray, out_bits: int, full: np.ndarray) -> np.ndarray:
    """a - b mod 2**out_bits: a + ~b + 1 with ~ confined to valid lanes."""
    carry = full
    rows = []
    for i in range(out_bits):
        x = _prow(a, i)
        y = (~_prow(b, i)) & full  # planes past b's top invert to all-valid
        rows.append(x ^ y ^ carry)
        carry = (x & y) | (carry & (x ^ y))
    return _pstack(rows)


def _peq(a: np.ndarray, b: np.ndarray, full: np.ndarray) -> np.ndarray:
    eq = full
    for i in range(max(a.shape[0], b.shape[0])):
        eq = eq & ~(_prow(a, i) ^ _prow(b, i))
    return eq


def _pcmp(a: np.ndarray, b: np.ndarray, full: np.ndarray):
    """Unsigned (lt, gt) word masks, scanning planes top-down."""
    lt = np.zeros_like(full)
    gt = np.zeros_like(full)
    undecided = full
    for i in range(max(a.shape[0], b.shape[0]) - 1, -1, -1):
        x = _prow(a, i)
        y = _prow(b, i)
        lt = lt | (undecided & ~x & y)
        gt = gt | (undecided & x & ~y)
        undecided = undecided & ~(x ^ y)
    return lt, gt


# ---------------------------------------------------------------------------
# Expression lowering
# ---------------------------------------------------------------------------


class BitPlaneExprCompiler(VectorExprCompiler):
    """Compile expressions to bit-plane kernels.

    Every kernel returns a ``(value_bits, words)`` uint64 plane array; plane
    counts carry the same headroom as the scalar backends (``+``/``-`` emit
    width+1 planes, compares emit one plane).  Unsupported ops raise so the
    planner can fall back to another representation.
    """

    def _require_bits(self, bits: int, expr: ast.Expr) -> None:
        pass  # planes hold any width

    def _build(self, expr: ast.Expr) -> VecKernel:
        if not (expr.signals() & self._signal_names):
            try:
                value = self._interp.eval(expr, {})
            except EvalError as exc:
                raise UnsupportedForVectorization(str(exc)) from exc
            bits = max(value.bit_length(), 1)
            set_bits = tuple(bool((value >> b) & 1) for b in range(bits))

            def const(cols: Cols) -> np.ndarray:
                full = cols["__full__"]
                planes = np.zeros((bits, full.shape[0]), dtype=np.uint64)
                for b, is_set in enumerate(set_bits):
                    if is_set:
                        planes[b] = full
                return planes

            return const
        if isinstance(expr, ast.Identifier):
            name = expr.name
            if name not in self._model.signals:
                raise UnsupportedForVectorization(f"unknown signal {name!r}")
            return lambda cols: cols[name]
        if isinstance(expr, ast.BitSelect):
            return self._build_bit_select(expr)
        if isinstance(expr, ast.PartSelect):
            base = self.compile(expr.base)
            msb = self._interp.const_value(expr.msb)
            lsb = self._interp.const_value(expr.lsb)
            if msb < lsb:
                msb, lsb = lsb, msb
            count = msb - lsb + 1
            return lambda cols: _pstack(
                [_prow(base(cols), lsb + i) for i in range(count)]
            )
        if isinstance(expr, ast.Unary):
            return self._build_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._build_binary(expr)
        if isinstance(expr, ast.Ternary):
            cond = self.compile(expr.cond)
            then = self.compile(expr.then)
            otherwise = self.compile(expr.otherwise)

            def ternary(cols: Cols) -> np.ndarray:
                c = _or_planes(cond(cols))
                t = then(cols)
                e = otherwise(cols)
                # Branch planes keep the zero-tail invariant, so e & ~c stays
                # clean despite ~c's set tail bits.
                rows = [
                    (_prow(t, i) & c) | (_prow(e, i) & ~c)
                    for i in range(max(t.shape[0], e.shape[0]))
                ]
                return _pstack(rows)

            return ternary
        if isinstance(expr, ast.Concat):
            parts = [(self.compile(p), self.width_of(p)) for p in expr.parts]
            total = sum(width for _, width in parts)
            if total == 0:
                # Every part is zero-width (e.g. zero-count replicates):
                # the scalar value is 0.
                return lambda cols: np.zeros(
                    (1, cols["__full__"].shape[0]), dtype=np.uint64
                )
            shifts = []
            offset = total
            for kernel, width in parts:
                offset -= width
                shifts.append((kernel, offset, width))
            shifts_t = tuple(shifts)

            def concat(cols: Cols) -> np.ndarray:
                rows: List = [np.uint64(0)] * total
                for kernel, shift, width in shifts_t:
                    planes = kernel(cols)
                    for i in range(width):
                        rows[shift + i] = _prow(planes, i)
                return _pstack(rows)

            return concat
        if isinstance(expr, ast.Replicate):
            count = self._interp.const_value(expr.count)
            width = self.width_of(expr.value)
            chunk = self.compile(expr.value)
            # A zero-width chunk replicates to a zero-width (value 0) result
            # just like a zero count does.
            if count == 0 or width == 0:

                def empty(cols: Cols) -> np.ndarray:
                    return np.zeros((1, cols["__full__"].shape[0]), dtype=np.uint64)

                return empty

            def replicate(cols: Cols) -> np.ndarray:
                planes = chunk(cols)
                rows = [_prow(planes, i % width) for i in range(width * count)]
                return _pstack(rows)

            return replicate
        raise UnsupportedForVectorization(f"cannot bit-slice {expr!r}")

    def _build_bit_select(self, expr: ast.BitSelect) -> VecKernel:
        base = self.compile(expr.base)
        if expr.index.signals() & self._signal_names:
            raise UnsupportedForVectorization(
                "dynamic bit select is not bit-sliced"
            )
        index = self._interp.eval(expr.index, {})
        if index < 0:
            raise EvalError(f"negative bit index {index}")
        return lambda cols: _pstack([_prow(base(cols), index)])

    def _build_unary(self, expr: ast.Unary) -> VecKernel:
        operand = self.compile(expr.operand)
        width = self.width_of(expr.operand)
        op = expr.op
        if op == "~":

            def invert(cols: Cols) -> np.ndarray:
                a = operand(cols)
                full = cols["__full__"]
                return _pstack([(~_prow(a, i)) & full for i in range(width)])

            return invert
        if op == "!":
            return lambda cols: _pstack(
                [~_or_planes(operand(cols)) & cols["__full__"]]
            )
        if op == "-":

            def negate(cols: Cols) -> np.ndarray:
                a = operand(cols)
                full = cols["__full__"]
                comp = _pstack([(~_prow(a, i)) & full for i in range(width)])
                return _padd(comp, None, width, carry_in=full)

            return negate
        if op == "&":
            # Scalar semantics compare the full headroom-carrying value with
            # the width mask: any set headroom plane makes the reduction 0.
            def red_and(cols: Cols) -> np.ndarray:
                a = operand(cols)
                acc = cols["__full__"]
                for i in range(max(a.shape[0], width)):
                    acc = acc & _prow(a, i) if i < width else acc & ~_prow(a, i)
                return _pstack([acc])

            return red_and
        if op == "|":
            return lambda cols: _pstack([_or_planes(operand(cols))])
        if op == "^":

            def red_xor(cols: Cols) -> np.ndarray:
                a = operand(cols)
                acc = np.zeros_like(cols["__full__"])
                for i in range(a.shape[0]):
                    acc = acc ^ a[i]
                return _pstack([acc])

            return red_xor
        raise UnsupportedForVectorization(f"unsupported unary operator {op!r}")

    def _build_binary(self, expr: ast.Binary) -> VecKernel:
        op = expr.op
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        if op in ("&&", "||"):
            fn = np.bitwise_and if op == "&&" else np.bitwise_or
            return lambda cols: _pstack(
                [fn(_or_planes(left(cols)), _or_planes(right(cols)))]
            )
        width = max(self.width_of(expr.left), self.width_of(expr.right))
        if op == "+":
            return lambda cols: _padd(left(cols), right(cols), width + 1)
        if op == "-":
            return lambda cols: _psub(
                left(cols), right(cols), width + 1, cols["__full__"]
            )
        if op in ("&", "|", "^"):
            fn = {"&": np.bitwise_and, "|": np.bitwise_or, "^": np.bitwise_xor}[op]

            def bitwise(cols: Cols) -> np.ndarray:
                a = left(cols)
                b = right(cols)
                k = (
                    min(a.shape[0], b.shape[0])
                    if op == "&"
                    else max(a.shape[0], b.shape[0])
                )
                return _pstack([fn(_prow(a, i), _prow(b, i)) for i in range(k)])

            return bitwise
        if op in ("==", "===", "!=", "!=="):
            negate = op in ("!=", "!==")

            def equality(cols: Cols) -> np.ndarray:
                full = cols["__full__"]
                eq = _peq(left(cols), right(cols), full)
                return _pstack([(~eq) & full if negate else eq])

            return equality
        if op in ("<", "<=", ">", ">="):

            def compare(cols: Cols) -> np.ndarray:
                full = cols["__full__"]
                lt, gt = _pcmp(left(cols), right(cols), full)
                if op == "<":
                    return _pstack([lt])
                if op == "<=":
                    return _pstack([(~gt) & full])
                if op == ">":
                    return _pstack([gt])
                return _pstack([(~lt) & full])

            return compare
        if op in ("<<", "<<<", ">>", ">>>"):
            if expr.right.signals() & self._signal_names:
                raise UnsupportedForVectorization("dynamic shift is not bit-sliced")
            amount = self._interp.eval(expr.right, {})
            out_bits = self.width_of(expr.left)
            if op in ("<<", "<<<"):
                return lambda cols: _pstack(
                    [_prow(left(cols), i - amount) for i in range(out_bits)]
                )
            return lambda cols: _pstack(
                [_prow(left(cols), i + amount) for i in range(out_bits)]
            )
        raise UnsupportedForVectorization(
            f"binary operator {op!r} is not bit-sliced"
        )


# ---------------------------------------------------------------------------
# Statement lowering
# ---------------------------------------------------------------------------


class _BitNbSink:
    """Non-blocking staging area with word-mask written sets."""

    __slots__ = ("env", "full", "values", "written")

    def __init__(self, env: Cols, full: np.ndarray):
        self.env = env
        self.full = full
        self.values: Cols = {}
        self.written: Dict[str, np.ndarray] = {}

    def current(self, name: str, lanes: int) -> np.ndarray:
        if name in self.values:
            w = self.written[name]
            return (self.values[name] & w) | (self.env[name] & ~w)
        return self.env[name]

    def write(self, name: str, value: np.ndarray, mask, lanes: int) -> None:
        if mask is None:
            mask = self.full
        if name in self.values:
            self.values[name] = (value & mask) | (self.values[name] & ~mask)
            self.written[name] = self.written[name] | mask
        else:
            self.values[name] = value & mask
            self.written[name] = np.broadcast_to(mask, self.full.shape).copy()


class _BitEnvAliasSink(_BitNbSink):
    """Word-mask sink that writes straight into the environment."""

    def current(self, name: str, lanes: int) -> np.ndarray:
        return self.env[name]

    def write(self, name: str, value: np.ndarray, mask, lanes: int) -> None:
        if mask is None:
            self.env[name] = value
        else:
            self.env[name] = (value & mask) | (self.env[name] & ~mask)


class BitPlaneStmtCompiler(VectorStmtCompiler):
    """Masked statement execution where lane masks are uint64 word masks."""

    def _cond_mask(self, value, env: Cols):
        return _or_planes(value)

    def _eq_mask(self, label_value, subject_value, env: Cols):
        return _peq(label_value, subject_value, env["__full__"])

    def _invert_mask(self, cond, env: Cols):
        if isinstance(cond, bool):
            return not cond
        return ~cond & env["__full__"]

    def _materialize_mask(self, mask, env: Cols, lanes: int):
        if isinstance(mask, np.ndarray):
            return mask
        return None if mask else np.zeros_like(env["__full__"])

    def _lift(self, value, lanes: int):
        arr = np.asarray(value)
        words = _words_for(lanes)
        if arr.shape[-1] == words:
            return arr
        return np.ascontiguousarray(np.broadcast_to(arr, (arr.shape[0], words)))

    def _build_store_kernel(self, target: ast.Expr) -> VecStoreKernel:
        if isinstance(target, ast.Identifier):
            name = target.name
            width = max(self._model.signal(name).width, 1)

            def store_ident(
                value: np.ndarray, env: Cols, nb, mask, lanes: int
            ) -> None:
                aligned = _plane_align(value, width)
                if nb is None:
                    if mask is None:
                        env[name] = aligned
                    else:
                        env[name] = (aligned & mask) | (env[name] & ~mask)
                else:
                    nb.write(name, aligned, mask, lanes)

            return store_ident
        if isinstance(target, ast.BitSelect):
            name = self._target_name(target)
            width = max(self._model.signal(name).width, 1)
            if target.index.signals() & frozenset(self._model.signals):
                raise UnsupportedForVectorization(
                    "dynamic bit-select store is not bit-sliced"
                )
            index = self._exprs._interp.eval(target.index, {})
            if index < 0:
                raise EvalError(f"negative bit index {index}")

            def store_bit(
                value: np.ndarray, env: Cols, nb, mask, lanes: int
            ) -> None:
                if index >= width:
                    return  # the signal mask would drop the bit anyway
                current = env[name] if nb is None else nb.current(name, lanes)
                updated = _plane_align(current, width).copy()
                updated[index] = _prow(np.asarray(value), 0)
                if nb is None:
                    if mask is None:
                        env[name] = updated
                    else:
                        env[name] = (updated & mask) | (env[name] & ~mask)
                else:
                    nb.write(name, updated, mask, lanes)

            return store_bit
        if isinstance(target, ast.PartSelect):
            name = self._target_name(target)
            width = max(self._model.signal(name).width, 1)
            signals = frozenset(self._model.signals)
            if (target.msb.signals() & signals) or (target.lsb.signals() & signals):
                raise UnsupportedForVectorization(
                    "dynamic part-select store is not bit-sliced"
                )
            msb = self._exprs._interp.const_value(target.msb)
            lsb = self._exprs._interp.const_value(target.lsb)
            if msb < lsb:
                msb, lsb = lsb, msb

            def store_part(
                value: np.ndarray, env: Cols, nb, mask, lanes: int
            ) -> None:
                current = env[name] if nb is None else nb.current(name, lanes)
                updated = _plane_align(current, width).copy()
                varr = np.asarray(value)
                for i in range(lsb, min(msb + 1, width)):
                    updated[i] = _prow(varr, i - lsb)
                if nb is None:
                    if mask is None:
                        env[name] = updated
                    else:
                        env[name] = (updated & mask) | (env[name] & ~mask)
                else:
                    nb.write(name, updated, mask, lanes)

            return store_part
        if isinstance(target, ast.Concat):
            parts = []
            offset = sum(self._exprs.width_of(part) for part in target.parts)
            for part in target.parts:
                width = self._exprs.width_of(part)
                offset -= width
                parts.append((self._build_store_kernel(part), offset, width))
            parts_t = tuple(parts)

            def store_concat(
                value: np.ndarray, env: Cols, nb, mask, lanes: int
            ) -> None:
                varr = np.asarray(value)
                for store, shift, pwidth in parts_t:
                    rows = _pstack([_prow(varr, shift + i) for i in range(pwidth)])
                    store(self._lift(rows, lanes), env, nb, mask, lanes)

            return store_concat
        raise UnsupportedForVectorization(f"unsupported assignment target {target!r}")


def _plane_align(planes: np.ndarray, width: int) -> np.ndarray:
    """Pad (or truncate) a plane array to exactly ``width`` planes."""
    have = planes.shape[0]
    if have == width:
        return planes
    if have > width:
        return planes[:width]
    pad = np.zeros((width - have,) + planes.shape[1:], dtype=np.uint64)
    return np.concatenate([planes, pad], axis=0)


# ---------------------------------------------------------------------------
# The kernel
# ---------------------------------------------------------------------------


class BitSlicedKernel(VectorKernel):
    """Vector kernel holding every signal as (width, words) uint64 bit planes.

    The environment carries two extra keys: ``__lanes__`` (the batch size;
    plane arrays cannot express it once the tail word is partial) and
    ``__full__`` (the valid-lane words every bit-setting op masks with).
    """

    plan_name = "bitsliced"

    def _check_widths(self, model: RtlModel) -> None:
        pass  # planes hold any width; profitability gates the attempt

    def _make_expr_compiler(self, model: RtlModel) -> VectorExprCompiler:
        return BitPlaneExprCompiler(model)

    def _make_stmt_compiler(
        self, model: RtlModel, exprs: VectorExprCompiler
    ) -> VectorStmtCompiler:
        return BitPlaneStmtCompiler(model, exprs)

    # -- environments ---------------------------------------------------------

    def blank_env(self, lanes: int) -> Cols:
        words = _words_for(lanes)
        env: Cols = {
            name: np.zeros((max(signal.width, 1), words), dtype=np.uint64)
            for name, signal in self._model.signals.items()
        }
        env["__lanes__"] = np.int64(lanes)
        env["__full__"] = _full_words(lanes)
        return env

    def initial_env(self, lanes: int) -> Cols:
        cols = self.blank_env(lanes)
        full = cols["__full__"]
        for name, value in self._model.initial_values.items():
            signal = self._model.signals[name]
            masked = value & signal.mask
            planes = np.zeros((max(signal.width, 1), full.shape[0]), dtype=np.uint64)
            for b in range(planes.shape[0]):
                if (masked >> b) & 1:
                    planes[b] = full
            cols[name] = planes
        return cols

    def env_lanes(self, cols: Cols) -> int:
        if not cols:
            return 0
        return int(cols["__lanes__"])

    def env_row(
        self, cols: Cols, lane: int, names: Optional[Sequence[str]] = None
    ) -> Dict[str, int]:
        keys = (
            names
            if names is not None
            else [name for name in cols if not name.startswith("__")]
        )
        word = lane >> 6
        bit = lane & (_WORD_BITS - 1)
        out: Dict[str, int] = {}
        for name in keys:
            arr = cols[name]
            if arr.ndim == 1:  # non-plane columns (family member ids)
                out[name] = int(arr[lane])
                continue
            value = 0
            for b in range(arr.shape[0]):
                value |= ((int(arr[b, word]) >> bit) & 1) << b
            out[name] = value
        return out

    # -- representation hooks -------------------------------------------------

    def lift_state(self, name: str, column) -> np.ndarray:
        arr = np.asarray(column)
        return _to_planes(arr, self._model.signals[name].width, arr.shape[-1])

    def lift_input(self, name: str, column, lanes: int) -> np.ndarray:
        signal = self._model.signals[name]
        arr = np.asarray(column)
        if arr.dtype == object:
            arr = arr.astype(object) & signal.mask
        else:
            arr = arr.astype(np.int64) & np.int64(signal.mask)
        return _to_planes(arr, signal.width, lanes)

    def bool_lanes(self, value, lanes: int) -> np.ndarray:
        words = np.ascontiguousarray(
            np.broadcast_to(_or_planes(np.asarray(value)), _words_for(lanes))
        )
        bits = np.unpackbits(words.view(np.uint8), bitorder="little")[:lanes]
        return bits.astype(bool)

    def column_values(self, env: Cols, name: str) -> List[int]:
        return _from_planes(env[name], self.env_lanes(env)).tolist()

    def _make_alias_sink(self, cols: Cols):
        return _BitEnvAliasSink(cols, cols["__full__"])

    def _pack_next(self, next_cols: Cols, lanes: int) -> np.ndarray:
        flat: Cols = {
            name: _from_planes(next_cols[name], lanes) for name in self.state_names
        }
        return pack_columns(flat, self.state_names, self.state_widths, lanes)

    # -- sequential clocking --------------------------------------------------

    def next_state_columns(self, env: Cols, lanes: int) -> Cols:
        full = env["__full__"]
        nb = _BitNbSink(env, full)
        for body, targets in self._seq:
            shadow = dict(env)
            nb.env = shadow
            body(shadow, nb, None, lanes)
            for name in targets:
                if shadow[name] is env[name]:
                    continue
                changed = _or_planes(shadow[name] ^ env[name]) & full
                if name in nb.written:
                    changed = changed & ~nb.written[name]
                if changed.any():
                    nb.write(name, shadow[name], changed, lanes)
        nb.env = env
        out: Cols = {}
        for name in self.state_names:
            if name in nb.values:
                w = nb.written[name]
                out[name] = (nb.values[name] & w) | (env[name] & ~w)
            else:
                out[name] = env[name]
        return out


# ---------------------------------------------------------------------------
# Profitability heuristic (consulted by the planner)
# ---------------------------------------------------------------------------

#: Widest signal the heuristic still considers control-dominated.
_PROFITABLE_MAX_WIDTH = 2
#: Minimum signal count before transposition beats plain SoA dispatch.
_PROFITABLE_MIN_SIGNALS = 8


def bitslice_profitable(model: RtlModel) -> bool:
    """Predict whether the bit-sliced kernel beats SoA for ``model``.

    Transposition pays when the design is a web of 1-2 bit control signals
    (64 lanes per word per plane); wide datapaths cost one ripple chain per
    arithmetic op and lose to SoA's single int64 op.  The planner only
    *attempts* the bit-sliced build when this returns True — a build that
    raises still falls back to SoA, so the heuristic errs conservative.
    """
    widths = [signal.width for signal in model.signals.values()]
    if len(widths) < _PROFITABLE_MIN_SIGNALS:
        return False
    return max(widths) <= _PROFITABLE_MAX_WIDTH
