"""Compiled expression and statement kernels.

This module is the first layer of the verification backend: it lowers
``ast.Expr``/``ast.Stmt`` trees to plain Python closures ("kernels") with
signal widths, parameter values, and mask constants resolved once at compile
time.  The tree-walking :class:`~repro.sim.eval.ExprEvaluator` re-dispatches
on node types and re-infers widths on every call; a compiled kernel does that
work exactly once and afterwards only performs the arithmetic.

Two drop-in replacements are provided:

* :class:`CompiledEvaluator` — same interface as ``ExprEvaluator``
  (``eval``/``width_of``), backed by a per-expression kernel cache.
* :class:`CompiledExecutor` — same interface as ``StatementExecutor``
  (``run_combinational``/``run_sequential``/``store``), backed by a
  per-statement kernel cache.

The interpreter remains available as a reference backend; callers select one
through :func:`make_evaluator`/:func:`make_executor` or the ``backend``
keyword of :class:`~repro.sim.simulator.Simulator`,
:class:`~repro.fpv.trace_check.TraceChecker`,
:class:`~repro.fpv.transition.TransitionSystem`, and
:class:`~repro.fpv.engine.EngineConfig`.  Both backends are bit-for-bit
equivalent (enforced by the property-based tests in
``tests/sim/test_compile.py``).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

from ..hdl import ast
from ..hdl.elaborate import RtlModel
from .eval import EvalError, ExprEvaluator

Env = Dict[str, int]
#: A compiled expression: environment in, masked integer out.
Kernel = Callable[[Env], int]
#: A compiled statement: ``fn(env, nonblocking)`` — blocking assignments
#: write into ``env``, non-blocking ones are staged into ``nonblocking``.
StmtKernel = Callable[[Env, Env], None]
#: A compiled assignment target: ``fn(value, env, sink)``.
StoreKernel = Callable[[int, Env, Env], None]

#: Backend identifiers.
INTERPRETED = "interpreted"
COMPILED = "compiled"
#: Array backend: batch-level paths (reachability BFS, the FPV obligation
#: sweep, falsification trace generation) run on the NumPy lowering in
#: :mod:`repro.sim.vector`; scalar call sites (``eval`` on one environment)
#: fall back to compiled kernels, as does any design the lowering rejects.
VECTORIZED = "vectorized"

BACKENDS = (INTERPRETED, COMPILED, VECTORIZED)

_BACKEND_ENV_VAR = "REPRO_EVAL_BACKEND"
_SHIFT_CAP = 1 << 16


def default_backend() -> str:
    """The process-wide default backend (``REPRO_EVAL_BACKEND``, else compiled)."""
    value = os.environ.get(_BACKEND_ENV_VAR, COMPILED).strip().lower()
    if value not in BACKENDS:
        expected = ", ".join(repr(name) for name in BACKENDS)
        raise ValueError(
            f"unknown evaluation backend {value!r} (expected one of {expected})"
        )
    return value


class CompiledEvaluator:
    """Evaluate expressions through compiled kernels.

    Kernels are cached per expression node; expression nodes are frozen
    dataclasses with structural equality, so identical sub-expressions across
    different assertions share one kernel.
    """

    backend = COMPILED

    def __init__(self, model: RtlModel):
        self._model = model
        self._interp = ExprEvaluator(model)
        self._cache: Dict[ast.Expr, Kernel] = {}
        # Structural hashing walks the whole subtree on every lookup; the
        # id-keyed fast path makes repeated evals of the same node O(1).  The
        # node is kept referenced so its id stays valid.
        self._by_id: Dict[int, Tuple[ast.Expr, Kernel]] = {}
        self._signal_names = frozenset(model.signals)

    # -- public interface (mirrors ExprEvaluator) ---------------------------

    def width_of(self, expr: ast.Expr) -> int:
        return self._interp.width_of(expr)

    def eval(self, expr: ast.Expr, env: Env) -> int:
        entry = self._by_id.get(id(expr))
        if entry is not None:
            return entry[1](env)
        return self.compile(expr)(env)

    def compile(self, expr: ast.Expr) -> Kernel:
        """Return (building and caching if needed) the kernel for ``expr``."""
        entry = self._by_id.get(id(expr))
        if entry is not None:
            return entry[1]
        kernel = self._cache.get(expr)
        if kernel is None:
            kernel = self._build(expr)
            self._cache[expr] = kernel
        self._by_id[id(expr)] = (expr, kernel)
        return kernel

    # -- kernel construction -------------------------------------------------

    def _build(self, expr: ast.Expr) -> Kernel:
        # Anything with no signal references is a compile-time constant; the
        # interpreter defines the reference semantics (masking included).
        if not (expr.signals() & self._signal_names):
            value = self._interp.eval(expr, {})
            return lambda env: value

        if isinstance(expr, ast.Identifier):
            name = expr.name

            def read(env: Env, _name=name) -> int:
                try:
                    return env[_name]
                except KeyError:
                    raise EvalError(f"unknown signal {_name!r}") from None

            return read
        if isinstance(expr, ast.BitSelect):
            return self._build_bit_select(expr)
        if isinstance(expr, ast.PartSelect):
            base = self.compile(expr.base)
            msb = self._interp._const_value(expr.msb)
            lsb = self._interp._const_value(expr.lsb)
            if msb < lsb:
                msb, lsb = lsb, msb
            mask = (1 << (msb - lsb + 1)) - 1
            return lambda env: (base(env) >> lsb) & mask
        if isinstance(expr, ast.Unary):
            return self._build_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._build_binary(expr)
        if isinstance(expr, ast.Ternary):
            cond = self.compile(expr.cond)
            then = self.compile(expr.then)
            otherwise = self.compile(expr.otherwise)
            return lambda env: then(env) if cond(env) else otherwise(env)
        if isinstance(expr, ast.Concat):
            parts = [(self.compile(p), self.width_of(p)) for p in expr.parts]
            shifts: List[Tuple[Kernel, int, int]] = []
            offset = sum(width for _, width in parts)
            for kernel, width in parts:
                offset -= width
                shifts.append((kernel, offset, (1 << width) - 1))
            shifts_t = tuple(shifts)

            def concat(env: Env) -> int:
                value = 0
                for kernel, shift, mask in shifts_t:
                    value |= (kernel(env) & mask) << shift
                return value

            return concat
        if isinstance(expr, ast.Replicate):
            count = self._interp._const_value(expr.count)
            width = self.width_of(expr.value)
            chunk = self.compile(expr.value)
            mask = (1 << width) - 1
            # chunk * factor replicates a masked chunk `count` times.
            factor = ((1 << (width * count)) - 1) // mask if count and mask else 0
            return lambda env: (chunk(env) & mask) * factor
        raise EvalError(f"cannot compile expression {expr!r}")

    def _build_bit_select(self, expr: ast.BitSelect) -> Kernel:
        base = self.compile(expr.base)
        if not (expr.index.signals() & self._signal_names):
            index = self._interp.eval(expr.index, {})
            if index < 0:
                raise EvalError(f"negative bit index {index}")
            return lambda env: (base(env) >> index) & 1
        index_k = self.compile(expr.index)

        def bit_select(env: Env) -> int:
            index = index_k(env)
            if index < 0:
                raise EvalError(f"negative bit index {index}")
            return (base(env) >> index) & 1

        return bit_select

    def _build_unary(self, expr: ast.Unary) -> Kernel:
        operand = self.compile(expr.operand)
        width = self.width_of(expr.operand)
        mask = (1 << width) - 1
        op = expr.op
        if op == "~":
            return lambda env: ~operand(env) & mask
        if op == "!":
            return lambda env: int(operand(env) == 0)
        if op == "-":
            return lambda env: -operand(env) & mask
        if op == "&":
            return lambda env: int(operand(env) == mask)
        if op == "|":
            return lambda env: int(operand(env) != 0)
        if op == "^":
            return lambda env: operand(env).bit_count() & 1
        raise EvalError(f"unsupported unary operator {op!r}")

    def _build_binary(self, expr: ast.Binary) -> Kernel:
        op = expr.op
        if op == "&&":
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            return lambda env: int(bool(left(env)) and bool(right(env)))
        if op == "||":
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            return lambda env: int(bool(left(env)) or bool(right(env)))
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        width = max(self.width_of(expr.left), self.width_of(expr.right))
        mask = (1 << width) - 1
        # Same headroom rule as the interpreter: carry/borrow bits survive into
        # wider assignment targets, the final store masks to the target width.
        carry_mask = (1 << (width + 1)) - 1
        mul_mask = (1 << (2 * width)) - 1
        left_mask = (1 << self.width_of(expr.left)) - 1 if op in (
            "<<", "<<<", ">>", ">>>"
        ) else 0
        table: Dict[str, Kernel] = {
            "+": lambda env: (left(env) + right(env)) & carry_mask,
            "-": lambda env: (left(env) - right(env)) & carry_mask,
            "*": lambda env: (left(env) * right(env)) & mul_mask,
            "/": lambda env: (
                (left(env) // r) & mask if (r := right(env)) else mask
            ),
            "%": lambda env: (
                (left(env) % r) & mask if (r := right(env)) else left(env) & mask
            ),
            "**": lambda env: (left(env) ** right(env)) & mask,
            "&": lambda env: left(env) & right(env),
            "|": lambda env: left(env) | right(env),
            "^": lambda env: left(env) ^ right(env),
            "==": lambda env: int(left(env) == right(env)),
            "===": lambda env: int(left(env) == right(env)),
            "!=": lambda env: int(left(env) != right(env)),
            "!==": lambda env: int(left(env) != right(env)),
            "<": lambda env: int(left(env) < right(env)),
            "<=": lambda env: int(left(env) <= right(env)),
            ">": lambda env: int(left(env) > right(env)),
            ">=": lambda env: int(left(env) >= right(env)),
            "<<": lambda env: (left(env) << min(right(env), _SHIFT_CAP)) & left_mask,
            "<<<": lambda env: (left(env) << min(right(env), _SHIFT_CAP)) & left_mask,
            ">>": lambda env: (left(env) >> min(right(env), _SHIFT_CAP)) & left_mask,
            ">>>": lambda env: (left(env) >> min(right(env), _SHIFT_CAP)) & left_mask,
        }
        kernel = table.get(op)
        if kernel is None:
            raise EvalError(f"unsupported binary operator {op!r}")
        return kernel


class CompiledExecutor:
    """Execute procedural statement bodies through compiled kernels."""

    backend = COMPILED

    def __init__(self, model: RtlModel, evaluator: Optional[CompiledEvaluator] = None):
        self._model = model
        self._eval = evaluator or CompiledEvaluator(model)
        # Statement nodes are mutable dataclasses (unhashable); key by id and
        # keep the node referenced so ids stay stable.
        self._stmt_cache: Dict[int, Tuple[ast.Stmt, StmtKernel]] = {}
        self._store_cache: Dict[ast.Expr, StoreKernel] = {}
        self._store_by_id: Dict[int, Tuple[ast.Expr, StoreKernel]] = {}

    @property
    def evaluator(self) -> CompiledEvaluator:
        return self._eval

    # -- public interface (mirrors StatementExecutor) -----------------------

    def run_combinational(self, body: ast.Stmt, env: Env) -> None:
        self.compile_stmt(body)(env, env)

    def run_sequential(
        self, body: ast.Stmt, env: Env, next_values: Env, targets=None
    ) -> None:
        shadow = dict(env)
        self.compile_stmt(body)(shadow, next_values)
        # Blocking assignments inside a clocked block still update the register:
        # persist any shadow change that was not superseded by a non-blocking one.
        # Only the process's assignment targets can have changed, so callers
        # that know them (simulator, transition system) pass them to avoid a
        # full-environment scan.
        names = targets if targets is not None else shadow
        for name in names:
            if name not in shadow:
                continue
            value = shadow[name]
            if env.get(name) != value and name not in next_values:
                next_values[name] = value

    def store(self, target: ast.Expr, value: int, env: Env, sink: Env) -> None:
        self.compile_store(target)(value, env, sink)

    # -- statement compilation ----------------------------------------------

    def compile_stmt(self, stmt: ast.Stmt) -> StmtKernel:
        cached = self._stmt_cache.get(id(stmt))
        if cached is not None:
            return cached[1]
        kernel = self._build_stmt(stmt)
        self._stmt_cache[id(stmt)] = (stmt, kernel)
        return kernel

    def _build_stmt(self, stmt: ast.Stmt) -> StmtKernel:
        if isinstance(stmt, ast.Block):
            kernels = tuple(self.compile_stmt(inner) for inner in stmt.statements)
            if len(kernels) == 1:
                return kernels[0]

            def block(env: Env, nonblocking: Env) -> None:
                for kernel in kernels:
                    kernel(env, nonblocking)

            return block
        if isinstance(stmt, ast.Assignment):
            value = self._eval.compile(stmt.value)
            store = self.compile_store(stmt.target)
            if stmt.blocking:
                return lambda env, nonblocking: store(value(env), env, env)
            return lambda env, nonblocking: store(value(env), env, nonblocking)
        if isinstance(stmt, ast.If):
            cond = self._eval.compile(stmt.condition)
            then = self.compile_stmt(stmt.then_body)
            if stmt.else_body is None:

                def if_only(env: Env, nonblocking: Env) -> None:
                    if cond(env):
                        then(env, nonblocking)

                return if_only
            otherwise = self.compile_stmt(stmt.else_body)

            def if_else(env: Env, nonblocking: Env) -> None:
                if cond(env):
                    then(env, nonblocking)
                else:
                    otherwise(env, nonblocking)

            return if_else
        if isinstance(stmt, ast.Case):
            subject = self._eval.compile(stmt.subject)
            arms = tuple(
                (
                    tuple(self._eval.compile(label) for label in item.labels),
                    self.compile_stmt(item.body),
                )
                for item in stmt.items
            )
            default = self.compile_stmt(stmt.default) if stmt.default is not None else None

            def case(env: Env, nonblocking: Env) -> None:
                value = subject(env)
                for labels, body in arms:
                    for label in labels:
                        if label(env) == value:
                            body(env, nonblocking)
                            return
                if default is not None:
                    default(env, nonblocking)

            return case
        raise EvalError(f"unsupported statement {stmt!r}")

    # -- assignment-target compilation ----------------------------------------

    def compile_store(self, target: ast.Expr) -> StoreKernel:
        entry = self._store_by_id.get(id(target))
        if entry is not None:
            return entry[1]
        kernel = self._store_cache.get(target)
        if kernel is None:
            kernel = self._build_store(target)
            self._store_cache[target] = kernel
        self._store_by_id[id(target)] = (target, kernel)
        return kernel

    def _build_store(self, target: ast.Expr) -> StoreKernel:
        if isinstance(target, ast.Identifier):
            name = target.name
            mask = self._model.signal(name).mask
            def store_ident(value: int, env: Env, sink: Env) -> None:
                sink[name] = value & mask

            return store_ident
        if isinstance(target, ast.BitSelect):
            name = self._target_name(target)
            mask = self._model.signal(name).mask
            index = self._eval.compile(target.index)

            def store_bit(value: int, env: Env, sink: Env) -> None:
                bit = 1 << index(env)
                current = sink.get(name, env.get(name, 0))
                current = current | bit if value & 1 else current & ~bit
                sink[name] = current & mask

            return store_bit
        if isinstance(target, ast.PartSelect):
            name = self._target_name(target)
            mask = self._model.signal(name).mask
            msb_k = self._eval.compile(target.msb)
            lsb_k = self._eval.compile(target.lsb)

            def store_part(value: int, env: Env, sink: Env) -> None:
                msb, lsb = msb_k(env), lsb_k(env)
                if msb < lsb:
                    msb, lsb = lsb, msb
                field_mask = (1 << (msb - lsb + 1)) - 1
                current = sink.get(name, env.get(name, 0))
                current = (current & ~(field_mask << lsb)) | ((value & field_mask) << lsb)
                sink[name] = current & mask

            return store_part
        if isinstance(target, ast.Concat):
            parts: List[Tuple[StoreKernel, int, int]] = []
            offset = sum(self._eval.width_of(part) for part in target.parts)
            for part in target.parts:
                width = self._eval.width_of(part)
                offset -= width
                parts.append((self.compile_store(part), offset, (1 << width) - 1))
            parts_t = tuple(parts)

            def store_concat(value: int, env: Env, sink: Env) -> None:
                for store, shift, mask in parts_t:
                    store((value >> shift) & mask, env, sink)

            return store_concat
        raise EvalError(f"unsupported assignment target {target!r}")

    def _target_name(self, target: ast.Expr) -> str:
        base = target.base if isinstance(target, (ast.BitSelect, ast.PartSelect)) else target
        if isinstance(base, ast.Identifier):
            return base.name
        raise EvalError(f"unsupported nested assignment target {target!r}")


def compile_comb_pass(model: RtlModel, evaluator, executor) -> Optional[Callable[[Env], None]]:
    """Fuse one combinational settle pass into a single closure.

    Returns a callable running every continuous assignment and combinational
    process once, with all kernels pre-resolved — or ``None`` when the
    executor is the interpreter (which has no kernels to pre-resolve).
    """
    if not isinstance(executor, CompiledExecutor):
        return None
    assigns = tuple(
        (evaluator.compile(assign.value), executor.compile_store(assign.target))
        for assign in model.assigns
    )
    processes = tuple(executor.compile_stmt(process.body) for process in model.comb_processes)

    def comb_pass(env: Env) -> None:
        for value, store in assigns:
            store(value(env), env, env)
        for process in processes:
            process(env, env)

    return comb_pass


class CombSettle:
    """The combinational settle routine shared by simulation and FPV.

    Runs continuous assignments and combinational processes to a fixpoint.
    Only combinationally-driven signals can change while settling, so the
    fixpoint test snapshots just those instead of the whole environment.
    """

    def __init__(self, model: RtlModel, evaluator, executor):
        self._model = model
        self._evaluator = evaluator
        self._executor = executor
        targets = [assign.target_name for assign in model.assigns]
        for process in model.comb_processes:
            targets.extend(process.targets)
        self._targets = tuple(dict.fromkeys(targets))
        self._comb_pass = compile_comb_pass(model, evaluator, executor)

    def run(self, env: Env, max_iterations: int = 64) -> bool:
        """Settle ``env`` in place; True when a fixpoint was reached."""
        targets = self._targets
        comb_pass = self._comb_pass
        for _ in range(max_iterations):
            before = [env.get(name) for name in targets]
            if comb_pass is not None:
                comb_pass(env)
            else:
                for assign in self._model.assigns:
                    value = self._evaluator.eval(assign.value, env)
                    self._executor.store(assign.target, value, env, env)
                for process in self._model.comb_processes:
                    self._executor.run_combinational(process.body, env)
            if [env.get(name) for name in targets] == before:
                return True
        return False


# ---------------------------------------------------------------------------
# Backend selection
# ---------------------------------------------------------------------------


def make_evaluator(model: RtlModel, backend: Optional[str] = None):
    """Build the expression evaluator for the requested backend.

    The vectorized backend has no scalar evaluator of its own — one-off
    ``eval`` calls (assertion terms, trace checking) run on compiled kernels
    while the batch-level sweeps use :mod:`repro.sim.vector` directly.
    """
    backend = backend or default_backend()
    if backend == INTERPRETED:
        return ExprEvaluator(model)
    if backend in (COMPILED, VECTORIZED):
        return CompiledEvaluator(model)
    raise ValueError(f"unknown evaluation backend {backend!r}")


def make_executor(model: RtlModel, evaluator=None, backend: Optional[str] = None):
    """Build the statement executor matching ``evaluator``'s backend."""
    from .eval import StatementExecutor  # local import to avoid cycle at module load

    if evaluator is not None:
        if isinstance(evaluator, CompiledEvaluator):
            return CompiledExecutor(model, evaluator)
        return StatementExecutor(model, evaluator)
    backend = backend or default_backend()
    if backend == INTERPRETED:
        return StatementExecutor(model)
    if backend in (COMPILED, VECTORIZED):
        return CompiledExecutor(model)
    raise ValueError(f"unknown evaluation backend {backend!r}")
