"""Expression and statement evaluation over an elaborated RTL model.

This module implements two-valued (0/1) semantics for the Verilog subset:
values are Python integers masked to the declared signal widths.  It is shared
by the cycle-accurate simulator (:mod:`repro.sim.simulator`) and by the FPV
engine (:mod:`repro.fpv`), which both interpret the same process bodies.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hdl import ast
from ..hdl.elaborate import RtlModel, _ConstEvaluator
from ..hdl.errors import ElaborationError

_DEFAULT_WIDTH = 32


class EvalError(ElaborationError):
    """Raised when an expression cannot be evaluated against the model."""


def _mask(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


class ExprEvaluator:
    """Evaluate expressions over a signal environment.

    The environment maps signal names to non-negative integers.  Parameters
    are resolved from the model.  Unknown identifiers raise :class:`EvalError`
    (this is how semantically malformed generated assertions are detected).
    """

    backend = "interpreted"

    def __init__(self, model: RtlModel):
        self._model = model
        self._const = _ConstEvaluator(model.parameters)

    # -- width inference ----------------------------------------------------

    def width_of(self, expr: ast.Expr) -> int:
        """Infer the bit width of an expression."""
        if isinstance(expr, ast.Number):
            return expr.width if expr.width is not None else _DEFAULT_WIDTH
        if isinstance(expr, ast.Identifier):
            if expr.name in self._model.signals:
                return self._model.signals[expr.name].width
            if expr.name in self._model.parameters:
                return _DEFAULT_WIDTH
            raise EvalError(f"unknown signal {expr.name!r}")
        if isinstance(expr, ast.BitSelect):
            return 1
        if isinstance(expr, ast.PartSelect):
            msb = self._const_value(expr.msb)
            lsb = self._const_value(expr.lsb)
            return abs(msb - lsb) + 1
        if isinstance(expr, ast.Unary):
            if expr.op in ("!",) or expr.op in ("&", "|", "^"):
                return 1
            return self.width_of(expr.operand)
        if isinstance(expr, ast.Binary):
            if expr.op in ("==", "!=", "===", "!==", "<", "<=", ">", ">=", "&&", "||"):
                return 1
            if expr.op in ("<<", ">>", "<<<", ">>>"):
                return self.width_of(expr.left)
            return max(self.width_of(expr.left), self.width_of(expr.right))
        if isinstance(expr, ast.Ternary):
            return max(self.width_of(expr.then), self.width_of(expr.otherwise))
        if isinstance(expr, ast.Concat):
            return sum(self.width_of(part) for part in expr.parts)
        if isinstance(expr, ast.Replicate):
            return self._const_value(expr.count) * self.width_of(expr.value)
        raise EvalError(f"cannot infer width of {expr!r}")

    def const_value(self, expr: ast.Expr) -> int:
        """Evaluate a constant expression over the parameter environment.

        Shared by the compiled and vectorized lowerings, which resolve part
        select bounds and replication counts once at compile time.
        """
        try:
            return self._const.eval(expr)
        except ElaborationError as exc:
            raise EvalError(str(exc)) from exc

    # Backwards-compatible alias (pre-vectorized-backend internal name).
    _const_value = const_value

    # -- evaluation -----------------------------------------------------------

    def eval(self, expr: ast.Expr, env: Dict[str, int]) -> int:
        """Evaluate ``expr`` in the signal environment ``env``."""
        if isinstance(expr, ast.Number):
            return expr.value if expr.width is None else _mask(expr.value, expr.width)
        if isinstance(expr, ast.Identifier):
            if expr.name in env:
                return env[expr.name]
            if expr.name in self._model.parameters:
                return self._model.parameters[expr.name]
            raise EvalError(f"unknown signal {expr.name!r}")
        if isinstance(expr, ast.BitSelect):
            base = self.eval(expr.base, env)
            index = self.eval(expr.index, env)
            if index < 0:
                raise EvalError(f"negative bit index {index}")
            return (base >> index) & 1
        if isinstance(expr, ast.PartSelect):
            base = self.eval(expr.base, env)
            msb = self._const_value(expr.msb)
            lsb = self._const_value(expr.lsb)
            if msb < lsb:
                msb, lsb = lsb, msb
            width = msb - lsb + 1
            return _mask(base >> lsb, width)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, env)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, ast.Ternary):
            if self.eval(expr.cond, env):
                return self.eval(expr.then, env)
            return self.eval(expr.otherwise, env)
        if isinstance(expr, ast.Concat):
            value = 0
            for part in expr.parts:
                width = self.width_of(part)
                value = (value << width) | _mask(self.eval(part, env), width)
            return value
        if isinstance(expr, ast.Replicate):
            count = self._const_value(expr.count)
            width = self.width_of(expr.value)
            chunk = _mask(self.eval(expr.value, env), width)
            value = 0
            for _ in range(count):
                value = (value << width) | chunk
            return value
        raise EvalError(f"cannot evaluate expression {expr!r}")

    def _eval_unary(self, expr: ast.Unary, env: Dict[str, int]) -> int:
        operand = self.eval(expr.operand, env)
        width = self.width_of(expr.operand)
        if expr.op == "~":
            return _mask(~operand, width)
        if expr.op == "!":
            return int(operand == 0)
        if expr.op == "-":
            return _mask(-operand, width)
        if expr.op == "&":
            return int(operand == (1 << width) - 1)
        if expr.op == "|":
            return int(operand != 0)
        if expr.op == "^":
            return bin(operand).count("1") & 1
        raise EvalError(f"unsupported unary operator {expr.op!r}")

    def _eval_binary(self, expr: ast.Binary, env: Dict[str, int]) -> int:
        op = expr.op
        if op == "&&":
            return int(bool(self.eval(expr.left, env)) and bool(self.eval(expr.right, env)))
        if op == "||":
            return int(bool(self.eval(expr.left, env)) or bool(self.eval(expr.right, env)))
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        width = max(self.width_of(expr.left), self.width_of(expr.right))
        # Arithmetic keeps one bit of headroom so carry/borrow bits survive
        # into wider assignment targets (``assign {c, s} = a + b`` style RTL);
        # the final store masks to the target width anyway.
        if op == "+":
            return _mask(left + right, width + 1)
        if op == "-":
            return _mask(left - right, width + 1)
        if op == "*":
            return _mask(left * right, 2 * width)
        if op == "/":
            return _mask(left // right, width) if right else (1 << width) - 1
        if op == "%":
            # Modulo by zero yields all-don't-care; like division we pin it to a
            # deterministic masked value so both backends agree bit-for-bit.
            return _mask(left % right, width) if right else _mask(left, width)
        if op == "**":
            return _mask(left**right, width)
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op in ("==", "==="):
            return int(left == right)
        if op in ("!=", "!=="):
            return int(left != right)
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
        if op in ("<<", "<<<"):
            return _mask(left << min(right, 1 << 16), self.width_of(expr.left))
        if op in (">>", ">>>"):
            # The left operand may carry arithmetic headroom bits (see "+"
            # above); mask the shifted result to the declared operand width.
            return _mask(left >> min(right, 1 << 16), self.width_of(expr.left))
        raise EvalError(f"unsupported binary operator {op!r}")


class StatementExecutor:
    """Execute procedural statement bodies against a signal environment."""

    backend = "interpreted"

    def __init__(self, model: RtlModel, evaluator: Optional[ExprEvaluator] = None):
        self._model = model
        self._eval = evaluator or ExprEvaluator(model)

    def run_combinational(self, body: ast.Stmt, env: Dict[str, int]) -> None:
        """Execute a combinational body: all assignments take effect immediately."""
        self._exec(body, env, env, blocking_into_env=True)

    def run_sequential(
        self,
        body: ast.Stmt,
        env: Dict[str, int],
        next_values: Dict[str, int],
        targets=None,
    ) -> None:
        """Execute a clocked body.

        Non-blocking assignments are staged into ``next_values``; blocking
        assignments update a local shadow of ``env`` so later statements in the
        same process observe them (standard Verilog scheduling semantics for
        the supported subset).  ``targets`` optionally names the process's
        assignment targets — the only signals the shadow scan can differ on.
        """
        shadow = dict(env)
        self._exec(body, shadow, next_values, blocking_into_env=True)
        # Blocking assignments inside a clocked block still update the register:
        # persist any shadow change that was not superseded by a non-blocking one.
        names = targets if targets is not None else shadow
        for name in names:
            if name not in shadow:
                continue
            value = shadow[name]
            if env.get(name) != value and name not in next_values:
                next_values[name] = value

    # -- internals -------------------------------------------------------------

    def _exec(
        self,
        stmt: ast.Stmt,
        env: Dict[str, int],
        nonblocking: Dict[str, int],
        blocking_into_env: bool,
    ) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self._exec(inner, env, nonblocking, blocking_into_env)
        elif isinstance(stmt, ast.Assignment):
            self._assign(stmt, env, nonblocking, blocking_into_env)
        elif isinstance(stmt, ast.If):
            if self._eval.eval(stmt.condition, env):
                self._exec(stmt.then_body, env, nonblocking, blocking_into_env)
            elif stmt.else_body is not None:
                self._exec(stmt.else_body, env, nonblocking, blocking_into_env)
        elif isinstance(stmt, ast.Case):
            self._exec_case(stmt, env, nonblocking, blocking_into_env)
        else:
            raise EvalError(f"unsupported statement {stmt!r}")

    def _exec_case(
        self,
        stmt: ast.Case,
        env: Dict[str, int],
        nonblocking: Dict[str, int],
        blocking_into_env: bool,
    ) -> None:
        subject = self._eval.eval(stmt.subject, env)
        for item in stmt.items:
            for label in item.labels:
                if self._eval.eval(label, env) == subject:
                    self._exec(item.body, env, nonblocking, blocking_into_env)
                    return
        if stmt.default is not None:
            self._exec(stmt.default, env, nonblocking, blocking_into_env)

    def _assign(
        self,
        stmt: ast.Assignment,
        env: Dict[str, int],
        nonblocking: Dict[str, int],
        blocking_into_env: bool,
    ) -> None:
        value = self._eval.eval(stmt.value, env)
        sink = env if (stmt.blocking and blocking_into_env) else nonblocking
        self.store(stmt.target, value, env, sink)

    def store(
        self,
        target: ast.Expr,
        value: int,
        env: Dict[str, int],
        sink: Dict[str, int],
    ) -> None:
        """Store ``value`` into ``target`` (identifier, bit-, or part-select)."""
        if isinstance(target, ast.Identifier):
            signal = self._model.signal(target.name)
            sink[target.name] = _mask(value, signal.width)
            return
        if isinstance(target, ast.BitSelect):
            name = self._target_name(target)
            signal = self._model.signal(name)
            index = self._eval.eval(target.index, env)
            current = sink.get(name, env.get(name, 0))
            if value & 1:
                current |= 1 << index
            else:
                current &= ~(1 << index)
            sink[name] = _mask(current, signal.width)
            return
        if isinstance(target, ast.PartSelect):
            name = self._target_name(target)
            signal = self._model.signal(name)
            msb = self._eval.eval(target.msb, env)
            lsb = self._eval.eval(target.lsb, env)
            if msb < lsb:
                msb, lsb = lsb, msb
            width = msb - lsb + 1
            field_mask = ((1 << width) - 1) << lsb
            current = sink.get(name, env.get(name, 0))
            current = (current & ~field_mask) | ((_mask(value, width)) << lsb)
            sink[name] = _mask(current, signal.width)
            return
        if isinstance(target, ast.Concat):
            # Assign from the most significant part downwards.
            total = sum(self._eval.width_of(part) for part in target.parts)
            offset = total
            for part in target.parts:
                width = self._eval.width_of(part)
                offset -= width
                self.store(part, _mask(value >> offset, width), env, sink)
            return
        raise EvalError(f"unsupported assignment target {target!r}")

    def _target_name(self, target: ast.Expr) -> str:
        base = target.base if isinstance(target, (ast.BitSelect, ast.PartSelect)) else target
        if isinstance(base, ast.Identifier):
            return base.name
        raise EvalError(f"unsupported nested assignment target {target!r}")
