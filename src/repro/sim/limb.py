"""Multi-limb lowering: wide values as stacks of 32-bit limb columns.

Where the SoA kernel of :mod:`repro.sim.vector` refuses any design whose
intermediates cannot be proven to fit in 63 signed bits, this module
represents every signal column as a ``(limbs, lanes)`` int64 array of 32-bit
limbs (LSB-first).  Arithmetic lowers to carry-propagating limb ops:
ripple-carry add/sub, schoolbook multiply over 16-bit digits, short division,
square-and-multiply ``**``, limb-gather shifts, and top-down limb compares —
so a 100-bit datapath or a 40x40 multiply stays on the array path.

Semantics are bit-for-bit the scalar reference: every op reproduces the
interpreter's masking rules (carry headroom on ``+``/``-``, ``2*width`` on
``*``, division-by-zero results, the 2**16 shift clamp, ``pow(l, r,
1 << width)`` for ``**``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..hdl import ast
from ..hdl.elaborate import RtlModel
from .eval import EvalError
from .vector import (
    Cols,
    Mask,
    UnsupportedForVectorization,
    VecKernel,
    VecStoreKernel,
    VectorExprCompiler,
    VectorKernel,
    VectorStmtCompiler,
    _FamilyExprCompiler,
    _FamilyMixin,
    _NbSink,
    pack_columns,
)

LIMB_BITS = 32
LIMB_MASK = (1 << LIMB_BITS) - 1
#: Scalar shift amounts clamp here, mirroring the scalar backends.
_SHIFT_CLAMP = 1 << 16


def limbs_for(bits: int) -> int:
    """Number of 32-bit limbs needed for a ``bits``-wide value."""
    return max(1, (bits + LIMB_BITS - 1) // LIMB_BITS)


# ---------------------------------------------------------------------------
# Limb-array helpers.  Values are (k, n) int64 arrays, LSB limb first; n is
# either the lane count or 1 (constants, broadcast by NumPy).
# ---------------------------------------------------------------------------


def _row(arr: np.ndarray, i: int) -> Union[np.ndarray, np.int64]:
    """Limb ``i`` of a value, zero when past its top limb."""
    if 0 <= i < arr.shape[0]:
        return arr[i]
    return np.int64(0)


def _stack(rows: Sequence) -> np.ndarray:
    """Stack per-limb rows (mixed scalar/(1,)/(n,) shapes) into (k, n)."""
    rows = [np.atleast_1d(np.asarray(r)) for r in rows]
    rows = np.broadcast_arrays(*rows)
    return np.stack(rows).astype(np.int64)


def _align(arr: np.ndarray, k: int) -> np.ndarray:
    """Pad (or truncate) a limb array to exactly ``k`` limb rows."""
    have = arr.shape[0]
    if have == k:
        return arr
    if have > k:
        return arr[:k]
    pad = np.zeros((k - have,) + arr.shape[1:], dtype=np.int64)
    return np.concatenate([arr, pad], axis=0)


def const_limbs(value: int, k: Optional[int] = None) -> np.ndarray:
    """A Python int as a (k, 1) limb array."""
    if k is None:
        k = limbs_for(max(value.bit_length(), 1))
    return np.asarray(
        [(value >> (i * LIMB_BITS)) & LIMB_MASK for i in range(k)], dtype=np.int64
    ).reshape(k, 1)


def _mask_limbs(arr: np.ndarray, bits: int) -> np.ndarray:
    """Keep the low ``bits`` bits of a limb value."""
    k = limbs_for(bits)
    arr = _align(arr, k)
    top = bits - (k - 1) * LIMB_BITS
    if top < LIMB_BITS:
        arr = arr.copy()
        arr[-1] = arr[-1] & ((1 << top) - 1)
    return arr


def _ripple_add(a: np.ndarray, b: np.ndarray, k: int) -> np.ndarray:
    rows = []
    carry: Union[np.ndarray, np.int64] = np.int64(0)
    for i in range(k):
        s = _row(a, i) + _row(b, i) + carry
        rows.append(s & LIMB_MASK)
        carry = s >> LIMB_BITS
    return _stack(rows)


def _ripple_sub(a: np.ndarray, b: np.ndarray, k: int) -> np.ndarray:
    rows = []
    borrow: Union[np.ndarray, np.int64] = np.int64(0)
    for i in range(k):
        # Negative int64 & LIMB_MASK is bitwise two's complement: exactly the
        # low 32 bits of the infinite-precision difference.
        d = _row(a, i) - _row(b, i) - borrow
        rows.append(d & LIMB_MASK)
        borrow = (np.asarray(d) < 0).astype(np.int64)
    return _stack(rows)


def _digits(arr: np.ndarray) -> List:
    """Split limb rows into 16-bit digit rows (LSB digit first)."""
    out = []
    for i in range(arr.shape[0]):
        out.append(arr[i] & 0xFFFF)
        out.append((arr[i] >> 16) & 0xFFFF)
    return out


def _mul(a: np.ndarray, b: np.ndarray, out_bits: int) -> np.ndarray:
    """Schoolbook multiply modulo ``2**out_bits`` (16-bit digit products).

    Each accumulator term is below ``2**32`` and at most ~64 terms join one
    digit position, so the running sum stays far inside int64.
    """
    da = _digits(a)
    db = _digits(b)
    nd = (out_bits + 15) // 16
    digits = []
    carry: Union[np.ndarray, np.int64] = np.int64(0)
    for p in range(nd):
        acc = carry
        for i in range(max(0, p - len(db) + 1), min(p + 1, len(da))):
            acc = acc + da[i] * db[p - i]
        digits.append(acc & 0xFFFF)
        carry = acc >> 16
    rows = []
    for i in range(0, nd, 2):
        low = digits[i]
        high = digits[i + 1] if i + 1 < nd else np.int64(0)
        rows.append(low | (high << 16))
    return _mask_limbs(_stack(rows), out_bits)


def _eq_all(a: np.ndarray, b: np.ndarray):
    """Word-wise equality over the full limb extent of both values."""
    k = max(a.shape[0], b.shape[0])
    eq = None
    for i in range(k):
        e = np.asarray(_row(a, i) == _row(b, i))
        eq = e if eq is None else eq & e
    return eq


def _cmp_masks(a: np.ndarray, b: np.ndarray):
    """(lt, gt) boolean lane masks for an unsigned limb compare."""
    k = max(a.shape[0], b.shape[0])
    lt = gt = decided = None
    for i in range(k - 1, -1, -1):
        ai, bi = _row(a, i), _row(b, i)
        li = np.asarray(ai < bi)
        gi = np.asarray(ai > bi)
        if decided is None:
            lt, gt, decided = li, gi, li | gi
        else:
            lt = lt | (~decided & li)
            gt = gt | (~decided & gi)
            decided = decided | li | gi
    return lt, gt


def _any_nonzero(arr: np.ndarray) -> np.ndarray:
    return (np.asarray(arr) != 0).any(axis=0)


def _bool_row(value) -> np.ndarray:
    """A boolean lane result as a single-limb (1, n) int64 value."""
    arr = np.atleast_1d(np.asarray(value))
    return arr.astype(np.int64).reshape(1, -1)


def _shl_const(a: np.ndarray, shift: int, out_bits: int) -> np.ndarray:
    q, r = divmod(min(shift, _SHIFT_CLAMP), LIMB_BITS)
    k = limbs_for(out_bits)
    rows = []
    for i in range(k):
        lo = _row(a, i - q)
        if r:
            hi = _row(a, i - q - 1)
            rows.append(((lo << r) & LIMB_MASK) | (hi >> (LIMB_BITS - r)))
        else:
            rows.append(lo)
    return _mask_limbs(_stack(rows), out_bits)


def _shr_const(a: np.ndarray, shift: int) -> np.ndarray:
    q, r = divmod(min(shift, _SHIFT_CLAMP), LIMB_BITS)
    k = max(1, a.shape[0] - q)
    rows = []
    for i in range(k):
        lo = _row(a, i + q)
        if r:
            hi = _row(a, i + q + 1)
            rows.append((lo >> r) | ((hi & ((1 << r) - 1)) << (LIMB_BITS - r)))
        else:
            rows.append(lo)
    return _stack(rows)


def _lanes_of(arr: np.ndarray, n: int) -> np.ndarray:
    """Broadcast a possibly-(k, 1) value to (k, n) for fancy indexing."""
    if arr.shape[1] == n:
        return arr
    return np.broadcast_to(arr, (arr.shape[0], n))


def _gather(arr: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Per-lane limb gather: row ``idx[i, lane]`` of each lane, 0 outside."""
    ka, n = arr.shape
    valid = (idx >= 0) & (idx < ka)
    safe = np.clip(idx, 0, ka - 1)
    return np.where(valid, arr[safe, np.arange(n)[None, :]], np.int64(0))


def _shl_dyn(a: np.ndarray, amount: np.ndarray, out_bits: int) -> np.ndarray:
    k = limbs_for(out_bits)
    n = len(amount)
    al = _lanes_of(a, n)
    q = amount >> 5
    r = amount & 31
    idx = np.arange(k, dtype=np.int64)[:, None] - q[None, :]
    lo = _gather(al, idx)
    hi = _gather(al, idx - 1)
    # r == 0 lanes: hi >> 32 vanishes (limb values are below 2**32).
    rows = ((lo << r[None, :]) & LIMB_MASK) | (hi >> (LIMB_BITS - r[None, :]))
    return _mask_limbs(rows, out_bits)


def _shr_dyn(a: np.ndarray, amount: np.ndarray, out_bits: int) -> np.ndarray:
    k = limbs_for(out_bits)
    n = len(amount)
    al = _lanes_of(a, n)
    q = amount >> 5
    r = amount & 31
    idx = np.arange(k, dtype=np.int64)[:, None] + q[None, :]
    lo = _gather(al, idx)
    hi = _gather(al, idx + 1)
    # r == 0 lanes: the carry-in mask (1 << r) - 1 is zero, so the high part
    # contributes nothing; masking before the left shift keeps ops in int64.
    rmask = (np.int64(1) << r[None, :]) - 1
    rows = (lo >> r[None, :]) | ((hi & rmask) << (LIMB_BITS - r[None, :]))
    return _mask_limbs(rows, out_bits)


def _collapse_amount(arr: np.ndarray, limit: int) -> np.ndarray:
    """Collapse a limb value to per-lane ints clamped to ``limit``.

    Any value with a nonzero high limb is at least ``2**32 > limit``, so it
    clamps without being materialised.
    """
    low = np.atleast_1d(np.asarray(arr[0]))
    if arr.shape[0] > 1:
        over = _any_nonzero(arr[1:])
        low = np.where(over, np.int64(limit), low)
    return np.minimum(low, limit)


def _to_object(arr: np.ndarray) -> np.ndarray:
    """Combine limb rows into arbitrary-precision Python ints per lane."""
    out = arr[0].astype(object)
    for i in range(1, arr.shape[0]):
        out = out | (arr[i].astype(object) << (i * LIMB_BITS))
    return out


def _from_object(values: np.ndarray, k: int) -> np.ndarray:
    rows = [((values >> (i * LIMB_BITS)) & LIMB_MASK).astype(np.int64) for i in range(k)]
    return np.stack(rows)


# ---------------------------------------------------------------------------
# Expression lowering
# ---------------------------------------------------------------------------


class LimbExprCompiler(VectorExprCompiler):
    """Compile expressions to (limbs, lanes) kernels with no width ceiling."""

    def value_bits(self, expr: ast.Expr) -> int:
        # The base analysis clamps `>>` results to int64; limbs have no such
        # ceiling and understating the bound would truncate real bits.
        if isinstance(expr, ast.Binary) and expr.op in (">>", ">>>"):
            return self.value_bits(expr.left)
        return super().value_bits(expr)

    def _require_bits(self, bits: int, expr: ast.Expr) -> None:
        pass  # any width fits in limbs

    def limbs_of(self, expr: ast.Expr) -> int:
        return limbs_for(self.value_bits(expr))

    # -- family overlay hooks -------------------------------------------------

    def _lift_result(self, value, lanes: int):
        arr = np.asarray(value)
        if arr.shape[-1] == lanes:
            return arr
        return np.broadcast_to(arr, (arr.shape[0], lanes))

    def _overlay(self, mask: np.ndarray, variant_value, golden_value, lanes: int):
        variant = self._lift_result(variant_value, lanes)
        golden = np.asarray(golden_value)
        k = max(variant.shape[0], golden.shape[0])
        return np.where(mask, _align(variant, k), _align(golden, k))

    # -- compilation ----------------------------------------------------------

    def _build(self, expr: ast.Expr) -> VecKernel:
        if not (expr.signals() & self._signal_names):
            try:
                value = self._interp.eval(expr, {})
            except EvalError as exc:
                raise UnsupportedForVectorization(str(exc)) from exc
            const = const_limbs(value)
            return lambda cols: const

        if isinstance(expr, ast.Identifier):
            name = expr.name
            if name not in self._model.signals:
                raise UnsupportedForVectorization(f"unknown signal {name!r}")
            return lambda cols: cols[name]
        if isinstance(expr, ast.BitSelect):
            return self._build_bit_select(expr)
        if isinstance(expr, ast.PartSelect):
            base = self.compile(expr.base)
            msb = self._interp.const_value(expr.msb)
            lsb = self._interp.const_value(expr.lsb)
            if msb < lsb:
                msb, lsb = lsb, msb
            width = msb - lsb + 1
            return lambda cols: _mask_limbs(_shr_const(base(cols), lsb), width)
        if isinstance(expr, ast.Unary):
            return self._build_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._build_binary(expr)
        if isinstance(expr, ast.Ternary):
            cond = self.compile(expr.cond)
            then = self.compile(expr.then)
            otherwise = self.compile(expr.otherwise)
            k = self.limbs_of(expr)

            def ternary(cols: Cols) -> np.ndarray:
                c = _any_nonzero(cond(cols))
                return np.where(c, _align(then(cols), k), _align(otherwise(cols), k))

            return ternary
        if isinstance(expr, ast.Concat):
            parts = [(self.compile(p), self.width_of(p)) for p in expr.parts]
            total = sum(width for _, width in parts)
            shifts = []
            offset = total
            for kernel, width in parts:
                offset -= width
                shifts.append((kernel, offset, width))
            shifts_t = tuple(shifts)
            k = limbs_for(total)

            def concat(cols: Cols) -> np.ndarray:
                value = np.zeros((k, 1), dtype=np.int64)
                for kernel, shift, width in shifts_t:
                    part = _mask_limbs(kernel(cols), width)
                    value = value | _shl_const(part, shift, total)
                return value

            return concat
        if isinstance(expr, ast.Replicate):
            count = self._interp.const_value(expr.count)
            width = self.width_of(expr.value)
            chunk = self.compile(expr.value)
            total = max(width * count, 1)
            k = limbs_for(total)

            def replicate(cols: Cols) -> np.ndarray:
                piece = _mask_limbs(chunk(cols), width)
                value = np.zeros((k, 1), dtype=np.int64)
                for c in range(count):
                    value = value | _shl_const(piece, c * width, total)
                return value

            return replicate
        raise UnsupportedForVectorization(f"cannot limb-lower {expr!r}")

    def _build_bit_select(self, expr: ast.BitSelect) -> VecKernel:
        base = self.compile(expr.base)
        base_limbs = self.limbs_of(expr.base)
        if not (expr.index.signals() & self._signal_names):
            index = self._interp.eval(expr.index, {})
            if index < 0:
                raise EvalError(f"negative bit index {index}")
            limb, bit = divmod(index, LIMB_BITS)

            def bit_select_const(cols: Cols) -> np.ndarray:
                return _bool_row((_row(base(cols), limb) >> bit) & 1)

            return bit_select_const
        index_k = self.compile(expr.index)
        limit = base_limbs * LIMB_BITS

        def bit_select(cols: Cols) -> np.ndarray:
            value = base(cols)
            idx = _collapse_amount(index_k(cols), limit)
            n = max(len(idx), value.shape[1])
            al = _lanes_of(value, n)
            if len(idx) != n:
                idx = np.broadcast_to(idx, (n,))
            sel = _gather(al, (idx >> 5)[None, :])[0]
            return _bool_row((sel >> (idx & 31)) & 1)

        return bit_select

    def _build_unary(self, expr: ast.Unary) -> VecKernel:
        operand = self.compile(expr.operand)
        width = self.width_of(expr.operand)
        op = expr.op
        if op == "~":
            k = limbs_for(width)

            def inv(cols: Cols) -> np.ndarray:
                a = operand(cols)
                rows = [(~_row(a, i)) & LIMB_MASK for i in range(k)]
                return _mask_limbs(_stack(rows), width)

            return inv
        if op == "!":
            return lambda cols: _bool_row(~_any_nonzero(operand(cols)))
        if op == "-":
            k = limbs_for(width)
            zero = np.zeros((1, 1), dtype=np.int64)
            return lambda cols: _mask_limbs(
                _ripple_sub(zero, operand(cols), k), width
            )
        if op == "&":
            mask_l = const_limbs((1 << width) - 1)
            return lambda cols: _bool_row(_eq_all(operand(cols), mask_l))
        if op == "|":
            return lambda cols: _bool_row(_any_nonzero(operand(cols)))
        if op == "^":
            if not hasattr(np, "bitwise_count"):
                raise UnsupportedForVectorization(
                    "reduction '^' needs numpy>=2.0 (np.bitwise_count)"
                )

            def parity(cols: Cols) -> np.ndarray:
                a = operand(cols)
                total = np.bitwise_count(np.asarray(a[0], dtype=np.int64)).astype(
                    np.int64
                )
                for i in range(1, a.shape[0]):
                    total = total + np.bitwise_count(
                        np.asarray(a[i], dtype=np.int64)
                    ).astype(np.int64)
                return _bool_row(total & 1)

            return parity
        raise UnsupportedForVectorization(f"unsupported unary operator {op!r}")

    def _build_binary(self, expr: ast.Binary) -> VecKernel:
        op = expr.op
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        if op == "&&":
            return lambda cols: _bool_row(
                _any_nonzero(left(cols)) & _any_nonzero(right(cols))
            )
        if op == "||":
            return lambda cols: _bool_row(
                _any_nonzero(left(cols)) | _any_nonzero(right(cols))
            )
        width = max(self.width_of(expr.left), self.width_of(expr.right))
        if op in ("+", "-"):
            m = width + 1
            k = limbs_for(m)
            ripple = _ripple_add if op == "+" else _ripple_sub
            return lambda cols: _mask_limbs(ripple(left(cols), right(cols), k), m)
        if op == "*":
            out_bits = 2 * width
            return lambda cols: _mul(left(cols), right(cols), out_bits)
        if op in ("/", "%"):
            return self._build_divmod(expr, left, right, width, op)
        if op == "**":
            return self._build_power(expr, left, right, width)
        if op in ("&", "|", "^"):
            fn = {"&": np.bitwise_and, "|": np.bitwise_or, "^": np.bitwise_xor}[op]
            k = self.limbs_of(expr)
            return lambda cols: fn(_align(left(cols), k), _align(right(cols), k))
        if op in ("==", "==="):
            return lambda cols: _bool_row(_eq_all(left(cols), right(cols)))
        if op in ("!=", "!=="):
            return lambda cols: _bool_row(
                ~np.asarray(_eq_all(left(cols), right(cols)))
            )
        if op in ("<", "<=", ">", ">="):

            def compare(cols: Cols) -> np.ndarray:
                lt, gt = _cmp_masks(left(cols), right(cols))
                if op == "<":
                    return _bool_row(lt)
                if op == "<=":
                    return _bool_row(~gt)
                if op == ">":
                    return _bool_row(gt)
                return _bool_row(~lt)

            return compare
        if op in ("<<", "<<<", ">>", ">>>"):
            out_bits = self.width_of(expr.left)
            shift_left = op in ("<<", "<<<")
            if not (expr.right.signals() & self._signal_names):
                amount = self._interp.eval(expr.right, {})
                if shift_left:
                    return lambda cols: _shl_const(left(cols), amount, out_bits)
                return lambda cols: _mask_limbs(
                    _shr_const(left(cols), amount), out_bits
                )

            def shift(cols: Cols) -> np.ndarray:
                value = left(cols)
                amount = _collapse_amount(right(cols), _SHIFT_CLAMP)
                n = max(len(amount), value.shape[1])
                if len(amount) != n:
                    amount = np.broadcast_to(amount, (n,))
                if shift_left:
                    return _shl_dyn(value, amount, out_bits)
                return _shr_dyn(value, amount, out_bits)

            return shift
        raise UnsupportedForVectorization(f"unsupported binary operator {op!r}")

    def _build_divmod(
        self, expr: ast.Binary, left: VecKernel, right: VecKernel, width: int, op: str
    ) -> VecKernel:
        mask_value = (1 << width) - 1
        out_k = limbs_for(width)
        if self.value_bits(expr.right) <= 31:
            # Short division: the remainder stays below the one-limb divisor,
            # so (rem << 32) | limb never leaves int64.
            div_mask = const_limbs(mask_value, out_k)

            def divmod_short(cols: Cols) -> np.ndarray:
                a = left(cols)
                r = np.atleast_1d(np.asarray(right(cols)[0]))
                n = max(a.shape[1], len(r))
                al = _lanes_of(a, n)
                if len(r) != n:
                    r = np.broadcast_to(r, (n,))
                zero = r == 0
                safe = np.where(zero, np.int64(1), r)
                rem = np.zeros(n, dtype=np.int64)
                qrows: List = [None] * al.shape[0]
                for i in range(al.shape[0] - 1, -1, -1):
                    cur = (rem << LIMB_BITS) | al[i]
                    q = cur // safe
                    rem = cur - q * safe
                    qrows[i] = q
                if op == "/":
                    out = _mask_limbs(_stack(qrows), width)
                    return np.where(zero, div_mask, _align(out, out_k))
                out = _align(_mask_limbs(_stack([rem]), width), out_k)
                return np.where(zero, _mask_limbs(al, width), out)

            return divmod_short

        # Wide divisors are rare: fall back to per-lane Python ints.
        if op == "/":

            def scalar_op(lv: int, rv: int) -> int:
                return mask_value if rv == 0 else (lv // rv) & mask_value

        else:

            def scalar_op(lv: int, rv: int) -> int:
                return lv & mask_value if rv == 0 else (lv % rv) & mask_value

        ufunc = np.frompyfunc(scalar_op, 2, 1)

        def divmod_object(cols: Cols) -> np.ndarray:
            lv = _to_object(left(cols))
            rv = _to_object(right(cols))
            result = np.atleast_1d(np.asarray(ufunc(lv, rv), dtype=object))
            return _from_object(result, out_k)

        return divmod_object

    def _build_power(
        self, expr: ast.Binary, left: VecKernel, right: VecKernel, width: int
    ) -> VecKernel:
        # Scalar semantics: pow(left, right, 1 << width); masking the base
        # first is sound because multiplication distributes over mod 2**w.
        out_k = limbs_for(width)
        one = const_limbs(1, out_k)
        if not (expr.right.signals() & self._signal_names):
            exponent = self._interp.eval(expr.right, {})

            def power_const(cols: Cols) -> np.ndarray:
                base = _mask_limbs(left(cols), width)
                result = one
                e = exponent
                while e:
                    if e & 1:
                        result = _mul(_align(result, out_k), base, width)
                    e >>= 1
                    if e:
                        base = _mul(base, base, width)
                return _align(result, out_k)

            return power_const
        exp_bits = self.value_bits(expr.right)

        def power(cols: Cols) -> np.ndarray:
            base = _mask_limbs(left(cols), width)
            earr = right(cols)
            result = one
            for i in range(exp_bits):
                limb, bit = divmod(i, LIMB_BITS)
                bitmask = np.asarray((_row(earr, limb) >> bit) & 1, dtype=bool)
                result = np.where(
                    bitmask,
                    _mul(_align(result, out_k), base, width),
                    _align(result, out_k),
                )
                if i + 1 < exp_bits:
                    base = _mul(base, base, width)
            return _align(np.asarray(result), out_k)

        return power


# ---------------------------------------------------------------------------
# Statement lowering
# ---------------------------------------------------------------------------


class LimbStmtCompiler(VectorStmtCompiler):
    """Masked statement execution over limb columns.

    Control flow reuses the base scaffolding; only the value→mask hooks and
    the store kernels know about limbs.  Lane masks stay plain (lanes,)
    booleans, broadcasting over the (limbs, lanes) value arrays.
    """

    def _cond_mask(self, value, env: Cols):
        result = _any_nonzero(value)
        if result.size == 1 and result.ndim:
            return bool(result.reshape(-1)[0])
        return result

    def _eq_mask(self, label_value, subject_value, env: Cols):
        eq = np.asarray(_eq_all(label_value, subject_value))
        if eq.size == 1 and eq.ndim:
            return bool(eq.reshape(-1)[0])
        return eq

    def _lift(self, value, lanes: int):
        arr = np.asarray(value)
        if arr.shape[-1] == lanes:
            return arr
        return np.broadcast_to(arr, (arr.shape[0], lanes))

    def _build_store_kernel(self, target: ast.Expr) -> VecStoreKernel:
        if isinstance(target, ast.Identifier):
            name = target.name
            signal = self._model.signal(name)
            k = limbs_for(signal.width)
            smask = const_limbs(signal.mask, k)

            def store_ident(
                value: np.ndarray, env: Cols, nb: Optional[_NbSink], mask: Mask, lanes: int
            ) -> None:
                masked = _align(value, k) & smask
                if nb is None:
                    env[name] = masked if mask is None else np.where(mask, masked, env[name])
                else:
                    nb.write(name, masked, mask, lanes)

            return store_ident
        if isinstance(target, ast.BitSelect):
            name = self._target_name(target)
            signal = self._model.signal(name)
            k = limbs_for(signal.width)
            smask = const_limbs(signal.mask, k)
            limit = k * LIMB_BITS
            if not (target.index.signals() & self._exprs._signal_names):
                idx_c = min(self._exprs._interp.eval(target.index, {}), limit)
                # Only one limb row changes; stores beyond the signal mask
                # (or the clamp) degenerate to a masked rewrite of ``current``.
                bit_li, bit_off = divmod(idx_c, LIMB_BITS)
                bit_i = (
                    (1 << bit_off) & int(smask[bit_li, 0]) if idx_c < limit else 0
                )

                def store_bit_const(
                    value: np.ndarray,
                    env: Cols,
                    nb: Optional[_NbSink],
                    mask: Mask,
                    lanes: int,
                ) -> None:
                    current = env[name] if nb is None else nb.current(name, lanes)
                    updated = current & smask
                    if bit_i:
                        set_bit = np.asarray(value[0] & 1, dtype=bool)
                        if updated.shape[1] == 1 and set_bit.size > 1:
                            updated = np.broadcast_to(
                                updated, (k, set_bit.size)
                            ).copy()
                        row = updated[bit_li]
                        updated[bit_li] = np.where(
                            set_bit, row | bit_i, row & ~bit_i
                        )
                    if nb is None:
                        env[name] = (
                            updated if mask is None else np.where(mask, updated, env[name])
                        )
                    else:
                        nb.write(name, updated, mask, lanes)

                return store_bit_const
            index_k = self._exprs.compile(target.index)
            rows = np.arange(k, dtype=np.int64)[:, None]

            def store_bit(
                value: np.ndarray, env: Cols, nb: Optional[_NbSink], mask: Mask, lanes: int
            ) -> None:
                idx = _collapse_amount(index_k(env), limit)
                if len(idx) != lanes:
                    idx = np.broadcast_to(idx, (lanes,))
                # An index at the clamp selects limb k: no row matches, so
                # out-of-range stores vanish exactly like the scalar backend.
                bit_word = np.where(
                    rows == (idx >> 5)[None, :],
                    np.int64(1) << (idx & 31)[None, :],
                    np.int64(0),
                )
                set_bit = np.asarray(value[0] & 1, dtype=bool)
                current = env[name] if nb is None else nb.current(name, lanes)
                updated = np.where(set_bit, current | bit_word, current & ~bit_word) & smask
                if nb is None:
                    env[name] = updated if mask is None else np.where(mask, updated, env[name])
                else:
                    nb.write(name, updated, mask, lanes)

            return store_bit
        if isinstance(target, ast.PartSelect):
            name = self._target_name(target)
            signal = self._model.signal(name)
            k = limbs_for(signal.width)
            smask = const_limbs(signal.mask, k)
            limit = k * LIMB_BITS
            if not (
                (target.msb.signals() | target.lsb.signals())
                & self._exprs._signal_names
            ):
                msb_c = min(self._exprs._interp.eval(target.msb, {}), limit)
                lsb_c = min(self._exprs._interp.eval(target.lsb, {}), limit)
                lo_c, hi_c = min(msb_c, lsb_c), max(msb_c, lsb_c)
                field_int = (((1 << (hi_c + 1)) - 1) ^ ((1 << lo_c) - 1)) & (
                    (1 << limit) - 1
                )
                field_c = const_limbs(field_int, k)
                keep_c = smask & ~field_c
                # Most part-select stores touch one or two limb rows of a
                # wide target; precompute a per-affected-row plan instead of
                # materialising a full k-row shifted value every call.
                part_q, part_r = divmod(lo_c, LIMB_BITS)
                row_plan = []
                for i in range(k):
                    fm_i = int(field_c[i, 0]) & int(smask[i, 0])
                    if fm_i:
                        row_plan.append((i, i - part_q, fm_i))
                row_plan_t = tuple(row_plan)

                def store_part_const(
                    value: np.ndarray,
                    env: Cols,
                    nb: Optional[_NbSink],
                    mask: Mask,
                    lanes: int,
                ) -> None:
                    current = env[name] if nb is None else nb.current(name, lanes)
                    updated = current & keep_c
                    if updated.shape[1] == 1 and value.shape[1] > 1:
                        updated = np.broadcast_to(
                            updated, (k, value.shape[1])
                        ).copy()
                    for i, src, fm_i in row_plan_t:
                        if part_r:
                            row = (
                                (_row(value, src) << part_r) & LIMB_MASK
                            ) | (_row(value, src - 1) >> (LIMB_BITS - part_r))
                        else:
                            row = _row(value, src)
                        updated[i] = updated[i] | (row & fm_i)
                    if nb is None:
                        env[name] = (
                            updated if mask is None else np.where(mask, updated, env[name])
                        )
                    else:
                        nb.write(name, updated, mask, lanes)

                return store_part_const
            msb_k = self._exprs.compile(target.msb)
            lsb_k = self._exprs.compile(target.lsb)

            def store_part(
                value: np.ndarray, env: Cols, nb: Optional[_NbSink], mask: Mask, lanes: int
            ) -> None:
                msb = _collapse_amount(msb_k(env), limit)
                lsb = _collapse_amount(lsb_k(env), limit)
                if len(msb) != lanes:
                    msb = np.broadcast_to(msb, (lanes,))
                if len(lsb) != lanes:
                    lsb = np.broadcast_to(lsb, (lanes,))
                lo = np.minimum(msb, lsb)
                hi = np.maximum(msb, lsb)
                shifted = _shl_dyn(self._lift_part(value, lanes), lo, limit)
                field_rows = []
                for i in range(k):
                    lo_i = np.clip(lo - i * LIMB_BITS, 0, LIMB_BITS)
                    hi_i = np.clip(hi + 1 - i * LIMB_BITS, 0, LIMB_BITS)
                    field_rows.append(
                        ((np.int64(1) << hi_i) - 1) - ((np.int64(1) << lo_i) - 1)
                    )
                field = _stack(field_rows)
                current = env[name] if nb is None else nb.current(name, lanes)
                updated = ((current & ~field) | (shifted & field)) & smask
                if nb is None:
                    env[name] = updated if mask is None else np.where(mask, updated, env[name])
                else:
                    nb.write(name, updated, mask, lanes)

            return store_part
        if isinstance(target, ast.Concat):
            parts = []
            offset = sum(self._exprs.width_of(part) for part in target.parts)
            for part in target.parts:
                width = self._exprs.width_of(part)
                offset -= width
                parts.append((self._build_store_kernel(part), offset, width))
            parts_t = tuple(parts)

            def store_concat(
                value: np.ndarray, env: Cols, nb: Optional[_NbSink], mask: Mask, lanes: int
            ) -> None:
                for store, shift, pwidth in parts_t:
                    part_value = _mask_limbs(_shr_const(value, shift), pwidth)
                    store(self._lift(part_value, lanes), env, nb, mask, lanes)

            return store_concat
        raise UnsupportedForVectorization(f"unsupported assignment target {target!r}")

    def _lift_part(self, value, lanes: int) -> np.ndarray:
        return self._lift(np.asarray(value), lanes)


# ---------------------------------------------------------------------------
# The kernels
# ---------------------------------------------------------------------------


class MultiLimbKernel(VectorKernel):
    """Vector kernel holding every signal as (limbs, lanes) int64 columns."""

    plan_name = "multilimb"

    def _check_widths(self, model: RtlModel) -> None:
        pass  # limbs hold any width

    def _make_expr_compiler(self, model: RtlModel) -> VectorExprCompiler:
        return LimbExprCompiler(model)

    def _make_stmt_compiler(
        self, model: RtlModel, exprs: VectorExprCompiler
    ) -> VectorStmtCompiler:
        return LimbStmtCompiler(model, exprs)

    # -- environments ---------------------------------------------------------

    def blank_env(self, lanes: int) -> Cols:
        return {
            name: np.zeros((limbs_for(signal.width), lanes), dtype=np.int64)
            for name, signal in self._model.signals.items()
        }

    def initial_env(self, lanes: int) -> Cols:
        cols = self.blank_env(lanes)
        for name, value in self._model.initial_values.items():
            signal = self._model.signals[name]
            k = limbs_for(signal.width)
            masked = value & signal.mask
            col = np.empty((k, lanes), dtype=np.int64)
            for i in range(k):
                col[i, :] = (masked >> (i * LIMB_BITS)) & LIMB_MASK
            cols[name] = col
        return cols

    def env_row(
        self, cols: Cols, lane: int, names: Optional[Sequence[str]] = None
    ) -> Dict[str, int]:
        keys = names if names is not None else cols.keys()
        out: Dict[str, int] = {}
        for name in keys:
            arr = cols[name]
            if arr.ndim == 1:
                out[name] = int(arr[lane])
                continue
            value = 0
            for i in range(arr.shape[0]):
                value |= int(arr[i, lane]) << (i * LIMB_BITS)
            out[name] = value
        return out

    # -- representation hooks -------------------------------------------------

    def lift_state(self, name: str, column) -> np.ndarray:
        return self._lift_column(name, column, mask=None)

    def lift_input(self, name: str, column, lanes: int) -> np.ndarray:
        return self._lift_column(name, column, mask=self._model.signals[name].mask)

    def _lift_column(self, name: str, column, mask: Optional[int]) -> np.ndarray:
        signal = self._model.signals[name]
        k = limbs_for(signal.width)
        arr = np.asarray(column)
        if arr.ndim == 2:  # already in limb form
            out = _align(arr.astype(np.int64, copy=False), k)
            if mask is not None:
                out = out & const_limbs(mask, k)
            return out
        if arr.dtype == object or signal.width > 63:
            values = arr.astype(object)
            if mask is not None:
                values = values & mask
            return _from_object(values, k)
        values = arr.astype(np.int64)
        if mask is not None:
            values = values & np.int64(mask)
        rows = [
            (values >> np.int64(i * LIMB_BITS)) & np.int64(LIMB_MASK) for i in range(k)
        ]
        return np.stack(rows)

    def bool_lanes(self, value, lanes: int) -> np.ndarray:
        arr = np.asarray(value)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        result = _any_nonzero(arr)
        if result.shape[0] != lanes:
            result = np.broadcast_to(result, (lanes,))
        return result

    def column_values(self, env: Cols, name: str) -> List[int]:
        arr = env[name]
        if arr.ndim == 1:
            return arr.tolist()
        if arr.shape[0] == 1:
            return arr[0].tolist()
        return _to_object(arr).tolist()

    def _pack_next(self, next_cols: Cols, lanes: int) -> np.ndarray:
        # Only reachable when `packable`, i.e. every state register fits one
        # packed int64 lane (so at most two limbs per register).
        flat: Cols = {}
        for name in self.state_names:
            arr = next_cols[name]
            col = arr[0]
            for i in range(1, arr.shape[0]):
                col = col | (arr[i] << np.int64(i * LIMB_BITS))
            flat[name] = col
        return pack_columns(flat, self.state_names, self.state_widths, lanes)


class _LimbFamilyExprCompiler(_FamilyExprCompiler, LimbExprCompiler):
    """Family-overlay compilation on the limb representation.

    The MRO does all the work: patch interception from the family compiler,
    node lowering and overlay hooks from the limb compiler.
    """


class MultiLimbFamilyKernel(_FamilyMixin, MultiLimbKernel):
    """Family kernel for wide designs: limb columns plus per-lane member ids."""

    def _make_expr_compiler(self, model: RtlModel) -> VectorExprCompiler:
        return _LimbFamilyExprCompiler(model, self._patches, self._rejected_members)

