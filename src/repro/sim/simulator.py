"""Cycle-accurate two-phase simulator for elaborated RTL models.

The simulator uses the standard synchronous abstraction: within a cycle,
inputs are applied, combinational logic settles to a fixpoint, and on the
active clock edge every sequential process computes its next register values,
which are committed simultaneously.  Asynchronous resets are sampled at the
cycle boundary (a sound abstraction for the two-valued subset).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..hdl.design import Design
from ..hdl.elaborate import RtlModel
from ..hdl.errors import ElaborationError
from .compile import CombSettle, make_evaluator, make_executor
from .stimulus import Stimulus, default_stimulus
from .trace import Trace

_MAX_SETTLE_ITERATIONS = 64


class CombinationalLoopError(ElaborationError):
    """Raised when combinational logic does not settle to a fixpoint."""


class Simulator:
    """Simulate one elaborated design."""

    def __init__(self, design_or_model, backend: Optional[str] = None):
        if isinstance(design_or_model, Design):
            self._model: RtlModel = design_or_model.model
            self._design_name = design_or_model.name
        else:
            self._model = design_or_model
            self._design_name = self._model.name
        self._evaluator = make_evaluator(self._model, backend)
        self._executor = make_executor(self._model, self._evaluator)
        self._settler = CombSettle(self._model, self._evaluator, self._executor)
        self._env: Dict[str, int] = {}
        self.reset_state()

    @property
    def backend(self) -> str:
        """Which evaluation backend this simulator runs on."""
        return self._evaluator.backend

    @property
    def model(self) -> RtlModel:
        return self._model

    @property
    def env(self) -> Dict[str, int]:
        """The current signal environment (read-only view by convention)."""
        return self._env

    # -- state management ----------------------------------------------------

    def reset_state(self) -> None:
        """Initialise every signal to its initial value (default 0)."""
        self._env = {name: 0 for name in self._model.signals}
        for name, value in self._model.initial_values.items():
            signal = self._model.signals[name]
            self._env[name] = value & signal.mask
        self.settle()

    def load_state(self, registers: Dict[str, int]) -> None:
        """Overwrite register values (used by the FPV engine)."""
        for name, value in registers.items():
            signal = self._model.signal(name)
            self._env[name] = value & signal.mask
        self.settle()

    def registers(self) -> Dict[str, int]:
        """Return the current values of all state registers."""
        return {name: self._env[name] for name in self._model.state_regs}

    # -- combinational settlement ---------------------------------------------

    def apply_inputs(self, inputs: Dict[str, int]) -> None:
        """Drive primary inputs (unknown names are rejected)."""
        for name, value in inputs.items():
            if name not in self._model.signals:
                raise ElaborationError(f"unknown input {name!r}")
            signal = self._model.signals[name]
            self._env[name] = value & signal.mask

    def settle(self) -> None:
        """Propagate combinational logic until no signal changes."""
        if not self._settler.run(self._env, _MAX_SETTLE_ITERATIONS):
            raise CombinationalLoopError(
                f"combinational logic of {self._design_name!r} did not settle"
            )

    # -- clocking ---------------------------------------------------------------

    def clock_edge(self) -> None:
        """Advance all sequential processes by one active clock edge."""
        next_values: Dict[str, int] = {}
        for process in self._model.seq_processes:
            self._executor.run_sequential(
                process.body, self._env, next_values, targets=process.targets
            )
        self._env.update(next_values)
        self.settle()

    def step(self, inputs: Optional[Dict[str, int]] = None) -> Dict[str, int]:
        """Simulate one full cycle: drive inputs, settle, clock, settle.

        Returns the post-edge signal snapshot.  For purely combinational
        designs the clock edge is a no-op and the snapshot reflects the
        settled combinational outputs.
        """
        if inputs:
            self.apply_inputs(inputs)
        self.settle()
        snapshot_inputs = dict(self._env)
        if self._model.seq_processes:
            self.clock_edge()
        # The recorded cycle pairs the driven inputs with the settled values
        # observed in that cycle (pre-edge view), which is what assertion
        # sampling and trace mining expect.
        return snapshot_inputs

    # -- trace-producing runs -----------------------------------------------------

    def run(
        self,
        cycles: int,
        stimulus: Optional[Stimulus] = None,
        reset_first: bool = True,
        seed: int = 0,
    ) -> Trace:
        """Run for ``cycles`` cycles under ``stimulus`` and return the trace."""
        if stimulus is None:
            stimulus = default_stimulus(self._model, seed=seed)
        if reset_first:
            self.reset_state()
        trace = Trace(signals=list(self._model.signals), design_name=self._design_name)
        for vector in stimulus.vectors(self._model, cycles):
            snapshot = self.step(vector)
            trace.append(snapshot)
        return trace

    def run_vectors(self, vectors: Iterable[Dict[str, int]], reset_first: bool = True) -> Trace:
        """Run an explicit vector sequence and return the trace."""
        if reset_first:
            self.reset_state()
        trace = Trace(signals=list(self._model.signals), design_name=self._design_name)
        for vector in vectors:
            snapshot = self.step(vector)
            trace.append(snapshot)
        return trace


def simulate(design: Design, cycles: int = 256, seed: int = 0) -> Trace:
    """Convenience wrapper: simulate ``design`` with default stimulus."""
    return Simulator(design).run(cycles=cycles, seed=seed)
