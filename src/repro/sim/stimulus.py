"""Stimulus generators for the cycle-accurate simulator.

Each generator produces, per simulated clock cycle, a mapping from free input
names (clock excluded) to integer values.  The generators mirror what a
verification engineer would drive from a testbench: uniform random vectors,
directed sequences, exhaustive sweeps for small designs, and reset-aware
wrappers.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterator, Optional, Sequence

from ..hdl.elaborate import RtlModel


class Stimulus:
    """Base class: iterate input vectors for a design."""

    def vectors(self, model: RtlModel, cycles: int) -> Iterator[Dict[str, int]]:
        """Yield ``cycles`` input vectors for ``model``."""
        raise NotImplementedError

    def matrix(self, model: RtlModel, cycles: int) -> Dict[str, "object"]:
        """Columnar form of :meth:`vectors`: ``{input name: int64 ndarray}``.

        One array of length ``cycles`` per free input, with the same masking
        the simulator's ``apply_inputs`` performs.  This is the array-vector
        API the vectorized simulator consumes; values are identical to the
        per-cycle dicts.  Requires NumPy.
        """
        import numpy as np

        names = model.non_clock_inputs
        # Inputs past 63 bits cannot live in int64 cells; object-dtype
        # columns keep arbitrary-precision Python ints per cycle (the
        # multi-limb kernel splits them into limb planes on lift).
        columns = {
            name: np.zeros(
                cycles,
                dtype=object if model.signals[name].width > 63 else np.int64,
            )
            for name in names
        }
        for cycle, vector in zip(range(cycles), self.vectors(model, cycles)):
            for name in names:
                columns[name][cycle] = vector.get(name, 0) & model.signals[name].mask
        return columns


class RandomStimulus(Stimulus):
    """Uniform random input vectors from a seeded PRNG."""

    def __init__(self, seed: int = 0, hold_probability: float = 0.0):
        self._seed = seed
        self._hold_probability = hold_probability

    def vectors(self, model: RtlModel, cycles: int) -> Iterator[Dict[str, int]]:
        rng = random.Random(self._seed)
        previous: Optional[Dict[str, int]] = None
        for _ in range(cycles):
            if previous is not None and rng.random() < self._hold_probability:
                yield dict(previous)
                continue
            vector = {}
            for name in model.non_clock_inputs:
                signal = model.signals[name]
                vector[name] = rng.randint(0, signal.max_value)
            previous = vector
            yield dict(vector)


class DirectedStimulus(Stimulus):
    """Replay an explicit list of input vectors (cycling if too short)."""

    def __init__(self, vectors: Sequence[Dict[str, int]], default: int = 0):
        if not vectors:
            raise ValueError("directed stimulus requires at least one vector")
        self._vectors = [dict(v) for v in vectors]
        self._default = default

    def vectors(self, model: RtlModel, cycles: int) -> Iterator[Dict[str, int]]:
        for cycle in range(cycles):
            pattern = self._vectors[cycle % len(self._vectors)]
            vector = {}
            for name in model.non_clock_inputs:
                signal = model.signals[name]
                vector[name] = pattern.get(name, self._default) & signal.mask
            yield vector


class ExhaustiveStimulus(Stimulus):
    """Sweep every combination of input values (small designs only).

    If the total input space exceeds ``max_vectors`` the sweep restarts from
    the beginning, so callers always receive exactly ``cycles`` vectors.
    """

    def __init__(self, max_vectors: int = 1 << 16):
        self._max_vectors = max_vectors

    def space_size(self, model: RtlModel) -> int:
        size = 1
        for name in model.non_clock_inputs:
            size *= model.signals[name].max_value + 1
        return size

    def vectors(self, model: RtlModel, cycles: int) -> Iterator[Dict[str, int]]:
        names = model.non_clock_inputs
        ranges = [range(model.signals[name].max_value + 1) for name in names]
        produced = 0
        while produced < cycles:
            for combo in itertools.product(*ranges) if names else [()]:
                if produced >= cycles:
                    return
                yield dict(zip(names, combo))
                produced += 1
            if not names:
                # No free inputs: just repeat the empty vector.
                while produced < cycles:
                    yield {}
                    produced += 1


class WalkingOnesStimulus(Stimulus):
    """Drive a walking-one pattern across each input, useful for datapath designs."""

    def vectors(self, model: RtlModel, cycles: int) -> Iterator[Dict[str, int]]:
        names = model.non_clock_inputs
        for cycle in range(cycles):
            vector = {}
            for name in names:
                signal = model.signals[name]
                bit = cycle % max(signal.width, 1)
                vector[name] = (1 << bit) & signal.mask
            yield vector


class ResetSequenceStimulus(Stimulus):
    """Wrap another stimulus with an initial reset pulse.

    During the first ``reset_cycles`` cycles every reset input is asserted and
    the other inputs are held at zero; afterwards the inner stimulus drives
    the inputs and resets are deasserted.
    """

    def __init__(self, inner: Stimulus, reset_cycles: int = 2, active_high: bool = True):
        self._inner = inner
        self._reset_cycles = reset_cycles
        self._active_high = active_high

    def vectors(self, model: RtlModel, cycles: int) -> Iterator[Dict[str, int]]:
        resets = [name for name in model.resets if name in model.inputs]
        inner_iter = self._inner.vectors(model, cycles)
        for cycle in range(cycles):
            try:
                vector = next(inner_iter)
            except StopIteration:
                vector = {name: 0 for name in model.non_clock_inputs}
            in_reset = cycle < self._reset_cycles
            for name in resets:
                asserted = 1 if self._active_high else 0
                deasserted = 1 - asserted
                vector[name] = asserted if in_reset else deasserted
            if in_reset:
                for name in model.non_clock_inputs:
                    if name not in resets:
                        vector[name] = 0
            yield vector


def stack_stimuli(
    stimuli: Sequence[Stimulus], model: RtlModel, cycles: int
) -> Dict[str, "object"]:
    """Stack a batch of stimuli into ``{input name: (cycles, lanes) ndarray}``.

    Lane ``i`` carries exactly the vectors ``stimuli[i]`` would feed a scalar
    simulator, so a batched run over the stack is trace-for-trace identical
    to one scalar run per stimulus.
    """
    import numpy as np

    matrices = [stimulus.matrix(model, cycles) for stimulus in stimuli]
    return {
        name: np.stack([matrix[name] for matrix in matrices], axis=1)
        for name in model.non_clock_inputs
    }


def default_stimulus(model: RtlModel, seed: int = 0) -> Stimulus:
    """Pick a reasonable default stimulus for a design.

    Small combinational designs get an exhaustive sweep; everything else gets
    reset-aware random stimulus.
    """
    exhaustive = ExhaustiveStimulus()
    if not model.is_sequential and model.input_bits <= 12:
        return exhaustive
    return ResetSequenceStimulus(RandomStimulus(seed=seed), reset_cycles=2)
