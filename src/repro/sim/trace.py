"""Simulation trace container.

A :class:`Trace` records the value of every design signal at every simulated
clock cycle.  Traces feed the assertion miners (:mod:`repro.mining`), the
simulation-based falsification path of the FPV engine, and VCD export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence


@dataclass
class Trace:
    """Column-oriented storage of simulated signal values."""

    signals: List[str] = field(default_factory=list)
    data: Dict[str, List[int]] = field(default_factory=dict)
    design_name: str = ""

    def __post_init__(self):
        for name in self.signals:
            self.data.setdefault(name, [])

    @property
    def num_cycles(self) -> int:
        if not self.data:
            return 0
        return min(len(column) for column in self.data.values())

    def __len__(self) -> int:
        return self.num_cycles

    def append(self, values: Dict[str, int]) -> None:
        """Record one cycle of signal values."""
        for name in self.signals:
            if name not in values:
                raise KeyError(f"cycle record missing signal {name!r}")
            self.data[name].append(values[name])

    def value(self, signal: str, cycle: int) -> int:
        """Return the value of ``signal`` at ``cycle``."""
        return self.data[signal][cycle]

    def column(self, signal: str) -> List[int]:
        """Return the full value sequence for one signal."""
        return self.data[signal]

    def row(self, cycle: int) -> Dict[str, int]:
        """Return a {signal: value} snapshot of one cycle."""
        return {name: self.data[name][cycle] for name in self.signals}

    def rows(self) -> Iterator[Dict[str, int]]:
        """Iterate over per-cycle snapshots."""
        for cycle in range(self.num_cycles):
            yield self.row(cycle)

    def window(self, start: int, length: int) -> "Trace":
        """Return a sub-trace covering ``length`` cycles starting at ``start``."""
        sub = Trace(signals=list(self.signals), design_name=self.design_name)
        for name in self.signals:
            sub.data[name] = self.data[name][start:start + length]
        return sub

    def extend(self, other: "Trace") -> None:
        """Append all cycles of ``other`` (same signal set required)."""
        if set(other.signals) != set(self.signals):
            raise ValueError("traces record different signal sets")
        for name in self.signals:
            self.data[name].extend(other.data[name])

    def distinct_values(self, signal: str) -> Sequence[int]:
        """Return the sorted distinct values a signal takes in the trace."""
        return sorted(set(self.data[signal]))

    def toggle_count(self, signal: str) -> int:
        """Number of cycles in which the signal changes value."""
        column = self.data[signal]
        return sum(1 for a, b in zip(column, column[1:]) if a != b)

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-signal summary statistics (min, max, toggles)."""
        result = {}
        for name in self.signals:
            column = self.data[name]
            if not column:
                result[name] = {"min": 0, "max": 0, "toggles": 0}
                continue
            result[name] = {
                "min": min(column),
                "max": max(column),
                "toggles": self.toggle_count(name),
            }
        return result
