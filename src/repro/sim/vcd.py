"""Minimal VCD (value change dump) writer for simulation traces.

The writer emits a standards-compliant subset of IEEE 1364 VCD so that
traces produced by :class:`repro.sim.Simulator` can be inspected in any
waveform viewer (GTKWave etc.).
"""

from __future__ import annotations

from typing import Dict, Optional, TextIO

from ..hdl.elaborate import RtlModel
from .trace import Trace

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier_for(index: int) -> str:
    """Map a signal index to a short VCD identifier code."""
    if index < len(_ID_CHARS):
        return _ID_CHARS[index]
    code = ""
    while index:
        index, rem = divmod(index, len(_ID_CHARS))
        code += _ID_CHARS[rem]
    return code or _ID_CHARS[0]


def write_vcd(
    trace: Trace,
    stream: TextIO,
    model: Optional[RtlModel] = None,
    timescale: str = "1ns",
    module_name: Optional[str] = None,
) -> None:
    """Write ``trace`` to ``stream`` in VCD format.

    If ``model`` is provided, declared signal widths are used; otherwise each
    signal's width is inferred from the maximum value it takes in the trace.
    """
    widths: Dict[str, int] = {}
    for name in trace.signals:
        if model is not None and name in model.signals:
            widths[name] = model.signals[name].width
        else:
            peak = max(trace.column(name), default=0)
            widths[name] = max(1, peak.bit_length())

    identifiers = {name: _identifier_for(i) for i, name in enumerate(trace.signals)}
    scope = module_name or trace.design_name or "design"

    stream.write("$date reproduced trace $end\n")
    stream.write("$version repro.sim VCD writer $end\n")
    stream.write(f"$timescale {timescale} $end\n")
    stream.write(f"$scope module {scope} $end\n")
    for name in trace.signals:
        stream.write(f"$var wire {widths[name]} {identifiers[name]} {name} $end\n")
    stream.write("$upscope $end\n")
    stream.write("$enddefinitions $end\n")

    previous: Dict[str, int] = {}
    for cycle in range(trace.num_cycles):
        stream.write(f"#{cycle * 10}\n")
        for name in trace.signals:
            value = trace.value(name, cycle)
            if cycle and previous.get(name) == value:
                continue
            previous[name] = value
            if widths[name] == 1:
                stream.write(f"{value & 1}{identifiers[name]}\n")
            else:
                stream.write(f"b{value:b} {identifiers[name]}\n")


def dump_vcd(trace: Trace, path: str, model: Optional[RtlModel] = None) -> None:
    """Write ``trace`` to the file at ``path``."""
    with open(path, "w", encoding="utf-8") as stream:
        write_vcd(trace, stream, model=model)
