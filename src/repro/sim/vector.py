"""Bit-packed, structure-of-arrays NumPy lowering of an elaborated RTL model.

This is the third evaluation backend ("vectorized").  Where the compiled
backend lowers each expression to a Python closure evaluated once per
(state, input) pair, this module lowers the *whole model* to NumPy array
kernels that advance an entire batch of environments at once:

* signal environments are columnar — ``{signal name: int64 ndarray}`` with
  one lane per (state, input) pair, random-simulation seed, or BFS frontier
  member;
* combinational settle and sequential clocking are masked array operations
  (an ``if``/``case`` arm executes under a boolean lane mask instead of a
  branch);
* states are bit-packed into single int64 lanes for set operations
  (reachability BFS, dedup, cache keys).

Semantics are bit-for-bit identical to the interpreted and compiled scalar
backends for every design the lowering accepts.  The plain structure-of-
arrays kernel refuses anything it cannot prove safe inside 63-bit signed
integer arithmetic (very wide signals, multiplies past 31 bits, ``**``);
:func:`plan_model` then tries the alternative representations — the
bit-sliced kernel of :mod:`repro.sim.bitslice` for control-dominated
boolean logic and the multi-limb kernel of :mod:`repro.sim.limb` for wide
datapaths — before giving up.  Only when every lowering strategy raises
:class:`UnsupportedForVectorization` does a design fall back to the
compiled backend, and the plan records the reason so the fallback is
observable instead of silent.  The scalar backends remain the reference
oracles throughout.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..hdl import ast
from ..hdl.elaborate import RtlModel
from .eval import EvalError, ExprEvaluator
from .simulator import CombinationalLoopError, _MAX_SETTLE_ITERATIONS
from .trace import Trace

#: Columnar environment: signal name -> int64 ndarray, one lane per element.
Cols = Dict[str, np.ndarray]
#: A vector expression kernel: columnar env in, int64 ndarray (or scalar) out.
VecKernel = Callable[[Cols], Union[np.ndarray, int]]

#: Every intermediate value must stay strictly below 2**63 (int64, one sign
#: bit spare).  Scalar semantics give arithmetic one bit of carry headroom,
#: so the practical per-signal width ceiling is 61 bits.
_MAX_VALUE_BITS = 62


class UnsupportedForVectorization(Exception):
    """The model (or one expression) cannot be lowered to int64 array ops."""


def _as_array(value: Union[np.ndarray, int], lanes: int) -> np.ndarray:
    """Broadcast a kernel result (possibly a Python int) to a lane array."""
    if isinstance(value, np.ndarray):
        return value
    return np.full(lanes, value, dtype=np.int64)


# ---------------------------------------------------------------------------
# Expression lowering
# ---------------------------------------------------------------------------


class VectorExprCompiler:
    """Compile ``ast.Expr`` trees to NumPy lane kernels.

    Kernels are cached per expression node (structural equality), mirroring
    :class:`~repro.sim.compile.CompiledEvaluator`.  Width inference and
    constant folding delegate to the interpreter, which defines the
    reference semantics.
    """

    def __init__(self, model: RtlModel):
        self._model = model
        self._interp = ExprEvaluator(model)
        self._signal_names = frozenset(model.signals)
        self._cache: Dict[ast.Expr, VecKernel] = {}

    @property
    def model(self) -> RtlModel:
        return self._model

    def width_of(self, expr: ast.Expr) -> int:
        return self._interp.width_of(expr)

    # -- value-range analysis -------------------------------------------------

    def value_bits(self, expr: ast.Expr) -> int:
        """Upper bound, in bits, of the scalar backend's value for ``expr``.

        The scalar backends mask every node's result, but arithmetic keeps
        carry/borrow headroom (``+``/``-`` produce width+1 bits, ``*``
        produces 2*width), so this can exceed :meth:`width_of`.
        """
        if not (expr.signals() & self._signal_names):
            return max(self._interp.eval(expr, {}).bit_length(), 1)
        if isinstance(expr, ast.Identifier):
            return self.width_of(expr)
        if isinstance(expr, ast.BitSelect):
            return 1
        if isinstance(expr, ast.PartSelect):
            return self.width_of(expr)
        if isinstance(expr, ast.Unary):
            if expr.op in ("!", "&", "|", "^"):
                return 1
            return self.width_of(expr.operand)
        if isinstance(expr, ast.Binary):
            op = expr.op
            if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">=", "&&", "||"):
                return 1
            width = max(self.width_of(expr.left), self.width_of(expr.right))
            if op in ("+", "-"):
                return width + 1
            if op == "*":
                return 2 * width
            if op in ("<<", "<<<"):
                return self.width_of(expr.left)
            if op in (">>", ">>>"):
                return min(self.value_bits(expr.left), _MAX_VALUE_BITS)
            if op == "&":
                return min(self.value_bits(expr.left), self.value_bits(expr.right))
            if op in ("|", "^"):
                return max(self.value_bits(expr.left), self.value_bits(expr.right))
            return width  # '/', '%', '**' are masked to the operand width
        if isinstance(expr, ast.Ternary):
            return max(self.value_bits(expr.then), self.value_bits(expr.otherwise))
        if isinstance(expr, ast.Concat):
            return sum(self.width_of(part) for part in expr.parts)
        if isinstance(expr, ast.Replicate):
            return self.width_of(expr)
        raise UnsupportedForVectorization(f"cannot bound value of {expr!r}")

    def _require_bits(self, bits: int, expr: ast.Expr) -> None:
        if bits > _MAX_VALUE_BITS:
            raise UnsupportedForVectorization(
                f"{expr!r} needs {bits} bits; int64 lanes hold {_MAX_VALUE_BITS}"
            )

    # -- representation hooks (family overlays) -------------------------------

    def _lift_result(self, value, lanes: int):
        """Broadcast a kernel result to the representation's full column form."""
        return _as_array(value, lanes)

    def _overlay(self, mask: np.ndarray, variant_value, golden_value, lanes: int):
        """Blend a variant's value over the golden value on masked lanes.

        ``mask`` is always a plain (lanes,) boolean array keyed off the
        member-id column, whatever the value representation.
        """
        return np.where(mask, self._lift_result(variant_value, lanes), golden_value)

    # -- compilation ----------------------------------------------------------

    def compile(self, expr: ast.Expr) -> VecKernel:
        kernel = self._cache.get(expr)
        if kernel is None:
            kernel = self._build(expr)
            self._cache[expr] = kernel
        return kernel

    def _build(self, expr: ast.Expr) -> VecKernel:
        if not (expr.signals() & self._signal_names):
            try:
                value = self._interp.eval(expr, {})
            except EvalError as exc:
                raise UnsupportedForVectorization(str(exc)) from exc
            self._require_bits(max(value.bit_length(), 1), expr)
            return lambda cols: value
        self._require_bits(self.value_bits(expr), expr)

        if isinstance(expr, ast.Identifier):
            name = expr.name
            if name not in self._model.signals:
                raise UnsupportedForVectorization(f"unknown signal {name!r}")
            return lambda cols: cols[name]
        if isinstance(expr, ast.BitSelect):
            return self._build_bit_select(expr)
        if isinstance(expr, ast.PartSelect):
            base = self.compile(expr.base)
            msb = self._interp.const_value(expr.msb)
            lsb = self._interp.const_value(expr.lsb)
            if msb < lsb:
                msb, lsb = lsb, msb
            mask = (1 << (msb - lsb + 1)) - 1
            lsb = min(lsb, 63)
            return lambda cols: (base(cols) >> lsb) & mask
        if isinstance(expr, ast.Unary):
            return self._build_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._build_binary(expr)
        if isinstance(expr, ast.Ternary):
            cond = self.compile(expr.cond)
            then = self.compile(expr.then)
            otherwise = self.compile(expr.otherwise)

            def ternary(cols: Cols) -> np.ndarray:
                return np.where(_as_bool(cond(cols)), then(cols), otherwise(cols))

            return ternary
        if isinstance(expr, ast.Concat):
            parts = [(self.compile(p), self.width_of(p)) for p in expr.parts]
            shifts: List[Tuple[VecKernel, int, int]] = []
            offset = sum(width for _, width in parts)
            for kernel, width in parts:
                offset -= width
                shifts.append((kernel, offset, (1 << width) - 1))
            shifts_t = tuple(shifts)

            def concat(cols: Cols) -> np.ndarray:
                value: Union[np.ndarray, int] = 0
                for kernel, shift, mask in shifts_t:
                    value = value | ((kernel(cols) & mask) << shift)
                return value

            return concat
        if isinstance(expr, ast.Replicate):
            count = self._interp.const_value(expr.count)
            width = self.width_of(expr.value)
            chunk = self.compile(expr.value)
            mask = (1 << width) - 1
            factor = ((1 << (width * count)) - 1) // mask if count and mask else 0
            return lambda cols: (chunk(cols) & mask) * factor
        raise UnsupportedForVectorization(f"cannot vector-lower {expr!r}")

    def _build_bit_select(self, expr: ast.BitSelect) -> VecKernel:
        base = self.compile(expr.base)
        if not (expr.index.signals() & self._signal_names):
            index = self._interp.eval(expr.index, {})
            if index < 0:
                raise EvalError(f"negative bit index {index}")
            index = min(index, 63)
            return lambda cols: (base(cols) >> index) & 1
        index_k = self.compile(expr.index)

        def bit_select(cols: Cols) -> np.ndarray:
            # Lane values are non-negative and < 2**63, so any shift >= 63
            # extracts a zero bit, matching the scalar backends.
            index = np.minimum(index_k(cols), 63)
            return (base(cols) >> index) & 1

        return bit_select

    def _build_unary(self, expr: ast.Unary) -> VecKernel:
        operand = self.compile(expr.operand)
        width = self.width_of(expr.operand)
        mask = (1 << width) - 1
        op = expr.op
        if op == "~":
            return lambda cols: ~operand(cols) & mask
        if op == "!":
            return lambda cols: _to_int(np.equal(operand(cols), 0))
        if op == "-":
            return lambda cols: -operand(cols) & mask
        if op == "&":
            return lambda cols: _to_int(np.equal(operand(cols), mask))
        if op == "|":
            return lambda cols: _to_int(np.not_equal(operand(cols), 0))
        if op == "^":
            if not hasattr(np, "bitwise_count"):
                # NumPy < 2.0 has no vectorized popcount; the compiled
                # scalar backend handles reduction-XOR instead.
                raise UnsupportedForVectorization(
                    "reduction '^' needs numpy>=2.0 (np.bitwise_count)"
                )
            return lambda cols: _to_int(
                np.bitwise_count(np.asarray(operand(cols), dtype=np.int64)) & 1
            )
        raise UnsupportedForVectorization(f"unsupported unary operator {op!r}")

    def _build_binary(self, expr: ast.Binary) -> VecKernel:
        op = expr.op
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        if op == "&&":
            return lambda cols: _to_int(_as_bool(left(cols)) & _as_bool(right(cols)))
        if op == "||":
            return lambda cols: _to_int(_as_bool(left(cols)) | _as_bool(right(cols)))
        width = max(self.width_of(expr.left), self.width_of(expr.right))
        mask = (1 << width) - 1
        carry_mask = (1 << (width + 1)) - 1
        if op in ("+", "-"):
            self._require_bits(
                max(self.value_bits(expr.left), self.value_bits(expr.right)) + 1, expr
            )
        if op == "*":
            self._require_bits(
                self.value_bits(expr.left) + self.value_bits(expr.right), expr
            )
            mul_mask = (1 << (2 * width)) - 1
            return lambda cols: (left(cols) * right(cols)) & mul_mask
        if op == "+":
            return lambda cols: (left(cols) + right(cols)) & carry_mask
        if op == "-":
            return lambda cols: (left(cols) - right(cols)) & carry_mask
        if op == "/":

            def div(cols: Cols) -> np.ndarray:
                l, r = left(cols), right(cols)
                safe = np.where(np.equal(r, 0), 1, r)
                return np.where(np.equal(r, 0), mask, (l // safe) & mask)

            return div
        if op == "%":

            def mod(cols: Cols) -> np.ndarray:
                l, r = left(cols), right(cols)
                safe = np.where(np.equal(r, 0), 1, r)
                return np.where(np.equal(r, 0), l & mask, (l % safe) & mask)

            return mod
        if op == "**":
            # Exponentiation wraps unpredictably in fixed-width lanes; keep
            # the scalar backends authoritative for it.
            raise UnsupportedForVectorization("'**' is not vector-lowered")
        if op in ("&", "|", "^"):
            fn = {"&": np.bitwise_and, "|": np.bitwise_or, "^": np.bitwise_xor}[op]
            return lambda cols: fn(left(cols), right(cols))
        if op in ("==", "==="):
            return lambda cols: _to_int(np.equal(left(cols), right(cols)))
        if op in ("!=", "!=="):
            return lambda cols: _to_int(np.not_equal(left(cols), right(cols)))
        if op in ("<", "<=", ">", ">="):
            fn = {
                "<": np.less, "<=": np.less_equal,
                ">": np.greater, ">=": np.greater_equal,
            }[op]
            return lambda cols: _to_int(fn(left(cols), right(cols)))
        if op in ("<<", "<<<", ">>", ">>>"):
            left_width = self.width_of(expr.left)
            # The *declared* width can exceed int64 lanes (e.g. a concat of
            # width-less constants defaults to 32 bits apiece) even when the
            # value-bits analysis proved the value itself fits; the lane
            # values stay below 2**62, so a 63-bit mask is exact and avoids
            # building a mask no int64 can hold.
            left_mask = (1 << min(left_width, 63)) - 1
            if op in (">>", ">>>"):

                def shr(cols: Cols) -> np.ndarray:
                    shift = np.minimum(right(cols), 63)
                    return (left(cols) >> shift) & left_mask

                return shr

            def shl(cols: Cols) -> np.ndarray:
                # Only bits that survive the final mask are shifted: masking
                # the operand with (left_mask >> s) first keeps the product
                # below 2**left_width, so int64 lanes never overflow.
                shift = np.minimum(right(cols), left_width)
                return (left(cols) & (left_mask >> shift)) << shift

            return shl
        raise UnsupportedForVectorization(f"unsupported binary operator {op!r}")


def _as_bool(value: Union[np.ndarray, int]) -> Union[np.ndarray, bool]:
    if isinstance(value, np.ndarray):
        return np.not_equal(value, 0)
    return value != 0


def _to_int(value: Union[np.ndarray, bool]) -> Union[np.ndarray, int]:
    if isinstance(value, np.ndarray):
        return value.astype(np.int64)
    return int(value)


# ---------------------------------------------------------------------------
# Statement lowering (masked execution)
# ---------------------------------------------------------------------------

#: A lane mask: boolean ndarray, or None meaning "all lanes".
Mask = Optional[np.ndarray]


def _and_mask(mask: Mask, cond: Union[np.ndarray, bool]) -> Union[np.ndarray, bool]:
    if mask is None:
        return cond
    if cond is True:
        return mask
    if cond is False:
        return False
    return mask & cond


def _mask_and(a, b):
    """AND two lane masks where either side may be a scalar Python bool.

    Scalar bools never mix bitwise with word-packed masks (``True & words``
    would pick only bit 0), so they are short-circuited symbolically.
    """
    if a is True:
        return b
    if b is True:
        return a
    if a is False or b is False:
        return False
    return a & b


def _mask_or(a, b):
    """OR two lane masks where either side may be a scalar Python bool."""
    if a is False:
        return b
    if b is False:
        return a
    if a is True or b is True:
        return True
    return a | b


def _mask_any(mask: Union[np.ndarray, bool]) -> bool:
    if isinstance(mask, np.ndarray):
        return bool(mask.any())
    return bool(mask)


class _NbSink:
    """Non-blocking staging area with per-lane written masks.

    Mirrors the scalar ``next_values`` dict: a name is "written" per lane,
    and reads used by bit/part-select stores fall back to the live (shadow)
    environment for unwritten lanes.
    """

    __slots__ = ("env", "values", "written")

    def __init__(self, env: Cols):
        self.env = env
        self.values: Cols = {}
        self.written: Dict[str, np.ndarray] = {}

    def current(self, name: str, lanes: int) -> np.ndarray:
        if name in self.values:
            return np.where(self.written[name], self.values[name], self.env[name])
        return self.env[name]

    def write(self, name: str, value: np.ndarray, mask: Mask, lanes: int) -> None:
        if mask is None:
            mask = np.ones(lanes, dtype=bool)
        if name in self.values:
            self.values[name] = np.where(mask, value, self.values[name])
            self.written[name] = self.written[name] | mask
        else:
            self.values[name] = np.where(mask, value, 0)
            self.written[name] = mask.copy()


#: A compiled statement: ``fn(env_cols, nb_sink, mask, lanes)``.  Blocking
#: assignments write into ``env_cols`` under ``mask``; non-blocking ones are
#: staged into ``nb_sink`` (which is an alias of ``env_cols`` for
#: combinational execution, matching the scalar executor).
VecStmtKernel = Callable[[Cols, "_NbSink", Mask, int], None]
#: A compiled store target: ``fn(value, env_cols, nb_or_none, mask, lanes)``.
VecStoreKernel = Callable[[np.ndarray, Cols, Optional[_NbSink], Mask, int], None]


class VectorStmtCompiler:
    """Compile procedural statement bodies to masked array kernels.

    The control-flow machinery is representation-agnostic: every place a
    value must become a lane mask (conditions, case-label matches, mask
    inversion) routes through an overridable hook, so the multi-limb and
    bit-plane compilers reuse the whole If/Case/Block scaffolding by
    overriding only the hooks and the store kernels.
    """

    def __init__(self, model: RtlModel, exprs: VectorExprCompiler):
        self._model = model
        self._exprs = exprs
        self._stmt_cache: Dict[int, Tuple[ast.Stmt, VecStmtKernel]] = {}

    # -- representation hooks --------------------------------------------------

    def _cond_mask(self, value, env: Cols):
        """Lane mask (or scalar bool) from a condition kernel's result."""
        return _as_bool(value)

    def _eq_mask(self, label_value, subject_value, env: Cols):
        """Lane mask where a case label equals the case subject."""
        return np.equal(label_value, subject_value)

    def _invert_mask(self, cond, env: Cols):
        """Complement of a lane mask within the valid lanes."""
        return _invert(cond)

    def _materialize_mask(self, mask, env: Cols, lanes: int) -> Mask:
        """Normalise a scalar-bool mask to the representation's mask type."""
        return _materialize(mask, lanes)

    def _lift(self, value, lanes: int):
        """Broadcast a kernel result to a full per-lane value column."""
        return _as_array(value, lanes)

    def compile_stmt(self, stmt: ast.Stmt) -> VecStmtKernel:
        cached = self._stmt_cache.get(id(stmt))
        if cached is not None:
            return cached[1]
        kernel = self._build_stmt(stmt)
        self._stmt_cache[id(stmt)] = (stmt, kernel)
        return kernel

    def _build_stmt(self, stmt: ast.Stmt) -> VecStmtKernel:
        if isinstance(stmt, ast.Block):
            kernels = tuple(self.compile_stmt(inner) for inner in stmt.statements)
            if len(kernels) == 1:
                return kernels[0]

            def block(env: Cols, nb: _NbSink, mask: Mask, lanes: int) -> None:
                for kernel in kernels:
                    kernel(env, nb, mask, lanes)

            return block
        if isinstance(stmt, ast.Assignment):
            value = self._exprs.compile(stmt.value)
            store = self._build_store(stmt.target, blocking=stmt.blocking)
            lift = self._lift

            def assign(env: Cols, nb: _NbSink, mask: Mask, lanes: int) -> None:
                store(lift(value(env), lanes), env, nb, mask, lanes)

            return assign
        if isinstance(stmt, ast.If):
            cond = self._exprs.compile(stmt.condition)
            then = self.compile_stmt(stmt.then_body)
            otherwise = (
                self.compile_stmt(stmt.else_body) if stmt.else_body is not None else None
            )
            cond_mask = self._cond_mask
            invert_mask = self._invert_mask
            materialize = self._materialize_mask

            def if_stmt(env: Cols, nb: _NbSink, mask: Mask, lanes: int) -> None:
                taken = cond_mask(cond(env), env)
                then_mask = _and_mask(mask, taken)
                if _mask_any(then_mask):
                    then(env, nb, materialize(then_mask, env, lanes), lanes)
                if otherwise is not None:
                    else_mask = _and_mask(mask, invert_mask(taken, env))
                    if _mask_any(else_mask):
                        otherwise(env, nb, materialize(else_mask, env, lanes), lanes)

            return if_stmt
        if isinstance(stmt, ast.Case):
            subject = self._exprs.compile(stmt.subject)
            arms = tuple(
                (
                    tuple(self._exprs.compile(label) for label in item.labels),
                    self.compile_stmt(item.body),
                )
                for item in stmt.items
            )
            default = self.compile_stmt(stmt.default) if stmt.default is not None else None
            eq_mask = self._eq_mask
            invert_mask = self._invert_mask
            materialize = self._materialize_mask

            def case(env: Cols, nb: _NbSink, mask: Mask, lanes: int) -> None:
                value = subject(env)
                unmatched: Union[np.ndarray, bool] = True
                for labels, body in arms:
                    hit: Union[np.ndarray, bool] = False
                    for label in labels:
                        hit = _mask_or(hit, eq_mask(label(env), value, env))
                    arm_mask = _and_mask(mask, _mask_and(unmatched, hit))
                    if _mask_any(arm_mask):
                        body(env, nb, materialize(arm_mask, env, lanes), lanes)
                    unmatched = _mask_and(unmatched, invert_mask(hit, env))
                if default is not None:
                    default_mask = _and_mask(mask, unmatched)
                    if _mask_any(default_mask):
                        default(env, nb, materialize(default_mask, env, lanes), lanes)

            return case
        raise UnsupportedForVectorization(f"unsupported statement {stmt!r}")

    # -- store targets --------------------------------------------------------

    def _build_store(self, target: ast.Expr, blocking: bool) -> VecStmtKernelStore:
        inner = self._build_store_kernel(target)
        if blocking:
            return lambda value, env, nb, mask, lanes: inner(value, env, None, mask, lanes)
        return lambda value, env, nb, mask, lanes: inner(value, env, nb, mask, lanes)

    def _build_store_kernel(self, target: ast.Expr) -> VecStoreKernel:
        if isinstance(target, ast.Identifier):
            name = target.name
            smask = self._model.signal(name).mask
            if smask.bit_length() > _MAX_VALUE_BITS:
                raise UnsupportedForVectorization(
                    f"signal {name!r} is wider than int64 lanes allow"
                )

            def store_ident(
                value: np.ndarray, env: Cols, nb: Optional[_NbSink], mask: Mask, lanes: int
            ) -> None:
                masked = value & smask
                if nb is None:
                    env[name] = masked if mask is None else np.where(mask, masked, env[name])
                else:
                    nb.write(name, masked, mask, lanes)

            return store_ident
        if isinstance(target, ast.BitSelect):
            name = self._target_name(target)
            smask = self._model.signal(name).mask
            index_k = self._exprs.compile(target.index)

            def store_bit(
                value: np.ndarray, env: Cols, nb: Optional[_NbSink], mask: Mask, lanes: int
            ) -> None:
                index = _as_array(index_k(env), lanes)
                # Indices past the lane width select a bit the final signal
                # mask would drop anyway; pin them to "no bit" exactly.
                bit = np.where(index > 62, 0, 1 << np.minimum(index, 62))
                current = env[name] if nb is None else nb.current(name, lanes)
                updated = np.where(_as_bool(value & 1), current | bit, current & ~bit) & smask
                if nb is None:
                    env[name] = updated if mask is None else np.where(mask, updated, env[name])
                else:
                    nb.write(name, updated, mask, lanes)

            return store_bit
        if isinstance(target, ast.PartSelect):
            name = self._target_name(target)
            smask = self._model.signal(name).mask
            msb_k = self._exprs.compile(target.msb)
            lsb_k = self._exprs.compile(target.lsb)

            def store_part(
                value: np.ndarray, env: Cols, nb: Optional[_NbSink], mask: Mask, lanes: int
            ) -> None:
                msb = _as_array(msb_k(env), lanes)
                lsb = _as_array(lsb_k(env), lanes)
                lo_raw = np.minimum(msb, lsb)
                hi = np.maximum(msb, lsb)
                lo = np.minimum(lo_raw, 62)
                width = np.minimum(hi - lo_raw + 1, 62 - lo)
                field = np.where(lo_raw > 62, 0, ((1 << width) - 1) << lo)
                current = env[name] if nb is None else nb.current(name, lanes)
                updated = ((current & ~field) | ((value << lo) & field)) & smask
                if nb is None:
                    env[name] = updated if mask is None else np.where(mask, updated, env[name])
                else:
                    nb.write(name, updated, mask, lanes)

            return store_part
        if isinstance(target, ast.Concat):
            parts: List[Tuple[VecStoreKernel, int, int]] = []
            offset = sum(self._exprs.width_of(part) for part in target.parts)
            for part in target.parts:
                width = self._exprs.width_of(part)
                offset -= width
                parts.append((self._build_store_kernel(part), offset, (1 << width) - 1))
            parts_t = tuple(parts)

            def store_concat(
                value: np.ndarray, env: Cols, nb: Optional[_NbSink], mask: Mask, lanes: int
            ) -> None:
                for store, shift, pmask in parts_t:
                    store((value >> shift) & pmask, env, nb, mask, lanes)

            return store_concat
        raise UnsupportedForVectorization(f"unsupported assignment target {target!r}")

    def _target_name(self, target: ast.Expr) -> str:
        base = target.base if isinstance(target, (ast.BitSelect, ast.PartSelect)) else target
        if isinstance(base, ast.Identifier):
            return base.name
        raise UnsupportedForVectorization(f"unsupported nested target {target!r}")


#: The masked-assignment adapter produced by ``_build_store``.
VecStmtKernelStore = Callable[[np.ndarray, Cols, _NbSink, Mask, int], None]


def _materialize(mask: Union[np.ndarray, bool], lanes: int) -> Mask:
    if isinstance(mask, np.ndarray):
        return mask
    return None if mask else np.zeros(lanes, dtype=bool)


def _invert(cond: Union[np.ndarray, bool]) -> Union[np.ndarray, bool]:
    if isinstance(cond, np.ndarray):
        return ~cond
    return not cond


# ---------------------------------------------------------------------------
# Bit packing
# ---------------------------------------------------------------------------


def pack_tuple(values: Sequence[int], widths: Sequence[int]) -> int:
    """Pack one value tuple into a single int (LSB-first fields)."""
    packed = 0
    shift = 0
    for value, width in zip(values, widths):
        packed |= (value & ((1 << width) - 1)) << shift
        shift += width
    return packed


def unpack_tuple(packed: int, widths: Sequence[int]) -> Tuple[int, ...]:
    """Inverse of :func:`pack_tuple`."""
    values = []
    shift = 0
    for width in widths:
        values.append((packed >> shift) & ((1 << width) - 1))
        shift += width
    return tuple(values)


def pack_columns(
    cols: Cols,
    names: Sequence[str],
    widths: Sequence[int],
    lanes: Optional[int] = None,
) -> np.ndarray:
    """Pack per-signal lane columns into one int64 lane per element.

    ``lanes`` sizes the result for a zero-field packing (a design with no
    state registers still has one — all-zero — packed state per lane).
    """
    packed: Union[np.ndarray, int] = 0
    shift = 0
    for name, width in zip(names, widths):
        packed = packed | ((cols[name] & ((1 << width) - 1)) << shift)
        shift += width
    if not isinstance(packed, np.ndarray):  # no fields: zero-dim state space
        if lanes is None:
            lanes = len(next(iter(cols.values()))) if cols else 0
        return np.zeros(lanes, dtype=np.int64)
    return packed


def unpack_columns(
    packed: np.ndarray, names: Sequence[str], widths: Sequence[int]
) -> Cols:
    """Inverse of :func:`pack_columns`."""
    cols: Cols = {}
    shift = 0
    for name, width in zip(names, widths):
        cols[name] = (packed >> shift) & ((1 << width) - 1)
        shift += width
    return cols


# ---------------------------------------------------------------------------
# The model kernel
# ---------------------------------------------------------------------------


class VectorKernel:
    """Structure-of-arrays kernel for one elaborated model.

    Construction raises :class:`UnsupportedForVectorization` when any part
    of the model cannot be lowered; callers treat that as "use the compiled
    scalar backend instead".
    """

    backend = "vectorized"
    #: Which lowering representation this kernel implements; the planner and
    #: the stats plumbing report it per design.
    plan_name = "soa"

    def __init__(self, model: RtlModel):
        self._model = model
        self.exprs = self._make_expr_compiler(model)
        self._stmts = self._make_stmt_compiler(model, self.exprs)

        assigns = tuple(
            (self.exprs.compile(assign.value), self._stmts._build_store_kernel(assign.target))
            for assign in model.assigns
        )
        comb = tuple(self._stmts.compile_stmt(process.body) for process in model.comb_processes)
        self._assigns = assigns
        self._comb = comb
        settle_targets = [assign.target_name for assign in model.assigns]
        for process in model.comb_processes:
            settle_targets.extend(process.targets)
        self._settle_targets = tuple(dict.fromkeys(settle_targets))
        self._seq = tuple(
            (self._stmts.compile_stmt(process.body), tuple(sorted(process.targets)))
            for process in model.seq_processes
        )

        self.state_names: Tuple[str, ...] = tuple(model.state_regs)
        self.state_widths: Tuple[int, ...] = tuple(
            model.signals[name].width for name in self.state_names
        )
        self.input_names: Tuple[str, ...] = tuple(model.non_clock_inputs)
        self.input_widths: Tuple[int, ...] = tuple(
            model.signals[name].width for name in self.input_names
        )
        #: Whether whole states / input valuations fit one packed int64 lane.
        #: Unpackable kernels still batch settles and traces; only the
        #: packed-set machinery (BFS frontiers, dense transition tables,
        #: exhaustive sweeps) requires ``packable``.
        self.packable = (
            sum(self.state_widths) <= _MAX_VALUE_BITS
            and sum(self.input_widths) <= _MAX_VALUE_BITS
        )
        self._check_widths(model)

    def _make_expr_compiler(self, model: RtlModel) -> VectorExprCompiler:
        return VectorExprCompiler(model)

    def _make_stmt_compiler(
        self, model: RtlModel, exprs: VectorExprCompiler
    ) -> VectorStmtCompiler:
        return VectorStmtCompiler(model, exprs)

    def _check_widths(self, model: RtlModel) -> None:
        """Reject signals the representation cannot hold (SoA: > int64)."""
        for name, signal in model.signals.items():
            if signal.width > _MAX_VALUE_BITS:
                raise UnsupportedForVectorization(
                    f"signal {name!r} ({signal.width} bits) exceeds int64 lanes"
                )

    @property
    def model(self) -> RtlModel:
        return self._model

    # -- packing --------------------------------------------------------------

    def pack_state(self, state: Sequence[int]) -> int:
        """Pack one register-value tuple into a single int lane."""
        return pack_tuple(state, self.state_widths)

    def unpack_state(self, packed: int) -> Tuple[int, ...]:
        return unpack_tuple(packed, self.state_widths)

    def pack_input_grid(self, grid: Sequence[Sequence[int]]) -> np.ndarray:
        """Pack an input-valuation grid into one int64 lane per valuation."""
        return np.asarray(
            [pack_tuple(combo, self.input_widths) for combo in grid], dtype=np.int64
        )

    # -- environments ---------------------------------------------------------

    def blank_env(self, lanes: int) -> Cols:
        """All-signal columnar environment initialised to zero."""
        return {name: np.zeros(lanes, dtype=np.int64) for name in self._model.signals}

    def initial_env(self, lanes: int) -> Cols:
        """Reset-state environment: zeros plus declared initial values."""
        cols = self.blank_env(lanes)
        for name, value in self._model.initial_values.items():
            signal = self._model.signals[name]
            cols[name] = np.full(lanes, value & signal.mask, dtype=np.int64)
        return cols

    def env_row(self, cols: Cols, lane: int, names: Optional[Sequence[str]] = None) -> Dict[str, int]:
        """Materialise one lane as a scalar ``{signal: int}`` environment."""
        keys = names if names is not None else cols.keys()
        return {name: int(cols[name][lane]) for name in keys}

    # -- representation hooks -------------------------------------------------

    def env_lanes(self, cols: Cols) -> int:
        """Number of lanes in a columnar environment."""
        if not cols:
            return 0
        return int(next(iter(cols.values())).shape[-1])

    def lift_state(self, name: str, column) -> np.ndarray:
        """Convert an external state column (ints) to representation form."""
        return np.asarray(column, dtype=np.int64)

    def lift_input(self, name: str, column, lanes: int) -> np.ndarray:
        """Convert and mask an external input column to representation form."""
        mask = self._model.signals[name].mask
        return np.asarray(column, dtype=np.int64) & mask

    def bool_lanes(self, value, lanes: int) -> np.ndarray:
        """Truthiness of a compiled expression kernel's result per lane."""
        return _as_array(value, lanes) != 0

    def column_values(self, env: Cols, name: str) -> List[int]:
        """One signal column as a list of Python ints (arbitrary precision)."""
        return env[name].tolist()

    def _make_nb_sink(self, env: Cols) -> "_NbSink":
        return _NbSink(env)

    def _make_alias_sink(self, cols: Cols) -> "_NbSink":
        return _EnvAliasSink(cols)

    def _pack_next(self, next_cols: Cols, lanes: int) -> np.ndarray:
        """Pack next-state columns into int64 lanes (requires ``packable``)."""
        return pack_columns(next_cols, self.state_names, self.state_widths, lanes)

    # -- combinational settle -------------------------------------------------

    def settle(self, cols: Cols, max_iterations: int = _MAX_SETTLE_ITERATIONS) -> bool:
        """Settle every lane in place; True when a fixpoint was reached.

        All lanes start together and the pass is idempotent at a fixpoint,
        so running already-settled lanes for another iteration cannot change
        them — per-lane convergence tracking is unnecessary.
        """
        targets = self._settle_targets
        lanes = self.env_lanes(cols)
        for _ in range(max_iterations):
            before = [cols[name] for name in targets]
            self._comb_pass(cols, lanes)
            if all(
                prev is cols[name] or np.array_equal(prev, cols[name])
                for prev, name in zip(before, targets)
            ):
                return True
        return False

    def _comb_pass(self, cols: Cols, lanes: int) -> None:
        lift = self._stmts._lift
        for value, store in self._assigns:
            store(lift(value(cols), lanes), cols, None, None, lanes)
        if self._comb:
            sink = self._make_alias_sink(cols)
            for process in self._comb:
                process(cols, sink, None, lanes)

    # -- sequential clocking --------------------------------------------------

    def next_state_columns(self, env: Cols, lanes: int) -> Cols:
        """Post-clock register columns for an already-settled environment.

        Mirrors ``TransitionSystem._compute_step``: every sequential process
        runs over a blocking shadow, non-blocking writes are staged with
        per-lane written masks, and unwritten lanes keep their old register
        values.
        """
        nb = self._make_nb_sink(env)
        for body, targets in self._seq:
            shadow = dict(env)
            nb.env = shadow
            body(shadow, nb, None, lanes)
            for name in targets:
                if shadow[name] is env[name]:
                    continue
                changed = np.not_equal(shadow[name], env[name])
                if name in nb.written:
                    changed = changed & ~nb.written[name]
                if changed.any():
                    nb.write(name, shadow[name], changed, lanes)
        nb.env = env
        out: Cols = {}
        for name in self.state_names:
            if name in nb.values:
                out[name] = np.where(nb.written[name], nb.values[name], env[name])
            else:
                out[name] = env[name]
        return out

    # -- the batched transition -----------------------------------------------

    def step_batch(
        self, state_cols: Cols, input_cols: Cols, lanes: int
    ) -> Tuple[Cols, Cols]:
        """Advance a batch of (state, input) lanes by one clock.

        Returns ``(env_cols, next_state_cols)`` where ``env_cols`` is the
        settled pre-clock environment (identical to
        :meth:`~repro.fpv.transition.TransitionSystem.settle`) and
        ``next_state_cols`` holds the post-clock register columns.
        """
        env = self.blank_env(lanes)
        for name in self.state_names:
            env[name] = self.lift_state(name, state_cols[name])
        for name in self.input_names:
            column = input_cols.get(name)
            if column is None:
                continue  # absent inputs stay 0, like the scalar step
            env[name] = self.lift_input(name, column, lanes)
        # Clocks are already zero in a blank environment.
        self.settle(env)
        return env, self.next_state_columns(env, lanes)

    def step_packed(
        self, packed_states: np.ndarray, packed_inputs: np.ndarray
    ) -> Tuple[Cols, np.ndarray]:
        """`step_batch` over bit-packed state/input lanes."""
        lanes = len(packed_states)
        env, next_cols = self.step_batch(
            unpack_columns(packed_states, self.state_names, self.state_widths),
            unpack_columns(packed_inputs, self.input_names, self.input_widths),
            lanes,
        )
        return env, self._pack_next(next_cols, lanes)


class _EnvAliasSink(_NbSink):
    """Non-blocking sink that writes straight into the environment.

    Combinational execution treats non-blocking assignments like blocking
    ones (the scalar executor passes ``env`` as both sinks).
    """

    def __init__(self, env: Cols):
        super().__init__(env)

    def current(self, name: str, lanes: int) -> np.ndarray:
        return self.env[name]

    def write(self, name: str, value: np.ndarray, mask: Mask, lanes: int) -> None:
        self.env[name] = value if mask is None else np.where(mask, value, self.env[name])


# ---------------------------------------------------------------------------
# The lowering planner
# ---------------------------------------------------------------------------

#: Plan identifiers (also the values accepted by ``REPRO_VECTOR_PLAN``).
PLAN_SOA = "soa"
PLAN_BITSLICED = "bitsliced"
PLAN_MULTILIMB = "multilimb"
PLAN_FALLBACK = "fallback"


@dataclass
class LoweringPlan:
    """Outcome of :func:`plan_model` for one design.

    ``plan`` names the representation chosen (or :data:`PLAN_FALLBACK` when
    every strategy refused the design, in which case ``kernel`` is ``None``
    and ``reason`` explains why).  ``attempts`` records the failure reason of
    every strategy that was tried and refused, including for successful
    plans (e.g. SoA's refusal when multi-limb ends up chosen).
    """

    plan: str
    kernel: Optional[VectorKernel]
    reason: str = ""
    attempts: Dict[str, str] = field(default_factory=dict)


def _build_soa(model: RtlModel) -> VectorKernel:
    return VectorKernel(model)


def _build_bitsliced(model: RtlModel) -> VectorKernel:
    from .bitslice import BitSlicedKernel

    return BitSlicedKernel(model)


def _build_multilimb(model: RtlModel) -> VectorKernel:
    from .limb import MultiLimbKernel

    return MultiLimbKernel(model)


_PLAN_BUILDERS: Dict[str, Callable[[RtlModel], VectorKernel]] = {
    PLAN_SOA: _build_soa,
    PLAN_BITSLICED: _build_bitsliced,
    PLAN_MULTILIMB: _build_multilimb,
}


def plan_model(model: RtlModel) -> LoweringPlan:
    """Choose and build the best vector lowering for one design.

    Strategy order: the bit-sliced kernel when the design's signal-width
    histogram and state-space size predict a win (see
    :func:`repro.sim.bitslice.bitslice_profitable`), then the plain SoA-int64
    kernel, then the multi-limb kernel for designs SoA refuses (wide signals,
    wide intermediates, ``**``).  ``REPRO_VECTOR_PLAN`` forces a single named
    strategy (mainly for equivalence tests).
    """
    forced = os.environ.get("REPRO_VECTOR_PLAN")
    if forced:
        if forced == PLAN_FALLBACK:
            return LoweringPlan(plan=PLAN_FALLBACK, kernel=None, reason="forced by env")
        if forced not in _PLAN_BUILDERS:
            raise ValueError(f"unknown REPRO_VECTOR_PLAN {forced!r}")
        order = [forced]
    else:
        from .bitslice import bitslice_profitable

        order = []
        if bitslice_profitable(model):
            order.append(PLAN_BITSLICED)
        order.extend((PLAN_SOA, PLAN_MULTILIMB))
    attempts: Dict[str, str] = {}
    for plan in order:
        try:
            kernel = _PLAN_BUILDERS[plan](model)
        except (UnsupportedForVectorization, EvalError) as exc:
            attempts[plan] = str(exc)
            continue
        return LoweringPlan(plan=plan, kernel=kernel, attempts=attempts)
    reason = "; ".join(f"{plan}: {message}" for plan, message in attempts.items())
    return LoweringPlan(plan=PLAN_FALLBACK, kernel=None, reason=reason, attempts=attempts)


def lower_model(model: RtlModel) -> Optional[VectorKernel]:
    """Lower ``model`` to the planner's chosen kernel, or ``None``."""
    return plan_model(model).kernel


# ---------------------------------------------------------------------------
# Family lowering: one kernel for a design and all of its mutants
# ---------------------------------------------------------------------------

#: Reserved lane column selecting the family member evaluated on that lane
#: (0 = the golden design, ``i + 1`` = the i-th accepted mutant).
MUTANT_COLUMN = "__mutant__"

#: Lane id of the golden design inside a family kernel.
GOLDEN_MEMBER = 0


class _FamilyExprCompiler(VectorExprCompiler):
    """Expression compiler with per-lane member selection at mutation sites.

    ``patches`` maps the object identity of a golden expression slot to the
    variant expressions of individual family members.  At a patched slot the
    compiled kernel evaluates the golden expression for every lane, then
    overlays each member's variant on the lanes carrying that member id (the
    ``MUTANT_COLUMN`` environment column).  Everywhere else compilation is
    the ordinary structurally-cached golden lowering, so members share every
    unmutated kernel.

    A variant that cannot be lowered rejects only its member: the patch is
    dropped, the member lands in ``rejected``, and the caller falls back to
    the per-mutant compiled path for it.
    """

    def __init__(self, model: RtlModel, patches: Dict[int, Dict[int, ast.Expr]],
                 rejected: Dict[int, str]):
        super().__init__(model)
        self._patches = patches
        self._rejected = rejected
        self._family_cache: Dict[int, VecKernel] = {}
        self._plain_depth = 0

    def compile(self, expr: ast.Expr) -> VecKernel:
        if self._plain_depth:
            # Variant compilation: a variant may *contain* its own slot node
            # (e.g. negate-cond wraps the golden condition in place), and
            # there it means "the golden expression", never the selector —
            # intercepting would recurse forever.
            return super().compile(expr)
        variants = self._patches.get(id(expr))
        if variants is None:
            return super().compile(expr)
        kernel = self._family_cache.get(id(expr))
        if kernel is None:
            kernel = self._build_family(expr, variants)
            self._family_cache[id(expr)] = kernel
        return kernel

    def _build_family(self, expr: ast.Expr, variants: Dict[int, ast.Expr]) -> VecKernel:
        self._plain_depth += 1
        try:
            golden = super().compile(expr)
            pairs = []
            for member, variant in sorted(variants.items()):
                if member in self._rejected:
                    continue
                try:
                    pairs.append((member, super().compile(variant)))
                except (UnsupportedForVectorization, EvalError) as exc:
                    self._rejected[member] = str(exc)
        finally:
            self._plain_depth -= 1
        if not pairs:
            return golden
        pairs_t = tuple(pairs)
        lift = self._lift_result
        overlay = self._overlay

        def family(cols: Cols) -> np.ndarray:
            members = cols[MUTANT_COLUMN]
            lanes = len(members)
            value = lift(golden(cols), lanes)
            for member, variant in pairs_t:
                mask = np.equal(members, member)
                if mask.any():
                    value = overlay(mask, variant(cols), value, lanes)
            return value

        return family


class _StructureMismatch(Exception):
    """Golden and mutant models do not share one AST skeleton."""


def _diff_exprs(golden: ast.Expr, mutant: ast.Expr, diffs: List) -> None:
    if golden != mutant:
        diffs.append((golden, mutant))


def _diff_stmts(golden: ast.Stmt, mutant: ast.Stmt, diffs: List) -> None:
    """Zip-walk two statement trees, collecting differing expression slots.

    Raises :class:`_StructureMismatch` when the trees differ in anything but
    expression content (statement kinds, nesting, targets, blocking-ness) —
    a mutant shaped like that cannot ride the golden skeleton.
    """
    if type(golden) is not type(mutant):
        raise _StructureMismatch()
    if isinstance(golden, ast.Block):
        if len(golden.statements) != len(mutant.statements):
            raise _StructureMismatch()
        for inner_g, inner_m in zip(golden.statements, mutant.statements):
            _diff_stmts(inner_g, inner_m, diffs)
    elif isinstance(golden, ast.Assignment):
        if golden.blocking != mutant.blocking or golden.target != mutant.target:
            raise _StructureMismatch()
        _diff_exprs(golden.value, mutant.value, diffs)
    elif isinstance(golden, ast.If):
        _diff_exprs(golden.condition, mutant.condition, diffs)
        _diff_stmts(golden.then_body, mutant.then_body, diffs)
        if (golden.else_body is None) != (mutant.else_body is None):
            raise _StructureMismatch()
        if golden.else_body is not None:
            _diff_stmts(golden.else_body, mutant.else_body, diffs)
    elif isinstance(golden, ast.Case):
        _diff_exprs(golden.subject, mutant.subject, diffs)
        if len(golden.items) != len(mutant.items):
            raise _StructureMismatch()
        for item_g, item_m in zip(golden.items, mutant.items):
            if len(item_g.labels) != len(item_m.labels):
                raise _StructureMismatch()
            for label_g, label_m in zip(item_g.labels, item_m.labels):
                _diff_exprs(label_g, label_m, diffs)
            _diff_stmts(item_g.body, item_m.body, diffs)
        if (golden.default is None) != (mutant.default is None):
            raise _StructureMismatch()
        if golden.default is not None:
            _diff_stmts(golden.default, mutant.default, diffs)
    else:
        raise _StructureMismatch()


def _diff_models(golden: RtlModel, mutant: RtlModel) -> List:
    """Expression slots where ``mutant`` departs from the golden skeleton.

    Returns ``[(golden slot node, variant expression), ...]`` or raises
    :class:`_StructureMismatch`.  Everything that shapes the kernel outside
    expression content — signals, widths, state ordering, initial values,
    process structure, clocking — must match exactly.
    """
    diffs: List = []
    if (
        [(s.name, s.width, s.kind, s.is_state) for s in golden.signals.values()]
        != [(s.name, s.width, s.kind, s.is_state) for s in mutant.signals.values()]
        or golden.parameters != mutant.parameters
        or golden.inputs != mutant.inputs
        or golden.outputs != mutant.outputs
        or golden.state_regs != mutant.state_regs
        or golden.initial_values != mutant.initial_values
        or golden.clocks != mutant.clocks
        or golden.resets != mutant.resets
        or len(golden.assigns) != len(mutant.assigns)
        or len(golden.comb_processes) != len(mutant.comb_processes)
        or len(golden.seq_processes) != len(mutant.seq_processes)
    ):
        raise _StructureMismatch()
    for assign_g, assign_m in zip(golden.assigns, mutant.assigns):
        if assign_g.target != assign_m.target or assign_g.target_name != assign_m.target_name:
            raise _StructureMismatch()
        _diff_exprs(assign_g.value, assign_m.value, diffs)
    for comb_g, comb_m in zip(golden.comb_processes, mutant.comb_processes):
        if comb_g.targets != comb_m.targets:
            raise _StructureMismatch()
        _diff_stmts(comb_g.body, comb_m.body, diffs)
    for seq_g, seq_m in zip(golden.seq_processes, mutant.seq_processes):
        if (
            seq_g.clock != seq_m.clock
            or seq_g.clock_edge != seq_m.clock_edge
            or seq_g.async_resets != seq_m.async_resets
            or seq_g.targets != seq_m.targets
        ):
            raise _StructureMismatch()
        _diff_stmts(seq_g.body, seq_m.body, diffs)
    return diffs


def _collect_expr_ids(expr: ast.Expr, counts: Dict[int, int]) -> None:
    counts[id(expr)] = counts.get(id(expr), 0) + 1
    if isinstance(expr, ast.Unary):
        _collect_expr_ids(expr.operand, counts)
    elif isinstance(expr, ast.Binary):
        _collect_expr_ids(expr.left, counts)
        _collect_expr_ids(expr.right, counts)
    elif isinstance(expr, ast.Ternary):
        _collect_expr_ids(expr.cond, counts)
        _collect_expr_ids(expr.then, counts)
        _collect_expr_ids(expr.otherwise, counts)
    elif isinstance(expr, ast.BitSelect):
        _collect_expr_ids(expr.base, counts)
        _collect_expr_ids(expr.index, counts)
    elif isinstance(expr, ast.PartSelect):
        _collect_expr_ids(expr.base, counts)
        _collect_expr_ids(expr.msb, counts)
        _collect_expr_ids(expr.lsb, counts)
    elif isinstance(expr, ast.Concat):
        for part in expr.parts:
            _collect_expr_ids(part, counts)
    elif isinstance(expr, ast.Replicate):
        _collect_expr_ids(expr.count, counts)
        _collect_expr_ids(expr.value, counts)


def _collect_stmt_expr_ids(stmt: ast.Stmt, counts: Dict[int, int]) -> None:
    if isinstance(stmt, ast.Block):
        for inner in stmt.statements:
            _collect_stmt_expr_ids(inner, counts)
    elif isinstance(stmt, ast.Assignment):
        _collect_expr_ids(stmt.target, counts)
        _collect_expr_ids(stmt.value, counts)
    elif isinstance(stmt, ast.If):
        _collect_expr_ids(stmt.condition, counts)
        _collect_stmt_expr_ids(stmt.then_body, counts)
        if stmt.else_body is not None:
            _collect_stmt_expr_ids(stmt.else_body, counts)
    elif isinstance(stmt, ast.Case):
        _collect_expr_ids(stmt.subject, counts)
        for item in stmt.items:
            for label in item.labels:
                _collect_expr_ids(label, counts)
            _collect_stmt_expr_ids(item.body, counts)
        if stmt.default is not None:
            _collect_stmt_expr_ids(stmt.default, counts)


def _model_expr_id_counts(model: RtlModel) -> Dict[int, int]:
    """Occurrence counts of every expression node object in the model.

    A golden slot node that is shared (the same object reachable from two
    positions) cannot be patched by identity — selecting the variant at one
    occurrence would silently select it at the other too.
    """
    counts: Dict[int, int] = {}
    for assign in model.assigns:
        _collect_expr_ids(assign.target, counts)
        _collect_expr_ids(assign.value, counts)
    for process in model.comb_processes:
        _collect_stmt_expr_ids(process.body, counts)
    for process in model.seq_processes:
        _collect_stmt_expr_ids(process.body, counts)
    return counts


class _FamilyMixin:
    """Family-member machinery, independent of the value representation.

    Mixed in front of a concrete kernel class (``FamilyKernel`` for SoA,
    ``MultiLimbFamilyKernel`` for limbs): the :data:`MUTANT_COLUMN` member-id
    column is always a plain 1-D int64 array, whatever shape the signal
    columns take, and all lifting/extraction goes through the kernel's
    representation hooks.
    """

    def __init__(self, model: RtlModel, patches: Dict[int, Dict[int, ast.Expr]],
                 rejected: Dict[int, str]):
        self._patches = patches
        self._rejected_members = rejected
        super().__init__(model)

    def _make_expr_compiler(self, model: RtlModel) -> VectorExprCompiler:
        return _FamilyExprCompiler(model, self._patches, self._rejected_members)

    # -- family environments ----------------------------------------------------

    def family_step_batch(
        self,
        members: np.ndarray,
        state_cols: Cols,
        input_cols: Cols,
        lanes: int,
    ) -> Tuple[Cols, Cols]:
        """:meth:`step_batch` with a per-lane family-member id column."""
        env = self.blank_env(lanes)
        env[MUTANT_COLUMN] = np.asarray(members, dtype=np.int64)
        for name in self.state_names:
            env[name] = self.lift_state(name, state_cols[name])
        for name in self.input_names:
            column = input_cols.get(name)
            if column is None:
                continue
            env[name] = self.lift_input(name, column, lanes)
        self.settle(env)
        return env, self.next_state_columns(env, lanes)

    def family_step_packed(
        self,
        members: np.ndarray,
        packed_states: np.ndarray,
        packed_inputs: np.ndarray,
    ) -> Tuple[Cols, np.ndarray]:
        """`family_step_batch` over bit-packed state/input lanes."""
        lanes = len(packed_states)
        env, next_cols = self.family_step_batch(
            members,
            unpack_columns(packed_states, self.state_names, self.state_widths),
            unpack_columns(packed_inputs, self.input_names, self.input_widths),
            lanes,
        )
        return env, self._pack_next(next_cols, lanes)

    def family_simulate(
        self, members: Sequence[int], stimuli: Sequence, cycles: int
    ) -> List[List[Trace]]:
        """One trace per (family member, stimulus), stepped as one batch.

        Lanes are member-major: all of member ``members[0]``'s stimuli, then
        the next member's.  Each lane is bit-for-bit the trace the scalar
        simulator would record for that member's design alone.
        """
        from .stimulus import stack_stimuli

        model = self._model
        signal_names = list(model.signals)
        num_stimuli = len(stimuli)
        lanes = len(members) * num_stimuli
        stacked = stack_stimuli(stimuli, model, cycles)  # (cycles, stimuli)
        member_col = np.repeat(np.asarray(list(members), dtype=np.int64), num_stimuli)

        env = self.initial_env(lanes)
        env[MUTANT_COLUMN] = member_col
        if not self.settle(env):
            raise CombinationalLoopError(
                f"combinational logic of {model.name!r} did not settle"
            )
        columns: Dict[str, List[List[int]]] = {name: [] for name in signal_names}
        sequential = bool(model.seq_processes)
        for cycle in range(cycles):
            for name in model.non_clock_inputs:
                env[name] = self.lift_input(
                    name, np.tile(stacked[name][cycle], len(members)), lanes
                )
            if not self.settle(env):
                raise CombinationalLoopError(
                    f"combinational logic of {model.name!r} did not settle"
                )
            for name in signal_names:
                columns[name].append(self.column_values(env, name))
            if sequential:
                next_cols = self.next_state_columns(env, lanes)
                env.update(next_cols)
                if not self.settle(env):
                    raise CombinationalLoopError(
                        f"combinational logic of {model.name!r} did not settle"
                    )
        traces: List[List[Trace]] = []
        for position in range(len(members)):
            member_traces = []
            for stimulus_index in range(num_stimuli):
                lane = position * num_stimuli + stimulus_index
                trace = Trace(signals=list(signal_names), design_name=model.name)
                for name in signal_names:
                    trace.data[name] = [row[lane] for row in columns[name]]
                member_traces.append(trace)
            traces.append(member_traces)
        return traces


class FamilyKernel(_FamilyMixin, VectorKernel):
    """A :class:`VectorKernel` over a golden model plus mutation-site patches.

    Lanes carry a member id in the :data:`MUTANT_COLUMN` environment column;
    every compiled expression kernel resolves patched slots per lane, so one
    ``step`` advances an arbitrary mix of family members.  Member 0 is the
    golden design and is bit-identical to ``VectorKernel(golden_model)``.
    """


@dataclass
class FamilyLowering:
    """Result of :func:`lower_family`.

    ``member_ids[i]`` is the lane id of the i-th mutant inside the kernel, or
    ``None`` when that mutant could not join the family (structure mismatch,
    un-lowerable variant expression, shared slot node) and must run on the
    per-mutant fallback path; ``rejected`` carries the reasons.
    """

    kernel: "FamilyKernel"
    member_ids: List[Optional[int]]
    rejected: Dict[int, str]
    plan: str = PLAN_SOA

    def accepted(self) -> List[int]:
        """Positions of the mutants the family kernel covers."""
        return [i for i, member in enumerate(self.member_ids) if member is not None]


def _build_multilimb_family(
    model: RtlModel, patches: Dict[int, Dict[int, ast.Expr]], rejected: Dict[int, str]
):
    from .limb import MultiLimbFamilyKernel

    return MultiLimbFamilyKernel(model, patches, rejected)


def lower_family(
    golden: RtlModel, mutants: Sequence[RtlModel]
) -> Optional[FamilyLowering]:
    """Lower a golden model and its mutants into one :class:`FamilyKernel`.

    The SoA family kernel is tried first; when the golden model itself is
    beyond int64 lanes (wide signals, ``**``), the multi-limb family kernel
    takes over so mutant families of wide designs stay batched.  Each attempt
    starts from a fresh rejected-member map: a variant rejection specific to
    one representation (e.g. a variant overflowing int64) must not leak into
    the next.  Returns ``None`` only when no representation can lower the
    golden model.  Individual mutants that cannot share the skeleton are
    rejected, not fatal.
    """
    patches: Dict[int, Dict[int, ast.Expr]] = {}
    base_rejected: Dict[int, str] = {}
    id_counts = _model_expr_id_counts(golden)
    for position, mutant in enumerate(mutants):
        member = position + 1
        try:
            diffs = _diff_models(golden, mutant)
        except _StructureMismatch:
            base_rejected[member] = "mutant does not share the golden AST skeleton"
            continue
        if any(id_counts.get(id(slot), 0) != 1 for slot, _ in diffs):
            base_rejected[member] = "mutated slot node is shared within the golden model"
            continue
        for slot, variant in diffs:
            patches.setdefault(id(slot), {})[member] = variant
    builders = ((PLAN_SOA, FamilyKernel), (PLAN_MULTILIMB, _build_multilimb_family))
    for plan, builder in builders:
        rejected = dict(base_rejected)
        try:
            kernel = builder(golden, patches, rejected)
        except (UnsupportedForVectorization, EvalError):
            continue
        member_ids: List[Optional[int]] = [
            None if (i + 1) in rejected else (i + 1) for i in range(len(mutants))
        ]
        return FamilyLowering(
            kernel=kernel, member_ids=member_ids, rejected=rejected, plan=plan
        )
    return None


# ---------------------------------------------------------------------------
# Batched simulation (falsification traces)
# ---------------------------------------------------------------------------


def comb_cycle_independent(model: RtlModel) -> bool:
    """True when every simulated cycle's settled values depend only on that
    cycle's inputs.

    Holds for purely combinational designs whose logic is an acyclic network
    of continuous assignments: no registers, no ``always @(*)`` blocks
    (incomplete assignment inside one latches state across settles), and no
    assign feeding back into itself.  Such designs can settle every
    (stimulus, cycle) pair as one flat batch.
    """
    if model.seq_processes or model.comb_processes:
        return False
    supports: Dict[str, set] = {}
    for assign in model.assigns:
        supports.setdefault(assign.target_name, set()).update(assign.supports)
    visiting: Dict[str, int] = {}  # 1 = on stack, 2 = done

    def acyclic(name: str) -> bool:
        state = visiting.get(name)
        if state == 2:
            return True
        if state == 1:
            return False
        visiting[name] = 1
        for dep in supports.get(name, ()):
            if dep in supports and not acyclic(dep):
                return False
        visiting[name] = 2
        return True

    return all(acyclic(name) for name in supports)


def simulate_batch(
    model: RtlModel,
    stimuli: Sequence,
    cycles: int,
    kernel: Optional[VectorKernel] = None,
) -> List[Trace]:
    """Run one trace per stimulus, stepping all lanes as one batch.

    Bit-for-bit equivalent to running ``Simulator(model).run(cycles, s)``
    once per stimulus: the per-cycle snapshot is the settled pre-edge
    environment, exactly as the scalar simulator records it.  Sequential
    designs batch one lane per stimulus and advance cycle by cycle;
    cycle-independent combinational designs (see
    :func:`comb_cycle_independent`) settle every (stimulus, cycle) pair of
    the whole run as one flat batch.
    """
    from .stimulus import stack_stimuli

    if kernel is None:
        plan = plan_model(model)
        if plan.kernel is None:
            raise UnsupportedForVectorization(plan.reason)
        kernel = plan.kernel
    design_name = model.name
    signal_names = list(model.signals)
    num_stimuli = len(stimuli)
    stacked = stack_stimuli(stimuli, model, cycles)  # (cycles, lanes) per input

    if not model.seq_processes and comb_cycle_independent(model):
        # One settle over stimuli × cycles lanes (Fortran ravel keeps each
        # stimulus' cycles contiguous per lane block).
        lanes = num_stimuli * cycles
        env = kernel.initial_env(lanes)
        for name in model.non_clock_inputs:
            env[name] = kernel.lift_input(
                name, np.ascontiguousarray(stacked[name].ravel(order="F")), lanes
            )
        if not kernel.settle(env):
            raise CombinationalLoopError(
                f"combinational logic of {design_name!r} did not settle"
            )
        flat = {name: kernel.column_values(env, name) for name in signal_names}
        traces = []
        for lane in range(num_stimuli):
            trace = Trace(signals=list(signal_names), design_name=design_name)
            for name in signal_names:
                trace.data[name] = flat[name][lane * cycles : (lane + 1) * cycles]
            traces.append(trace)
        return traces

    lanes = num_stimuli
    env = kernel.initial_env(lanes)
    if not kernel.settle(env):
        raise CombinationalLoopError(
            f"combinational logic of {design_name!r} did not settle"
        )
    columns: Dict[str, List[List[int]]] = {name: [] for name in signal_names}
    sequential = bool(model.seq_processes)
    for cycle in range(cycles):
        for name in model.non_clock_inputs:
            env[name] = kernel.lift_input(name, stacked[name][cycle], lanes)
        if not kernel.settle(env):
            raise CombinationalLoopError(
                f"combinational logic of {design_name!r} did not settle"
            )
        for name in signal_names:
            columns[name].append(kernel.column_values(env, name))
        if sequential:
            next_cols = kernel.next_state_columns(env, lanes)
            env.update(next_cols)
            if not kernel.settle(env):
                raise CombinationalLoopError(
                    f"combinational logic of {design_name!r} did not settle"
                )
    traces = []
    for lane in range(lanes):
        trace = Trace(signals=list(signal_names), design_name=design_name)
        for name in signal_names:
            trace.data[name] = [row[lane] for row in columns[name]]
        traces.append(trace)
    return traces
