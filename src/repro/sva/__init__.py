"""Restricted SVA subset: assertion model, parser, binding checker, corrector."""

from .checker import BindingReport, bind, check_semantics, referenced_state_signals
from .corrector import CorrectionResult, SyntaxCorrector, correct_assertion
from .errors import SvaBindingError, SvaError, SvaSyntaxError, SvaUnsupportedError
from .model import (
    NON_OVERLAPPED,
    OVERLAPPED,
    Assertion,
    AssertionSignature,
    SequenceTerm,
    deduplicate,
)
from .parser import SvaParser, parse_assertion, parse_assertions, split_assertion_lines

__all__ = [
    "Assertion",
    "AssertionSignature",
    "BindingReport",
    "CorrectionResult",
    "NON_OVERLAPPED",
    "OVERLAPPED",
    "SequenceTerm",
    "SvaBindingError",
    "SvaError",
    "SvaParser",
    "SvaSyntaxError",
    "SvaUnsupportedError",
    "SyntaxCorrector",
    "bind",
    "check_semantics",
    "correct_assertion",
    "deduplicate",
    "parse_assertion",
    "parse_assertions",
    "referenced_state_signals",
    "split_assertion_lines",
]
