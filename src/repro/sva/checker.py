"""Semantic binding of assertions against a design.

Binding answers the question the FPV engine asks before it can prove
anything: does every signal referenced by the assertion exist in the design,
are bit/part selects in range, and is there a usable clock for sequential
assertions?  Binding failures are classified under the paper's ``Error``
metric (the assertion cannot even be elaborated by the verification tool).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..hdl import ast
from ..hdl.design import Design
from ..hdl.elaborate import RtlModel
from .errors import SvaBindingError
from .model import Assertion


@dataclass
class BindingReport:
    """Outcome of binding one assertion against one design."""

    ok: bool
    unknown_signals: List[str] = field(default_factory=list)
    out_of_range_selects: List[str] = field(default_factory=list)
    clock: Optional[str] = None
    messages: List[str] = field(default_factory=list)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise SvaBindingError("; ".join(self.messages) or "binding failed")


def _model_of(design_or_model) -> RtlModel:
    if isinstance(design_or_model, Design):
        return design_or_model.model
    return design_or_model


def bind(assertion: Assertion, design_or_model) -> BindingReport:
    """Check that ``assertion`` can be elaborated against the design."""
    model = _model_of(design_or_model)
    known = set(model.signals) | set(model.parameters)
    messages: List[str] = []

    unknown = sorted(name for name in assertion.signals() if name not in known)
    if unknown:
        messages.append(f"unknown signals: {', '.join(unknown)}")

    out_of_range = _check_selects(assertion, model)
    if out_of_range:
        messages.append(f"out-of-range selects: {', '.join(out_of_range)}")

    clock = assertion.clock
    if clock is None and not assertion.is_combinational and model.clocks:
        clock = model.clocks[0]
    if clock is not None and clock not in model.signals:
        messages.append(f"clock {clock!r} is not a design signal")
    if not assertion.is_combinational and clock is None and model.is_sequential:
        # Sequential assertion on a sequential design needs some clock; fall
        # back to the design's primary clock if one exists, otherwise report.
        if not model.clocks:
            messages.append("sequential assertion but the design declares no clock")

    if not assertion.antecedent:
        messages.append("assertion has an empty antecedent")
    if not assertion.consequent:
        messages.append("assertion has an empty consequent")

    return BindingReport(
        ok=not messages,
        unknown_signals=unknown,
        out_of_range_selects=out_of_range,
        clock=clock,
        messages=messages,
    )


def _check_selects(assertion: Assertion, model: RtlModel) -> List[str]:
    problems: List[str] = []
    for term in list(assertion.antecedent) + list(assertion.consequent):
        _walk_selects(term.expr, model, problems)
    if assertion.disable_iff is not None:
        _walk_selects(assertion.disable_iff, model, problems)
    return problems


def _walk_selects(expr: ast.Expr, model: RtlModel, problems: List[str]) -> None:
    if isinstance(expr, ast.BitSelect):
        _check_one_select(expr.base, expr.index, expr.index, model, problems)
        _walk_selects(expr.base, model, problems)
        _walk_selects(expr.index, model, problems)
    elif isinstance(expr, ast.PartSelect):
        _check_one_select(expr.base, expr.msb, expr.lsb, model, problems)
        _walk_selects(expr.base, model, problems)
    elif isinstance(expr, ast.Unary):
        _walk_selects(expr.operand, model, problems)
    elif isinstance(expr, ast.Binary):
        _walk_selects(expr.left, model, problems)
        _walk_selects(expr.right, model, problems)
    elif isinstance(expr, ast.Ternary):
        _walk_selects(expr.cond, model, problems)
        _walk_selects(expr.then, model, problems)
        _walk_selects(expr.otherwise, model, problems)
    elif isinstance(expr, ast.Concat):
        for part in expr.parts:
            _walk_selects(part, model, problems)
    elif isinstance(expr, ast.Replicate):
        _walk_selects(expr.value, model, problems)


def _check_one_select(
    base: ast.Expr, high: ast.Expr, low: ast.Expr, model: RtlModel, problems: List[str]
) -> None:
    if not isinstance(base, ast.Identifier) or base.name not in model.signals:
        return
    width = model.signals[base.name].width
    for bound in (high, low):
        index = _try_const(bound, model)
        if index is None:
            continue
        if index < 0 or index >= width:
            problems.append(f"{base.name}[{index}] (width {width})")


def _try_const(expr: ast.Expr, model: RtlModel) -> Optional[int]:
    if isinstance(expr, ast.Number):
        return expr.value
    if isinstance(expr, ast.Identifier) and expr.name in model.parameters:
        return model.parameters[expr.name]
    return None


def check_semantics(assertion: Assertion, design_or_model) -> None:
    """Raise :class:`SvaBindingError` if the assertion cannot be bound."""
    bind(assertion, design_or_model).raise_if_failed()


def referenced_state_signals(assertion: Assertion, design_or_model) -> Set[str]:
    """Design state registers mentioned by the assertion (used by ranking)."""
    model = _model_of(design_or_model)
    return {name for name in assertion.signals() if name in set(model.state_regs)}
