"""Rule-based SVA syntax corrector.

The paper's evaluation framework (Figure 4, step 3) passes every
LLM-generated assertion through a GPT-3.5-based syntax corrector before
handing it to the FPV engine, because "each LLM fails to learn the SVA syntax
from the training examples".  We substitute a deterministic repairer that
fixes the same classes of near-miss output: wrong implication spelling,
assignment-instead-of-equality, stray prose or markdown, missing delimiters,
and (optionally) signal names that almost match a design signal.

The corrector deliberately cannot fix everything — a fraction of generated
assertions remains unparseable even after correction, which is exactly the
behaviour the paper's ``Error`` metric measures.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, field
from typing import List, Optional

from ..hdl.design import Design
from .errors import SvaError
from .model import Assertion
from .parser import parse_assertion


@dataclass
class CorrectionResult:
    """Outcome of attempting to repair one assertion string."""

    original: str
    corrected: str
    assertion: Optional[Assertion]
    applied_rules: List[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.assertion is not None


class SyntaxCorrector:
    """Repair near-miss SVA text so the FPV engine can elaborate it."""

    def __init__(self, design: Optional[Design] = None, resolve_signals: bool = True):
        self._design = design
        self._resolve_signals = resolve_signals and design is not None

    def correct(self, text: str) -> CorrectionResult:
        """Attempt to parse ``text``, applying repair rules until it parses."""
        applied: List[str] = []
        current = text

        try:
            assertion = parse_assertion(current)
            return self._maybe_resolve_parsed(text, current, assertion, applied)
        except SvaError:
            pass

        for rule_name, rule in _REPAIR_RULES:
            repaired = rule(current)
            if repaired != current:
                applied.append(rule_name)
                current = repaired
            try:
                return CorrectionResult(text, current, parse_assertion(current), list(applied))
            except SvaError:
                continue

        if self._resolve_signals:
            resolved = self._resolve_signal_names(current)
            if resolved != current:
                applied.append("resolve_signal_names")
                current = resolved
                try:
                    return CorrectionResult(
                        text, current, parse_assertion(current), list(applied)
                    )
                except SvaError:
                    pass

        try:
            assertion = parse_assertion(current)
            return CorrectionResult(text, current, assertion, applied)
        except SvaError as exc:
            return CorrectionResult(text, current, None, applied, error=str(exc))

    def correct_all(self, lines: List[str]) -> List[CorrectionResult]:
        """Correct a batch of assertion strings."""
        return [self.correct(line) for line in lines]

    def _maybe_resolve_parsed(
        self, original: str, current: str, assertion: Assertion, applied: List[str]
    ) -> CorrectionResult:
        """Repair near-miss signal names in an otherwise well-formed assertion.

        A GPT-style corrector routinely fixes identifiers that are one typo
        away from a real design signal (``req_1`` vs ``req1``); genuinely
        unknown names are left alone so the FPV engine still reports them as
        elaboration errors.
        """
        if not self._resolve_signals or self._design is None:
            return CorrectionResult(original, current, assertion, applied)
        known = set(self._design.model.signals) | set(self._design.model.parameters)
        unknown = [name for name in assertion.signals() if name not in known]
        if not unknown:
            return CorrectionResult(original, current, assertion, applied)
        resolved_text = self._resolve_signal_names(current)
        if resolved_text == current:
            return CorrectionResult(original, current, assertion, applied)
        try:
            resolved = parse_assertion(resolved_text)
        except SvaError:
            return CorrectionResult(original, current, assertion, applied)
        still_unknown = [name for name in resolved.signals() if name not in known]
        if len(still_unknown) < len(unknown):
            applied = applied + ["resolve_signal_names"]
            return CorrectionResult(original, resolved_text, resolved, applied)
        return CorrectionResult(original, current, assertion, applied)

    # -- signal-name resolution --------------------------------------------------

    def _resolve_signal_names(self, text: str) -> str:
        if self._design is None:
            return text
        known = list(self._design.model.signals) + list(self._design.model.parameters)
        known_set = set(known)

        def replace(match: re.Match) -> str:
            word = match.group(0)
            if word in known_set or word in _SVA_WORDS or word.isdigit():
                return word
            candidates = difflib.get_close_matches(word, known, n=1, cutoff=0.75)
            return candidates[0] if candidates else word

        return re.sub(r"[A-Za-z_][A-Za-z0-9_]*", replace, text)


_SVA_WORDS = frozenset(
    {
        "assert",
        "assume",
        "cover",
        "property",
        "endproperty",
        "posedge",
        "negedge",
        "disable",
        "iff",
        "and",
        "or",
        "not",
        "if",
        "else",
    }
)


def _strip_prose(text: str) -> str:
    """Drop markdown fences, bullets, numbering, and trailing explanations."""
    line = text.strip()
    line = re.sub(r"^```\w*", "", line).strip()
    line = line.replace("`", "").strip()
    line = re.sub(r"^[-*]\s+", "", line)
    line = re.sub(r"^(assertion|property)?\s*\d+\s*[.):]\s*", "", line, flags=re.IGNORECASE)
    # Drop anything after a '//' comment.
    line = line.split("//")[0].strip()
    return line


def _fix_implication(text: str) -> str:
    """Rewrite ``->`` / ``=>`` / ``implies`` to the SVA implication operators."""
    if "|->" in text or "|=>" in text:
        return text
    fixed = re.sub(r"(?<![|=<>!+\-*/])->", "|->", text)
    fixed = re.sub(r"(?<![|=<>!])=>(?!=)", "|=>", fixed)
    fixed = re.sub(r"\bimplies\b", "|->", fixed)
    return fixed


def _fix_equality(text: str) -> str:
    """Rewrite single ``=`` used as comparison into ``==``."""
    return re.sub(r"(?<![=!<>|&^~+\-*/])=(?![=>])", "==", text)


def _fix_sized_literals(text: str) -> str:
    """Normalise literals like ``1'b1`` left untouched but repair ``1b1``/``'b1``."""
    fixed = re.sub(r"\b(\d+)b([01xz]+)\b", r"\1'b\2", text)
    fixed = re.sub(r"(?<![0-9'])'b([01xz]+)", r"1'b\1", fixed)
    return fixed

def _fix_delay(text: str) -> str:
    """Repair bare ``##`` (no count) and ``# n`` delay spellings."""
    fixed = re.sub(r"##\s*(?=[^\d])", "##1 ", text)
    fixed = re.sub(r"(?<!#)#(\d+)", r"##\1", fixed)
    return fixed


def _balance_parens(text: str) -> str:
    """Append or trim parentheses so they balance."""
    opens = text.count("(")
    closes = text.count(")")
    stripped = text.rstrip(";").rstrip()
    if opens > closes:
        stripped = stripped + ")" * (opens - closes)
    elif closes > opens:
        surplus = closes - opens
        while surplus and stripped.endswith(")"):
            stripped = stripped[:-1]
            surplus -= 1
    return stripped + ";" if text.rstrip().endswith(";") else stripped


def _strip_property_block(text: str) -> str:
    """Flatten ``property p; ... endproperty assert property(p);`` blocks."""
    match = re.search(
        r"property\s+\w+\s*;(.*?)endproperty", text, flags=re.IGNORECASE | re.DOTALL
    )
    if match:
        return match.group(1).strip().rstrip(";") + ";"
    return text


def _drop_trailing_garbage(text: str) -> str:
    """Keep only the first statement-like chunk ending in ';'."""
    if ";" in text:
        return text.split(";")[0] + ";"
    return text


_REPAIR_RULES = (
    ("strip_prose", _strip_prose),
    ("strip_property_block", _strip_property_block),
    ("fix_implication", _fix_implication),
    ("fix_delay", _fix_delay),
    ("fix_equality", _fix_equality),
    ("fix_sized_literals", _fix_sized_literals),
    ("balance_parens", _balance_parens),
    ("drop_trailing_garbage", _drop_trailing_garbage),
)


def correct_assertion(
    text: str, design: Optional[Design] = None, resolve_signals: bool = True
) -> CorrectionResult:
    """Convenience wrapper around :class:`SyntaxCorrector` for one assertion."""
    return SyntaxCorrector(design=design, resolve_signals=resolve_signals).correct(text)
