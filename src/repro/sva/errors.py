"""Error taxonomy for the SVA subset.

The evaluation framework (Section IV of the paper) distinguishes assertions
that are *syntactically* broken (the FPV engine cannot even parse them — the
``Error`` metric) from assertions that parse and bind but are *semantically*
wrong (they produce a counterexample — the ``CEX``/``Fail`` metric).  The
error classes below encode that distinction.
"""

from __future__ import annotations


class SvaError(Exception):
    """Base class for all SVA-related errors."""

    def __init__(self, message: str, text: str = ""):
        super().__init__(message)
        self.message = message
        self.text = text

    def __str__(self) -> str:
        if self.text:
            return f"{self.message}: {self.text!r}"
        return self.message


class SvaSyntaxError(SvaError):
    """The assertion text is not valid SVA (even for the restricted subset)."""


class SvaBindingError(SvaError):
    """The assertion parses but references signals the design does not declare,

    or otherwise cannot be bound to the design (e.g. out-of-range bit selects).
    A binding failure is reported by the FPV engine as an elaboration error and
    therefore counts towards the paper's ``Error`` metric.
    """


class SvaUnsupportedError(SvaSyntaxError):
    """The assertion uses SVA features outside the restricted subset."""
