"""Assertion object model for the supported SVA subset.

The paper restricts assertions to the sequential form ``G(A -> C)`` where the
antecedent ``A`` is a conjunction of propositions at cycle offsets
``0..m`` and the consequent ``C`` is a proposition at offset ``n >= m``
(Section II.A).  We model both sides as lists of *sequence terms* — a
proposition (a Verilog boolean expression over design signals) paired with a
cycle offset — which also covers multi-term consequents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..hdl import ast

#: Implication flavours (IEEE 1800 terminology).
OVERLAPPED = "|->"
NON_OVERLAPPED = "|=>"


@dataclass(frozen=True)
class SequenceTerm:
    """A proposition sampled at a fixed cycle offset from the start of a match."""

    offset: int
    expr: ast.Expr

    def signals(self) -> Set[str]:
        return self.expr.signals()

    def __str__(self) -> str:
        prefix = f"##{self.offset} " if self.offset else ""
        return f"{prefix}({self.expr})"


@dataclass
class Assertion:
    """One sequential assertion ``G(antecedent |-> consequent)``."""

    antecedent: List[SequenceTerm]
    consequent: List[SequenceTerm]
    implication: str = OVERLAPPED
    clock: Optional[str] = None
    clock_edge: str = "posedge"
    disable_iff: Optional[ast.Expr] = None
    name: str = ""
    source_text: str = ""

    def __post_init__(self):
        if self.implication not in (OVERLAPPED, NON_OVERLAPPED):
            raise ValueError(f"unknown implication operator {self.implication!r}")

    # -- structural queries ---------------------------------------------------

    def signals(self) -> Set[str]:
        """All design signals referenced anywhere in the assertion."""
        names: Set[str] = set()
        for term in self.antecedent:
            names |= term.signals()
        for term in self.consequent:
            names |= term.signals()
        if self.disable_iff is not None:
            names |= self.disable_iff.signals()
        if self.clock:
            names.add(self.clock)
        return names

    @property
    def antecedent_depth(self) -> int:
        """Largest antecedent offset (``m`` in the paper's notation)."""
        return max((term.offset for term in self.antecedent), default=0)

    @property
    def consequent_shift(self) -> int:
        """Cycle offset of the consequent's reference point.

        Per IEEE 1800 semantics, the consequent of ``|->`` starts in the cycle
        where the antecedent match *ends*; ``|=>`` starts one cycle later.
        """
        base = self.antecedent_depth
        return base + (1 if self.implication == NON_OVERLAPPED else 0)

    @property
    def consequent_depth(self) -> int:
        """Largest consequent offset measured from the match start."""
        shift = self.consequent_shift
        return max((term.offset + shift for term in self.consequent), default=shift)

    @property
    def temporal_depth(self) -> int:
        """Total number of cycles a single evaluation attempt spans."""
        return max(self.antecedent_depth, self.consequent_depth)

    @property
    def is_combinational(self) -> bool:
        """True when every term is sampled in the same cycle (depth 0)."""
        return self.temporal_depth == 0 and self.implication == OVERLAPPED

    def consequent_terms_absolute(self) -> List[SequenceTerm]:
        """Consequent terms with offsets measured from the match start."""
        shift = self.consequent_shift
        return [SequenceTerm(term.offset + shift, term.expr) for term in self.consequent]

    # -- rendering --------------------------------------------------------------

    def sequence_text(self, terms: List[SequenceTerm]) -> str:
        """Render a term list as an SVA sequence expression."""
        if not terms:
            return "(1)"
        ordered = sorted(terms, key=lambda t: t.offset)
        pieces: List[str] = []
        previous_offset = 0
        same_cycle: List[str] = []
        for term in ordered:
            gap = term.offset - previous_offset
            if gap == 0 and pieces == [] and not same_cycle:
                same_cycle.append(f"({term.expr})")
            elif gap == 0:
                same_cycle.append(f"({term.expr})")
            else:
                if same_cycle:
                    pieces.append(" && ".join(same_cycle))
                    same_cycle = []
                pieces.append(f"##{gap}")
                same_cycle.append(f"({term.expr})")
                previous_offset = term.offset
        if same_cycle:
            pieces.append(" && ".join(same_cycle))
        return " ".join(pieces)

    def body_text(self) -> str:
        """The assertion body: ``antecedent |-> consequent``."""
        return (
            f"{self.sequence_text(self.antecedent)} {self.implication} "
            f"{self.sequence_text(self.consequent)}"
        )

    def to_sva(self, include_assert: bool = True) -> str:
        """Render the assertion as SVA concrete syntax."""
        clocking = f"@({self.clock_edge} {self.clock}) " if self.clock else ""
        disable = f"disable iff ({self.disable_iff}) " if self.disable_iff is not None else ""
        body = f"{clocking}{disable}{self.body_text()}"
        if include_assert:
            label = f"{self.name}: " if self.name else ""
            return f"{label}assert property ({body});"
        return f"{body};"

    def __str__(self) -> str:
        return self.to_sva(include_assert=False)

    # -- convenience constructors ------------------------------------------------

    @classmethod
    def simple(
        cls,
        antecedent: ast.Expr,
        consequent: ast.Expr,
        implication: str = OVERLAPPED,
        clock: Optional[str] = None,
        name: str = "",
    ) -> "Assertion":
        """Build a single-term assertion ``antecedent |-> consequent``."""
        return cls(
            antecedent=[SequenceTerm(0, antecedent)],
            consequent=[SequenceTerm(0, consequent)],
            implication=implication,
            clock=clock,
            name=name,
        )


@dataclass(frozen=True)
class AssertionSignature:
    """A hashable structural fingerprint used to deduplicate assertions."""

    antecedent: Tuple[Tuple[int, str], ...]
    consequent: Tuple[Tuple[int, str], ...]
    implication: str

    @classmethod
    def of(cls, assertion: Assertion) -> "AssertionSignature":
        return cls(
            antecedent=tuple(sorted((t.offset, str(t.expr)) for t in assertion.antecedent)),
            consequent=tuple(sorted((t.offset, str(t.expr)) for t in assertion.consequent)),
            implication=assertion.implication,
        )


def deduplicate(assertions: List[Assertion]) -> List[Assertion]:
    """Drop structural duplicates while preserving order."""
    seen: Set[AssertionSignature] = set()
    unique: List[Assertion] = []
    for assertion in assertions:
        signature = AssertionSignature.of(assertion)
        if signature in seen:
            continue
        seen.add(signature)
        unique.append(assertion)
    return unique
