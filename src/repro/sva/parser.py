"""Parser for the restricted SVA subset used throughout the paper.

Accepted concrete syntax (several equivalent surface forms, because LLM
output and miner output differ in how much boilerplate they wrap around the
property body):

* ``label: assert property (@(posedge clk) disable iff (rst) A |-> C);``
* ``assert property (A |=> C);``
* ``A |-> ##2 C;``  (bare property body, as in the paper's Figure 5 prompt)

A sequence is a conjunction of boolean propositions separated by ``##N``
delays; the boolean layer is ordinary Verilog expression syntax, parsed by
the shared :mod:`repro.hdl.parser`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..hdl import ast
from ..hdl.errors import HdlError
from ..hdl.lexer import tokenize
from ..hdl.parser import Parser as _ExprParser
from ..hdl.tokens import Token, TokenKind
from .errors import SvaSyntaxError, SvaUnsupportedError
from .model import NON_OVERLAPPED, OVERLAPPED, Assertion, SequenceTerm

#: SVA operators outside the restricted subset (their presence is a parse error
#: but we detect them explicitly to give a precise diagnostic).
_UNSUPPORTED_MARKERS = (
    "s_eventually",
    "s_until",
    "until_with",
    "throughout",
    "intersect",
    "first_match",
    "within",
    "[*",
    "[=",
    "[->",
)


class SvaParser:
    """Parse assertion text into :class:`repro.sva.model.Assertion`."""

    def __init__(self, text: str):
        self._original_text = text
        self._text = text.strip()

    def parse(self) -> Assertion:
        """Parse the assertion, raising :class:`SvaSyntaxError` on failure."""
        text = self._text
        if not text:
            raise SvaSyntaxError("empty assertion text")
        lowered = text.lower()
        for marker in _UNSUPPORTED_MARKERS:
            if marker in lowered:
                raise SvaUnsupportedError(
                    f"operator {marker!r} is outside the supported SVA subset", text
                )
        name, text = self._strip_label(text)
        text = self._strip_wrappers(text)
        try:
            tokens = tokenize(text)
        except HdlError as exc:
            raise SvaSyntaxError(f"cannot tokenize assertion: {exc}", self._original_text)
        reader = _TokenReader(tokens, self._original_text)
        clock_edge, clock = reader.parse_clocking()
        disable = reader.parse_disable_iff()
        antecedent, implication, consequent = reader.parse_property_body()
        reader.expect_end()
        return Assertion(
            antecedent=antecedent,
            consequent=consequent,
            implication=implication,
            clock=clock,
            clock_edge=clock_edge,
            disable_iff=disable,
            name=name,
            source_text=self._original_text,
        )

    # -- surface-form stripping ------------------------------------------------

    def _strip_label(self, text: str) -> Tuple[str, str]:
        head, sep, rest = text.partition(":")
        if not sep:
            return "", text
        candidate = head.strip()
        if candidate.isidentifier() and "assert" in rest[:40].lower():
            return candidate, rest.strip()
        return "", text

    def _strip_wrappers(self, text: str) -> str:
        stripped = text.strip().rstrip(";").strip()
        lowered = stripped.lower()
        for keyword in ("assert property", "assume property", "cover property", "property"):
            if lowered.startswith(keyword):
                stripped = stripped[len(keyword):].strip()
                break
        if stripped.startswith("(") and stripped.endswith(")"):
            if _parens_balanced_as_wrapper(stripped):
                stripped = stripped[1:-1].strip()
        if not stripped:
            raise SvaSyntaxError("assertion has no property body", self._original_text)
        return stripped


def _parens_balanced_as_wrapper(text: str) -> bool:
    """True if the outermost parentheses wrap the entire text."""
    depth = 0
    for index, char in enumerate(text):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth == 0 and index != len(text) - 1:
                return False
    return depth == 0


class _TokenReader:
    """Token-level parsing of clocking, disable iff, and the property body."""

    def __init__(self, tokens: List[Token], original_text: str):
        self._tokens = tokens
        self._pos = 0
        self._text = original_text

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _accept_punct(self, value: str) -> bool:
        if self._current.is_punct(value):
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        if not self._accept_punct(value):
            raise SvaSyntaxError(
                f"expected {value!r}, found {self._current.value!r}", self._text
            )

    # -- clocking and disable iff -------------------------------------------------

    def parse_clocking(self) -> Tuple[str, Optional[str]]:
        if not self._current.is_punct("@"):
            return "posedge", None
        self._advance()
        self._expect_punct("(")
        edge = "posedge"
        if self._current.is_keyword("posedge") or self._current.is_keyword("negedge"):
            edge = self._advance().value
        if self._current.kind is not TokenKind.IDENT:
            raise SvaSyntaxError("expected clock signal name in clocking event", self._text)
        clock = self._advance().value
        self._expect_punct(")")
        return edge, clock

    def parse_disable_iff(self) -> Optional[ast.Expr]:
        if self._current.kind is TokenKind.IDENT and self._current.value == "disable":
            self._advance()
            if not (self._current.kind is TokenKind.IDENT and self._current.value == "iff"):
                raise SvaSyntaxError("expected 'iff' after 'disable'", self._text)
            self._advance()
            self._expect_punct("(")
            expr = self._parse_boolean_until((")",))
            self._expect_punct(")")
            return expr
        return None

    # -- property body ----------------------------------------------------------------

    def parse_property_body(
        self,
    ) -> Tuple[List[SequenceTerm], str, List[SequenceTerm]]:
        antecedent = self.parse_sequence(stop_on_implication=True)
        if self._current.is_punct(OVERLAPPED):
            implication = OVERLAPPED
            self._advance()
        elif self._current.is_punct(NON_OVERLAPPED):
            implication = NON_OVERLAPPED
            self._advance()
        else:
            # A bare sequence with no implication is an invariant: G(expr).
            # Model it as (1) |-> expr so the four-way FPV verdict still applies.
            if not antecedent:
                raise SvaSyntaxError("assertion has no property body", self._text)
            consequent = antecedent
            antecedent = [SequenceTerm(0, ast.Number(1))]
            return antecedent, OVERLAPPED, consequent
        consequent = self.parse_sequence(stop_on_implication=False)
        if not consequent:
            raise SvaSyntaxError("implication has an empty consequent", self._text)
        return antecedent, implication, consequent

    def parse_sequence(self, stop_on_implication: bool) -> List[SequenceTerm]:
        terms: List[SequenceTerm] = []
        offset = 0
        expect_term = True
        while True:
            if self._current.is_punct("##"):
                self._advance()
                if self._current.kind is not TokenKind.NUMBER:
                    raise SvaSyntaxError("expected cycle count after '##'", self._text)
                offset += int(self._advance().value)
                expect_term = True
                continue
            if self._current.kind is TokenKind.EOF:
                break
            if self._current.is_punct(OVERLAPPED) or self._current.is_punct(NON_OVERLAPPED):
                break
            if self._current.is_punct(";"):
                self._advance()
                break
            if not expect_term:
                raise SvaSyntaxError(
                    f"unexpected token {self._current.value!r} in sequence", self._text
                )
            expr = self._parse_boolean_until(("##", OVERLAPPED, NON_OVERLAPPED, ";"))
            terms.extend(self._split_conjunction(expr, offset))
            expect_term = False
        return terms

    def _split_conjunction(self, expr: ast.Expr, offset: int) -> List[SequenceTerm]:
        """Split top-level ``&&`` conjunctions into separate same-cycle terms."""
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            return self._split_conjunction(expr.left, offset) + self._split_conjunction(
                expr.right, offset
            )
        return [SequenceTerm(offset, expr)]

    # -- boolean layer ------------------------------------------------------------------

    def _parse_boolean_until(self, stop_puncts: Tuple[str, ...]) -> ast.Expr:
        """Parse a Verilog boolean expression from the current position.

        Delegates to the shared expression parser, then fast-forwards our own
        cursor to where it stopped.
        """
        expr_parser = _ExprParser(self._tokens[self._pos:] )
        try:
            expr = expr_parser.parse_expression()
        except HdlError as exc:
            raise SvaSyntaxError(f"invalid boolean expression: {exc}", self._text)
        self._pos += expr_parser._pos
        return expr

    def expect_end(self) -> None:
        while self._current.is_punct(";"):
            self._advance()
        if self._current.kind is not TokenKind.EOF:
            raise SvaSyntaxError(
                f"unexpected trailing text starting at {self._current.value!r}", self._text
            )


def parse_assertion(text: str) -> Assertion:
    """Parse one assertion string into an :class:`Assertion`."""
    return SvaParser(text).parse()


def parse_assertions(text: str) -> List[Assertion]:
    """Parse a block of text containing one assertion per line.

    Blank lines and ``//`` comment lines are skipped.  Any line that fails to
    parse raises :class:`SvaSyntaxError` — callers that want per-line error
    accounting (the evaluation pipeline) should parse line by line instead.
    """
    assertions = []
    for line in split_assertion_lines(text):
        assertions.append(parse_assertion(line))
    return assertions


def split_assertion_lines(text: str) -> List[str]:
    """Split raw generator output into candidate assertion strings."""
    lines = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("//") or line.startswith("#"):
            continue
        lines.append(line)
    return lines
