"""Unit tests for the static-analysis graphs (VDG, CDFG, COI)."""

import pytest

from repro.analysis import (
    coi_features,
    cone_of_influence,
    control_data_flow_graph,
    fanout_cone,
    influence_ranking,
    sequential_depth,
    variable_dependency_graph,
)


class TestVariableDependencyGraph:
    def test_data_dependencies(self, adder_design):
        graph = variable_dependency_graph(adder_design)
        assert graph.has_edge("a", "total")
        assert graph.has_edge("total", "sum")
        assert graph.has_edge("total", "carry")

    def test_control_dependencies(self, arb2_design):
        graph = variable_dependency_graph(arb2_design)
        # gnt1 is assigned under the if(gnt_) condition -> control edge
        assert graph.has_edge("gnt_", "gnt1")
        assert graph.has_edge("req1", "gnt1")

    def test_sequential_dependencies(self, counter_design):
        graph = variable_dependency_graph(counter_design)
        assert graph.has_edge("en", "count")
        assert graph.has_edge("rst", "count")


class TestCones:
    def test_cone_of_influence(self, arb2_design):
        cone = cone_of_influence(arb2_design, "gnt1")
        assert {"req1", "req2", "gnt_", "gnt1"} <= cone

    def test_fanout_cone(self, arb2_design):
        fanout = fanout_cone(arb2_design, "req1")
        assert "gnt1" in fanout and "gnt2" in fanout

    def test_unknown_signal_raises(self, arb2_design):
        with pytest.raises(KeyError):
            cone_of_influence(arb2_design, "nothere")

    def test_coi_features_exclude_clock_and_target(self, arb2_design):
        features = coi_features(arb2_design, "gnt1")
        assert "clk" not in features
        assert "gnt1" not in features
        assert "req1" in features
        assert "gnt_" in features

    def test_coi_features_can_exclude_state(self, arb2_design):
        features = coi_features(arb2_design, "gnt1", include_state=False)
        assert "gnt_" not in features


class TestCdfgAndRanking:
    def test_cdfg_node_kinds(self, arb2_design):
        graph = control_data_flow_graph(arb2_design)
        kinds = {data["kind"] for _, data in graph.nodes(data=True)}
        assert {"signal", "comb", "seq"} <= kinds

    def test_cdfg_connects_processes_to_signals(self, adder_design):
        graph = control_data_flow_graph(adder_design)
        assert graph.has_edge(("signal", "a"), ("assign", 0))

    def test_influence_ranking_prefers_inputs(self, arb2_design):
        ranking = influence_ranking(arb2_design)
        assert ranking.index("req1") < ranking.index("gnt2")

    def test_sequential_depth(self, arb2_design):
        # req1 combinationally drives gnt1 (depth 0), and reaches gnt_ through
        # one register stage.
        assert sequential_depth(arb2_design, "req1", "gnt1") == 0
        assert sequential_depth(arb2_design, "req1", "gnt_") >= 1

    def test_sequential_depth_no_path(self, adder_design):
        assert sequential_depth(adder_design, "sum", "a") is None
