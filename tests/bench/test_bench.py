"""Tests for the AssertionBench corpus, knowledge base, and ICE construction."""

import pytest

from repro.bench import TEST_SPECS, TRAINING_SPECS, AssertionBenchCorpus, load_corpus
from repro.fpv import FormalEngine, ProofStatus
from repro.sim import Simulator


class TestCorpusStructure:
    def test_exactly_100_test_designs_and_5_training_designs(self):
        assert len(TEST_SPECS) == 100
        assert len(TRAINING_SPECS) == 5

    def test_training_designs_match_paper(self, corpus):
        names = set(corpus.names("train"))
        assert names == {"arb2", "half_adder", "full_adder", "t_flip_flop", "full_subtractor"}

    def test_every_design_elaborates(self, corpus):
        for design in corpus.all_designs():
            assert design.model.signals
            assert design.loc > 0

    def test_loc_range_matches_figure3(self, corpus):
        loc = corpus.loc_by_design("test")
        assert min(loc.values()) <= 15
        assert max(loc.values()) >= 1000

    def test_mix_of_combinational_and_sequential(self, corpus):
        counts = corpus.split_counts()
        assert counts["combinational"] >= 20
        assert counts["sequential"] >= 50

    def test_representative_designs_are_the_largest(self, corpus):
        table = corpus.representative_designs(5)
        locs = [design.loc for design in table]
        assert locs == sorted(locs, reverse=True)
        assert table[0].name == "ca_prng"

    def test_design_lookup_and_errors(self, corpus):
        assert corpus.design("fifo_mem").name == "fifo_mem"
        with pytest.raises(KeyError):
            corpus.design("not_a_design")

    def test_design_cache_returns_same_object(self, corpus):
        assert corpus.design("counter") is corpus.design("counter")

    def test_load_corpus_convenience(self):
        assert isinstance(load_corpus(), AssertionBenchCorpus)

    def test_category_coverage(self, corpus):
        categories = {spec.category for spec in TEST_SPECS}
        assert {"communication", "security", "arithmetic", "fsm", "storage"} <= categories


class TestCorpusBehaviour:
    @pytest.mark.parametrize(
        "name",
        ["counter", "fifo_mem", "traffic_light", "uart_tx", "lfsr8", "alu8", "hamming_encoder"],
    )
    def test_representative_designs_simulate(self, corpus, name):
        design = corpus.design(name)
        trace = Simulator(design).run(cycles=64, seed=3)
        assert trace.num_cycles == 64

    def test_lfsr_visits_many_states(self, corpus):
        design = corpus.design("lfsr8")
        trace = Simulator(design).run(cycles=300, seed=1)
        assert len(trace.distinct_values("state")) > 100

    def test_fifo_count_never_exceeds_depth(self, corpus):
        design = corpus.design("fifo_mem")
        trace = Simulator(design).run(cycles=300, seed=2)
        assert max(trace.column("count")) <= 4

    def test_hamming_roundtrip_via_fpv(self, corpus):
        encoder = corpus.design("hamming_encoder")
        engine = FormalEngine(encoder)
        result = engine.check("(data_in == 5) |-> (code_out[2] == 1);")
        assert result.status is ProofStatus.PROVEN


class TestKnowledgeBase:
    def test_pool_is_cached(self, corpus, knowledge):
        design = corpus.design("counter")
        first = knowledge.verified_assertions(design)
        second = knowledge.verified_assertions(design)
        assert [a.body_text() for a in first] == [a.body_text() for a in second]
        assert "counter" in knowledge

    def test_pool_assertions_are_proven(self, corpus, knowledge):
        design = corpus.design("counter")
        engine = FormalEngine(design)
        for assertion in knowledge.verified_assertions(design)[:4]:
            assert engine.check(assertion).is_pass

    def test_pool_respects_maximum(self, corpus, knowledge):
        design = corpus.design("fifo_mem")
        assert len(knowledge.verified_assertions(design)) <= 10


class TestIclExamples:
    def test_five_examples_available(self, icl_examples):
        assert len(icl_examples.examples) == 5
        assert icl_examples.for_k(1)[0].design.name == "arb2"
        assert len(icl_examples.for_k(5)) == 5

    def test_each_example_has_at_least_two_assertions(self, icl_examples):
        assert all(count >= 2 for count in icl_examples.assertion_counts())
        assert all(count <= 10 for count in icl_examples.assertion_counts())

    def test_average_assertion_count_is_reasonable(self, icl_examples):
        assert 2.0 <= icl_examples.average_assertions <= 10.0

    def test_requesting_too_many_examples_raises(self, icl_examples):
        with pytest.raises(ValueError):
            icl_examples.for_k(6)
